//! TTL-respecting answer cache.
//!
//! Caches both positive answers (TTL = minimum TTL across the answer
//! set, per RFC 2181 §8 practice) and negative answers (TTL = the SOA
//! `minimum` field, per RFC 2308). Entries are evicted lazily on access
//! against the caller's simulated clock.

use crate::clock::{SimTime, Ttl};
use crate::record::RecordType;
use crate::resolver::{Resolution, ResolveError};
use std::collections::HashMap;
use webdeps_model::DomainName;

#[derive(Debug, Clone)]
struct Entry {
    stored: SimTime,
    ttl: Ttl,
    value: Result<Resolution, ResolveError>,
}

/// Outcome of a [`DnsCache::lookup`] against a serve-stale window.
#[derive(Debug, Clone)]
pub enum CacheHit {
    /// The entry is within its TTL: usable unconditionally.
    Fresh(Result<Resolution, ResolveError>),
    /// The entry's TTL lapsed but it is still within the serve-stale
    /// window (RFC 8767): usable only when refreshing from authority
    /// fails. Only positive answers are ever served stale.
    Stale {
        /// The expired answer.
        value: Resolution,
        /// Seconds past TTL expiry at lookup time.
        stale_for: u64,
    },
}

/// Answer cache keyed by `(name, qtype)`.
///
/// Entries are grouped per name so lookups can probe with a borrowed
/// `&str` (no key clone on the hot path); the handful of record types
/// queried per name live in a short inline vector.
///
/// Optionally bounded ([`Self::set_bound`]): storing a new name once
/// `bound` distinct names are cached clears the whole cache first —
/// epoch semantics, like a resolver restart, rather than per-entry LRU
/// bookkeeping on every probe.
#[derive(Debug, Clone, Default)]
pub struct DnsCache {
    entries: HashMap<DomainName, Vec<(RecordType, Entry)>>,
    /// Distinct-name cap; 0 means unbounded (the default).
    bound: usize,
}

impl DnsCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the cache at `max_names` distinct names (0 = unbounded).
    /// When a store would exceed the cap, the cache is cleared in one
    /// epoch drop and re-warms from scratch. Callers crawling a static
    /// world under a frozen clock lose no correctness — a re-resolution
    /// reproduces the evicted answer exactly — only hit rate.
    pub fn set_bound(&mut self, max_names: usize) {
        self.bound = max_names;
    }

    /// Number of live entries (including not-yet-evicted stale ones).
    pub fn len(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.values().all(Vec::is_empty)
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Fetches a fresh entry, evicting it when stale. Equivalent to
    /// [`Self::lookup`] with a zero serve-stale window.
    pub fn get(
        &mut self,
        name: &DomainName,
        qtype: RecordType,
        now: SimTime,
    ) -> Option<Result<Resolution, ResolveError>> {
        match self.lookup(name, qtype, now, 0) {
            Some(CacheHit::Fresh(value)) => Some(value),
            _ => None,
        }
    }

    /// Borrowing probe for a *fresh* entry: no eviction, no clone. The
    /// hot path ([`crate::Resolver::resolve_with`]) reads answers in
    /// place; expired entries are left for [`Self::lookup`] to evict.
    pub fn peek_fresh(
        &self,
        name: &DomainName,
        qtype: RecordType,
        now: SimTime,
    ) -> Option<&Result<Resolution, ResolveError>> {
        let by_type = self.entries.get(name.as_str())?;
        let (_, entry) = by_type.iter().find(|(t, _)| *t == qtype)?;
        now.within_ttl(entry.stored, entry.ttl)
            .then_some(&entry.value)
    }

    /// Fetches an entry against a serve-stale window of `max_stale`
    /// seconds past TTL expiry (RFC 8767).
    ///
    /// Entries within their TTL are [`CacheHit::Fresh`]. Expired
    /// *positive* entries within the window are [`CacheHit::Stale`] and
    /// are kept (a later outage may still need them); expired negative
    /// entries and anything beyond the window are evicted.
    pub fn lookup(
        &mut self,
        name: &DomainName,
        qtype: RecordType,
        now: SimTime,
        max_stale: u64,
    ) -> Option<CacheHit> {
        let by_type = self.entries.get_mut(name.as_str())?;
        let idx = by_type.iter().position(|(t, _)| *t == qtype)?;
        let entry = &by_type[idx].1;
        if now.within_ttl(entry.stored, entry.ttl) {
            return Some(CacheHit::Fresh(entry.value.clone()));
        }
        let expired_at = entry.stored.plus(u64::from(entry.ttl.seconds()));
        let stale_for = now.seconds().saturating_sub(expired_at.seconds());
        if stale_for < max_stale {
            if let Ok(resolution) = &entry.value {
                return Some(CacheHit::Stale {
                    value: resolution.clone(),
                    stale_for,
                });
            }
        }
        by_type.swap_remove(idx);
        None
    }

    /// Stores a positive answer. The effective TTL is the minimum TTL
    /// across answer and chain records.
    pub fn put_positive(
        &mut self,
        name: DomainName,
        qtype: RecordType,
        resolution: Resolution,
        now: SimTime,
    ) {
        let min_ttl = resolution
            .answers
            .iter()
            .chain(resolution.chain.iter())
            .map(|rr| rr.ttl)
            .min()
            .unwrap_or(Ttl::DEFAULT);
        self.store(
            name,
            qtype,
            Entry {
                stored: now,
                ttl: min_ttl,
                value: Ok(resolution),
            },
        );
    }

    /// Stores a negative answer (NXDOMAIN / NODATA). Panics when handed
    /// a non-negative error: availability failures must never be cached.
    pub fn put_negative(
        &mut self,
        name: DomainName,
        qtype: RecordType,
        error: ResolveError,
        now: SimTime,
    ) {
        let ttl = match &error {
            ResolveError::NxDomain { soa, .. } | ResolveError::NoData { soa, .. } => {
                Ttl(soa.minimum)
            }
            // lint:allow(panic) — programmer error, not runtime input: put_negative is only called with negative answers
            other => panic!("only negative answers are cacheable, got {other}"),
        };
        self.store(
            name,
            qtype,
            Entry {
                stored: now,
                ttl,
                value: Err(error),
            },
        );
    }

    fn store(&mut self, name: DomainName, qtype: RecordType, entry: Entry) {
        if self.bound != 0
            && self.entries.len() >= self.bound
            && !self.entries.contains_key(name.as_str())
        {
            // Epoch clear: drop every entry but keep the table's
            // allocation, so the map never grows past the bound.
            self.entries.clear();
        }
        let by_type = self.entries.entry(name).or_default();
        match by_type.iter_mut().find(|(t, _)| *t == qtype) {
            Some(slot) => slot.1 = entry,
            None => by_type.push((qtype, entry)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RecordData, ResourceRecord, Soa};
    use std::net::Ipv4Addr;
    use webdeps_model::name::dn;

    fn resolution(ttl: Ttl) -> Resolution {
        Resolution {
            qname: dn("example.com"),
            qtype: RecordType::A,
            answers: vec![ResourceRecord::with_ttl(
                dn("example.com"),
                ttl,
                RecordData::A(Ipv4Addr::new(192, 0, 2, 1)),
            )],
            chain: vec![],
            authority_zone: dn("example.com"),
        }
    }

    #[test]
    fn positive_entry_honours_min_ttl() {
        let mut c = DnsCache::new();
        c.put_positive(
            dn("example.com"),
            RecordType::A,
            resolution(Ttl(60)),
            SimTime(0),
        );
        assert!(c
            .get(&dn("example.com"), RecordType::A, SimTime(59))
            .is_some());
        assert!(c
            .get(&dn("example.com"), RecordType::A, SimTime(60))
            .is_none());
        assert!(c.is_empty(), "stale entry must be evicted on access");
    }

    #[test]
    fn bounded_cache_clears_at_cap_and_keeps_serving() {
        let mut c = DnsCache::new();
        c.set_bound(2);
        c.put_positive(dn("a.com"), RecordType::A, resolution(Ttl(60)), SimTime(0));
        c.put_positive(dn("b.com"), RecordType::A, resolution(Ttl(60)), SimTime(0));
        // Same name, second qtype: no new name, no clear.
        c.put_positive(dn("b.com"), RecordType::Ns, resolution(Ttl(60)), SimTime(0));
        assert_eq!(c.len(), 3);
        // Third distinct name trips the epoch clear; only it survives.
        c.put_positive(dn("c.com"), RecordType::A, resolution(Ttl(60)), SimTime(0));
        assert_eq!(c.len(), 1);
        assert!(c.get(&dn("a.com"), RecordType::A, SimTime(0)).is_none());
        assert!(c.get(&dn("c.com"), RecordType::A, SimTime(0)).is_some());
        // Evicted names re-store cleanly after the clear.
        c.put_positive(dn("a.com"), RecordType::A, resolution(Ttl(60)), SimTime(0));
        assert!(c.get(&dn("a.com"), RecordType::A, SimTime(0)).is_some());
    }

    #[test]
    fn chain_ttl_participates_in_minimum() {
        let mut c = DnsCache::new();
        let mut res = resolution(Ttl(3600));
        res.chain.push(ResourceRecord::with_ttl(
            dn("www.example.com"),
            Ttl(30),
            RecordData::Cname(dn("example.com")),
        ));
        c.put_positive(dn("www.example.com"), RecordType::A, res, SimTime(0));
        assert!(c
            .get(&dn("www.example.com"), RecordType::A, SimTime(31))
            .is_none());
    }

    #[test]
    fn negative_entry_uses_soa_minimum() {
        let mut c = DnsCache::new();
        let mut soa = Soa::standard(dn("ns1.example.com"), dn("hostmaster.example.com"), 1);
        soa.minimum = 120;
        let err = ResolveError::NxDomain {
            name: dn("nope.example.com"),
            soa,
        };
        c.put_negative(dn("nope.example.com"), RecordType::A, err, SimTime(0));
        match c.get(&dn("nope.example.com"), RecordType::A, SimTime(100)) {
            Some(Err(ResolveError::NxDomain { .. })) => {}
            other => panic!("expected cached NXDOMAIN, got {other:?}"),
        }
        assert!(c
            .get(&dn("nope.example.com"), RecordType::A, SimTime(121))
            .is_none());
    }

    #[test]
    #[should_panic(expected = "only negative answers")]
    fn outage_errors_are_not_cacheable() {
        let mut c = DnsCache::new();
        let err = ResolveError::AllServersDown {
            name: dn("example.com"),
            zone: dn("example.com"),
        };
        c.put_negative(dn("example.com"), RecordType::A, err, SimTime(0));
    }

    #[test]
    fn stale_window_serves_expired_positive_entries() {
        let mut c = DnsCache::new();
        c.put_positive(
            dn("example.com"),
            RecordType::A,
            resolution(Ttl(60)),
            SimTime(0),
        );
        // Within TTL: fresh.
        assert!(matches!(
            c.lookup(&dn("example.com"), RecordType::A, SimTime(59), 600),
            Some(CacheHit::Fresh(Ok(_)))
        ));
        // Past TTL, within window: stale, and the entry is kept.
        match c.lookup(&dn("example.com"), RecordType::A, SimTime(100), 600) {
            Some(CacheHit::Stale { stale_for, .. }) => assert_eq!(stale_for, 40),
            other => panic!("expected stale hit, got {other:?}"),
        }
        assert_eq!(c.len(), 1, "stale entries are retained");
        // Past the window: gone.
        assert!(c
            .lookup(&dn("example.com"), RecordType::A, SimTime(661), 600)
            .is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn negative_entries_are_never_served_stale() {
        let mut c = DnsCache::new();
        let mut soa = Soa::standard(dn("ns1.example.com"), dn("hostmaster.example.com"), 1);
        soa.minimum = 60;
        c.put_negative(
            dn("nope.example.com"),
            RecordType::A,
            ResolveError::NxDomain {
                name: dn("nope.example.com"),
                soa,
            },
            SimTime(0),
        );
        assert!(c
            .lookup(&dn("nope.example.com"), RecordType::A, SimTime(100), 600)
            .is_none());
        assert!(c.is_empty(), "expired negative entries are evicted");
    }

    #[test]
    fn distinct_qtypes_are_distinct_keys() {
        let mut c = DnsCache::new();
        c.put_positive(
            dn("example.com"),
            RecordType::A,
            resolution(Ttl(60)),
            SimTime(0),
        );
        assert!(c
            .get(&dn("example.com"), RecordType::Ns, SimTime(0))
            .is_none());
        assert_eq!(c.len(), 1);
    }
}
