//! Length-prefixed frame codec.
//!
//! Every protocol message travels as one frame: a 4-byte big-endian
//! length followed by that many payload bytes. The codec is the
//! daemon's first line of defense against misbehaving clients, so its
//! failure modes are explicit and total:
//!
//! * a length above the configured cap is rejected **before** any
//!   payload allocation ([`FrameError::Oversize`]) — a hostile header
//!   cannot make the server reserve gigabytes;
//! * a read that stalls past the socket's read timeout surfaces as
//!   [`FrameError::Timeout`] (the slow-loris guard: the connection is
//!   shed, the worker moves on);
//! * a clean close *between* frames is [`FrameError::Closed`], while a
//!   close *mid-frame* is an I/O error — the server treats the former
//!   as a normal goodbye and the latter as an aborted request.
//!
//! Like `webdeps-lint`'s JSON reader, the parser never panics: every
//! byte of input is attacker-controlled by assumption.

use std::io::{self, Read, Write};

/// Bytes in the length prefix.
pub const LEN_BYTES: usize = 4;

/// Default cap on payload length (64 KiB) — far above any legitimate
/// query, far below anything that could pressure memory.
pub const DEFAULT_MAX_FRAME: usize = 64 * 1024;

/// Why a frame could not be read.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Peer closed the connection cleanly at a frame boundary.
    Closed,
    /// The read stalled past the socket's read timeout.
    Timeout,
    /// The declared payload length exceeds the cap.
    Oversize {
        /// Length the header declared.
        declared: usize,
        /// Configured cap.
        cap: usize,
    },
    /// Any other I/O failure, including a close mid-frame.
    Io(io::ErrorKind),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => f.write_str("connection closed"),
            FrameError::Timeout => f.write_str("read timed out"),
            FrameError::Oversize { declared, cap } => {
                write!(f, "oversize frame: {declared} bytes (cap {cap})")
            }
            FrameError::Io(kind) => write!(f, "i/o error: {kind:?}"),
        }
    }
}

/// Reads one frame, enforcing `cap` on the declared payload length.
#[must_use]
pub fn read_frame(stream: &mut impl Read, cap: usize) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; LEN_BYTES];
    read_full(stream, &mut header, true)?;
    let declared = u32::from_be_bytes(header) as usize;
    if declared > cap {
        return Err(FrameError::Oversize { declared, cap });
    }
    let mut payload = vec![0u8; declared];
    read_full(stream, &mut payload, false)?;
    Ok(payload)
}

/// Writes one frame. Fails (without writing) when the payload exceeds
/// the `u32` length space. Header and payload go out in a single
/// `write_all` — two small writes per frame would trip the classic
/// Nagle/delayed-ACK interaction and cost ~40ms per roundtrip.
#[must_use]
pub fn write_frame(stream: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "payload exceeds u32 length"))?;
    let mut framed = Vec::with_capacity(payload.len() + LEN_BYTES);
    framed.extend_from_slice(&len.to_be_bytes());
    framed.extend_from_slice(payload);
    stream.write_all(&framed)?;
    stream.flush()
}

/// Fills `buf` completely. `at_boundary` selects whether a clean EOF
/// before the first byte is a normal close or a truncated frame.
fn read_full(stream: &mut impl Read, buf: &mut [u8], at_boundary: bool) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 && at_boundary {
                    FrameError::Closed
                } else {
                    FrameError::Io(io::ErrorKind::UnexpectedEof)
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(FrameError::Timeout);
            }
            Err(e) => return Err(FrameError::Io(e.kind())),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"RANK dns 5").expect("write");
        let mut cursor = io::Cursor::new(wire);
        let got = read_frame(&mut cursor, 1024).expect("read");
        assert_eq!(got, b"RANK dns 5");
    }

    #[test]
    fn empty_payload_is_a_valid_frame() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"").expect("write");
        let mut cursor = io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor, 16).expect("read"), b"");
    }

    #[test]
    fn oversize_header_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut cursor = io::Cursor::new(wire);
        match read_frame(&mut cursor, 64) {
            Err(FrameError::Oversize { declared, cap }) => {
                assert_eq!(declared, u32::MAX as usize);
                assert_eq!(cap, 64);
            }
            other => panic!("expected Oversize, got {other:?}"),
        }
    }

    #[test]
    fn clean_close_at_boundary_vs_mid_frame() {
        let mut cursor = io::Cursor::new(Vec::new());
        assert_eq!(read_frame(&mut cursor, 64), Err(FrameError::Closed));

        // Header promises 10 bytes, stream delivers 3.
        let mut wire = Vec::new();
        wire.extend_from_slice(&10u32.to_be_bytes());
        wire.extend_from_slice(b"abc");
        let mut cursor = io::Cursor::new(wire);
        assert_eq!(
            read_frame(&mut cursor, 64),
            Err(FrameError::Io(io::ErrorKind::UnexpectedEof))
        );

        // Partial header then close is also mid-frame.
        let mut cursor = io::Cursor::new(vec![0u8, 0]);
        assert_eq!(
            read_frame(&mut cursor, 64),
            Err(FrameError::Io(io::ErrorKind::UnexpectedEof))
        );
    }
}
