//! Website → CA measurement (§3.2).
//!
//! Extracts OCSP responder and CRL-distribution hosts from the crawled
//! certificate, classifies the CA as private or third-party with the
//! combined heuristic (TLD → SAN → SOA), and records OCSP-stapling
//! support — the paper's criterion for *not* being critically dependent
//! on the CA.

use crate::classify::{Classification, ClassifierKind, ClassifyCache, Evidence};
use crate::dataset::SiteCaMeasurement;
use webdeps_dns::{Dig, Resolver};
use webdeps_model::{DomainName, PublicSuffixList};
use webdeps_web::CrawlReport;
use webdeps_worldgen::profiles::CaProfile;

/// Classifies a crawled site's CA dependency.
pub fn classify_site(
    report: &CrawlReport,
    resolver: &mut Resolver<'_>,
    psl: &PublicSuffixList,
) -> SiteCaMeasurement {
    classify_site_cached(report, resolver, psl, &mut ClassifyCache::new())
}

/// [`classify_site`] with a caller-owned registrable-domain memo (the
/// per-shard hot path); results are independent of cache state.
pub fn classify_site_cached(
    report: &CrawlReport,
    resolver: &mut Resolver<'_>,
    psl: &PublicSuffixList,
    cache: &mut ClassifyCache,
) -> SiteCaMeasurement {
    let Some(cert) = &report.certificate else {
        return SiteCaMeasurement {
            https: false,
            state: Some(CaProfile::NoHttps),
            ..SiteCaMeasurement::default()
        };
    };

    let ocsp_hosts: Vec<DomainName> = cert.ocsp_urls.iter().map(|e| e.host.clone()).collect();
    let crl_hosts: Vec<DomainName> = cert.crl_dps.iter().map(|e| e.host.clone()).collect();
    let stapled = report.ocsp_stapled();

    // The CA's identity and classification come from its revocation
    // endpoints (the paper's `ca_url`).
    let Some(ca_host) = ocsp_hosts.first().or_else(|| crl_hosts.first()) else {
        // No revocation endpoints at all: HTTPS without a checkable CA.
        return SiteCaMeasurement {
            https: true,
            ocsp_hosts,
            crl_hosts,
            ca: None,
            stapled,
            state: None,
        };
    };

    let mut dig = Dig::new(resolver);
    let site_soa = dig.soa_of(&report.site).ok();
    let ca_soa = dig.soa_of(ca_host).ok();
    let ev = Evidence {
        site: &report.site,
        candidate: ca_host,
        san: Some(&cert.san),
        site_soa: site_soa.as_ref(),
        candidate_soa: ca_soa.as_ref(),
        concentration: None,
        threshold: usize::MAX,
    };
    let class = cache.classify(ClassifierKind::Combined, &ev, psl);
    let key = cache.provider_key(ca_host, psl);

    let state = match class {
        Classification::Private => Some(CaProfile::PrivateCa),
        Classification::ThirdParty => Some(if stapled {
            CaProfile::ThirdStapled
        } else {
            CaProfile::ThirdNoStaple
        }),
        Classification::Unknown => None,
    };

    SiteCaMeasurement {
        https: true,
        ocsp_hosts,
        crl_hosts,
        ca: Some((key, class)),
        stapled,
        state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webdeps_web::Crawler;
    use webdeps_worldgen::{World, WorldConfig};

    fn crawl_one(world: &World, idx: usize) -> (CrawlReport, SiteCaMeasurement) {
        let listing = &world.listings()[idx];
        let mut client = world.client();
        let report = Crawler::crawl(
            &mut client,
            &listing.domain,
            &listing.document_hosts,
            listing.https,
        );
        let mut resolver = world.resolver();
        let m = classify_site(&report, &mut resolver, &world.psl);
        (report, m)
    }

    #[test]
    fn http_site_has_no_ca_dependency() {
        let world = World::generate(WorldConfig::small(91));
        let idx = world
            .listings()
            .iter()
            .position(|l| !l.https)
            .expect("world contains HTTP sites");
        let (_, m) = crawl_one(&world, idx);
        assert!(!m.https);
        assert_eq!(m.state, Some(CaProfile::NoHttps));
        assert!(m.ca.is_none());
    }

    #[test]
    fn third_party_ca_detected_with_stapling_state() {
        let world = World::generate(WorldConfig::small(91));
        let mut found_stapled = false;
        let mut found_nostaple = false;
        for (i, l) in world.listings().iter().enumerate().take(300) {
            if !l.https {
                continue;
            }
            let truth = world.site(l.id);
            let (_, m) = crawl_one(&world, i);
            match truth.ca.state {
                CaProfile::ThirdStapled => {
                    if m.state == Some(CaProfile::ThirdStapled) {
                        found_stapled = true;
                    }
                }
                CaProfile::ThirdNoStaple => {
                    if m.state == Some(CaProfile::ThirdNoStaple) {
                        found_nostaple = true;
                    }
                }
                _ => {}
            }
            if found_stapled && found_nostaple {
                break;
            }
        }
        assert!(found_stapled && found_nostaple);
    }

    #[test]
    fn ca_key_is_its_registrable_domain() {
        let world = World::generate(WorldConfig::small(91));
        for (i, l) in world.listings().iter().enumerate().take(120) {
            if !l.https {
                continue;
            }
            let truth = world.site(l.id);
            if truth.ca.ca.as_deref() == Some("DigiCert") {
                let (_, m) = crawl_one(&world, i);
                let (key, class) = m.ca.expect("CA observed");
                assert_eq!(key.as_str(), "digicert.com");
                assert_eq!(class, Classification::ThirdParty);
                return;
            }
        }
        panic!("no DigiCert site in sample");
    }
}
