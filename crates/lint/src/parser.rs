//! A dependency-free recursive-descent parser over the lexer's token
//! stream, producing a lightweight item/statement tree.
//!
//! The tree is deliberately partial: it models exactly what the
//! dataflow rules need — `fn` items with signatures (name, params,
//! return type, attributes, visibility), `use` declarations, inline
//! modules and `impl` blocks, and statement-level structure inside
//! function bodies (`let` bindings with their patterns, expression
//! statements with or without `;`, nested blocks). Expression
//! *interiors* stay as token ranges into the file's code stream;
//! [`crate::dataflow`] walks those ranges with structural helpers.
//!
//! Invariants (checked by a property test): `parse` never panics on any
//! token stream the lexer can produce, and every statement's token
//! range lies inside its enclosing block's range.

use crate::lexer::{Tok, TokKind};

/// Parsed view of one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// One item (top-level or nested).
#[derive(Debug)]
pub struct Item {
    /// What kind of item this is.
    pub kind: ItemKind,
    /// 1-based line of the item's first token (attributes included).
    pub line: u32,
    /// Whether the item is `pub` (any visibility scope).
    pub is_pub: bool,
    /// Flattened attribute texts, e.g. `must_use`, `cfg ( test )`.
    pub attrs: Vec<String>,
}

/// Item classification.
#[derive(Debug)]
pub enum ItemKind {
    /// A function or method.
    Fn(FnItem),
    /// A `use` declaration with its flattened path text.
    Use {
        /// Flattened path, e.g. `std :: collections :: HashMap`.
        path: String,
    },
    /// An inline module with its child items.
    Mod {
        /// Module name (empty for `mod name;` out-of-line forms).
        name: String,
        /// Child items (empty for out-of-line modules).
        items: Vec<Item>,
    },
    /// An `impl` block; its methods appear as child items.
    Impl {
        /// Head identifier of the implemented-on type: `Foo` for
        /// `impl Foo<T>` and for `impl Trait for Foo`. Empty when the
        /// head is not a plain identifier (e.g. `impl &Foo`).
        type_name: String,
        /// Child items (methods, associated consts).
        items: Vec<Item>,
    },
    /// Anything else (struct, enum, trait, const, static, type, …).
    Other {
        /// The declared name when one follows the keyword.
        name: Option<String>,
    },
}

/// A function item.
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Parameters (excluding any `self` receiver).
    pub params: Vec<Param>,
    /// Whether the fn takes a `self` receiver (it is a method).
    pub has_self: bool,
    /// Flattened return type text; empty when the fn returns `()`.
    pub ret: String,
    /// Body, when present (trait declarations have none).
    pub body: Option<Block>,
}

impl FnItem {
    /// Leading type name of the return type: the last path segment
    /// before any generic arguments. `io :: Result < Report >` and
    /// `Result < T , E >` both yield `Result`; an empty return type
    /// yields `""`.
    pub fn ret_head(&self) -> &str {
        let mut head = "";
        for word in self.ret.split_whitespace() {
            match word {
                "<" | "(" => break,
                ":" | "&" | "'" => continue,
                w if w.chars().all(|c| c == ':') => continue,
                w => {
                    if w.starts_with('<') || w.starts_with('(') {
                        break;
                    }
                    head = w;
                }
            }
        }
        head
    }
}

/// One function parameter.
#[derive(Debug)]
pub struct Param {
    /// Binding name (last identifier of the pattern before the `:`).
    pub name: String,
    /// Flattened type text, e.g. `& mut DetRng`.
    pub ty: String,
}

/// A `{ … }` block: statements plus the token range it covers.
#[derive(Debug)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
    /// Token index of the opening `{` in the file's code stream.
    pub start: usize,
    /// Token index one past the closing `}` (exclusive).
    pub end: usize,
}

/// One statement inside a block.
#[derive(Debug)]
pub struct Stmt {
    /// Statement classification.
    pub kind: StmtKind,
    /// 1-based line of the statement's first token.
    pub line: u32,
    /// Token index of the statement's first token.
    pub start: usize,
    /// Token index one past the statement's last token (the `;` when
    /// present is included in the range).
    pub end: usize,
    /// Brace-delimited sub-blocks of this statement (`if`/`match`
    /// bodies, closure bodies, …), parsed recursively.
    pub nested: Vec<Block>,
}

/// Statement classification.
#[derive(Debug)]
pub enum StmtKind {
    /// A `let` binding.
    Let {
        /// Binding name when the pattern is a single identifier.
        name: Option<String>,
        /// Whether the binding is `let mut`.
        is_mut: bool,
        /// Whether the pattern is exactly `_` (an explicit discard).
        discard: bool,
        /// Token index of the initializer's first token, when present.
        init_start: Option<usize>,
    },
    /// An expression statement; `has_semi` distinguishes `expr;` from a
    /// trailing expression.
    Expr {
        /// Whether the statement ends in `;`.
        has_semi: bool,
    },
    /// A nested item (fn, mod, use, …) in statement position.
    Item(Box<Item>),
}

/// Keywords that open an item when seen in item or statement position.
const ITEM_KEYWORDS: &[&str] = &[
    "fn", "use", "mod", "impl", "struct", "enum", "trait", "type", "static", "extern", "macro",
];

/// Parses a code-token stream (comments already stripped) into the
/// item/statement tree. Best-effort and total: malformed input degrades
/// into `Other` items or opaque statements, never a panic.
pub fn parse(toks: &[Tok]) -> ParsedFile {
    let mut p = Parser { toks, i: 0 };
    ParsedFile {
        items: p.parse_items(None),
    }
}

struct Parser<'a> {
    toks: &'a [Tok],
    i: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self, ahead: usize) -> Option<&'a Tok> {
        self.toks.get(self.i + ahead)
    }

    fn at_punct(&self, c: char) -> bool {
        self.peek(0).is_some_and(|t| t.is_punct(c))
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek(0).is_some_and(|t| t.is_ident(s))
    }

    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.toks.get(self.i);
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn line(&self) -> u32 {
        self.peek(0).map_or(0, |t| t.line)
    }

    /// Parses items until end of input or an unmatched `}` (when
    /// `closing` is set, the `}` is consumed).
    fn parse_items(&mut self, closing: Option<char>) -> Vec<Item> {
        let mut items = Vec::new();
        let mut guard = self.i;
        while let Some(t) = self.peek(0) {
            if let Some(c) = closing {
                if t.is_punct(c) {
                    self.bump();
                    break;
                }
            }
            if let Some(item) = self.parse_item() {
                items.push(item);
            }
            // Forward-progress guarantee even on degenerate input.
            if self.i == guard {
                self.bump();
            }
            guard = self.i;
        }
        items
    }

    /// Parses one item starting at the current token.
    fn parse_item(&mut self) -> Option<Item> {
        let line = self.line();
        let attrs = self.parse_attrs();
        let is_pub = self.parse_visibility();
        // Qualifiers before `fn`.
        while self.at_ident("const") && self.peek(1).is_some_and(|t| t.is_ident("fn"))
            || self.at_ident("async")
            || self.at_ident("unsafe")
        {
            self.bump();
        }
        let kind = if self.at_ident("fn") {
            self.bump();
            ItemKind::Fn(self.parse_fn())
        } else if self.at_ident("use") {
            self.bump();
            let mut path = String::new();
            while let Some(t) = self.peek(0) {
                if t.is_punct(';') {
                    self.bump();
                    break;
                }
                if !path.is_empty() {
                    path.push(' ');
                }
                path.push_str(&t.text);
                self.bump();
            }
            ItemKind::Use { path }
        } else if self.at_ident("mod") {
            self.bump();
            let name = match self.peek(0) {
                Some(t) if t.kind == TokKind::Ident => {
                    let n = t.text.clone();
                    self.bump();
                    n
                }
                _ => String::new(),
            };
            if self.at_punct('{') {
                self.bump();
                ItemKind::Mod {
                    name,
                    items: self.parse_items(Some('}')),
                }
            } else {
                if self.at_punct(';') {
                    self.bump();
                }
                ItemKind::Mod {
                    name,
                    items: Vec::new(),
                }
            }
        } else if self.at_ident("impl") {
            self.bump();
            self.skip_generics();
            // Scan the head — the type (and optional `for Type`) plus
            // any where clause — up to the body `{`, capturing the
            // implemented-on type's name for call resolution.
            let type_name = self.impl_head_type();
            if self.at_punct('{') {
                self.bump();
                ItemKind::Impl {
                    type_name,
                    items: self.parse_items(Some('}')),
                }
            } else {
                ItemKind::Impl {
                    type_name,
                    items: Vec::new(),
                }
            }
        } else if self
            .peek(0)
            .is_some_and(|t| ITEM_KEYWORDS.iter().any(|k| t.is_ident(k)))
        {
            let name = self
                .peek(1)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone());
            self.bump();
            self.skip_item_rest();
            ItemKind::Other { name }
        } else {
            // Not an item; let the caller decide what to do.
            return None;
        };
        Some(Item {
            kind,
            line,
            is_pub,
            attrs,
        })
    }

    /// Collects leading `#[…]` / `#![…]` attributes, flattened.
    fn parse_attrs(&mut self) -> Vec<String> {
        let mut attrs = Vec::new();
        while self.at_punct('#') {
            let mut j = self.i + 1;
            if self.toks.get(j).is_some_and(|t| t.is_punct('!')) {
                j += 1;
            }
            if !self.toks.get(j).is_some_and(|t| t.is_punct('[')) {
                break;
            }
            let mut depth = 0i32;
            let mut text = String::new();
            while let Some(t) = self.toks.get(j) {
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                if depth >= 1 && !(depth == 1 && t.is_punct('[')) {
                    if !text.is_empty() {
                        text.push(' ');
                    }
                    text.push_str(&t.text);
                }
                j += 1;
            }
            attrs.push(text);
            self.i = j;
        }
        attrs
    }

    /// Consumes `pub`, `pub(crate)`, `pub(in path)`, …
    fn parse_visibility(&mut self) -> bool {
        if !self.at_ident("pub") {
            return false;
        }
        self.bump();
        if self.at_punct('(') {
            let mut depth = 0i32;
            while let Some(t) = self.bump() {
                if t.is_punct('(') {
                    depth += 1;
                } else if t.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
        }
        true
    }

    /// Parses a fn from just after the `fn` keyword.
    fn parse_fn(&mut self) -> FnItem {
        let name = match self.peek(0) {
            Some(t) if t.kind == TokKind::Ident => {
                let n = t.text.clone();
                self.bump();
                n
            }
            _ => String::new(),
        };
        self.skip_generics();
        let (params, has_self) = self.parse_params();
        let ret = self.parse_return_type();
        // Skip a where clause.
        if self.at_ident("where") {
            self.skip_until_body();
        }
        let body = if self.at_punct('{') {
            Some(self.parse_block())
        } else {
            if self.at_punct(';') {
                self.bump();
            }
            None
        };
        FnItem {
            name,
            params,
            has_self,
            ret,
            body,
        }
    }

    /// Skips `<…>` generics if present, tolerating `->` arrows inside
    /// (`F: Fn(&T) -> bool`): the `>` of an arrow never closes a depth.
    fn skip_generics(&mut self) {
        if !self.at_punct('<') {
            return;
        }
        let mut depth = 0i32;
        while let Some(t) = self.peek(0) {
            if t.is_punct('-') && self.peek(1).is_some_and(|n| n.is_punct('>')) {
                self.bump();
                self.bump();
                continue;
            }
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    /// Parses the parenthesized parameter list.
    fn parse_params(&mut self) -> (Vec<Param>, bool) {
        let mut params = Vec::new();
        let mut has_self = false;
        if !self.at_punct('(') {
            return (params, has_self);
        }
        self.bump();
        let mut depth = 1i32;
        // Accumulate one parameter's tokens at a time, split on
        // top-level commas.
        let mut cur: Vec<&Tok> = Vec::new();
        while let Some(t) = self.peek(0) {
            // `-> bool` inside an `impl Fn(&T) -> bool` param: the `>`
            // of an arrow never closes a depth.
            if t.is_punct('-') && self.peek(1).is_some_and(|n| n.is_punct('>')) {
                cur.push(t);
                self.bump();
                if let Some(gt) = self.peek(0) {
                    cur.push(gt);
                }
                self.bump();
                continue;
            }
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    "<" => depth += 1,
                    ">" => {
                        // `->` cannot appear at param top level; `>`
                        // only closes generic depth.
                        depth -= 1;
                    }
                    ")" | "]" | "}" => {
                        depth -= 1;
                        if depth == 0 {
                            self.bump();
                            if let Some(p) = finish_param(&cur) {
                                if p.name == "self" || p.ty.ends_with("self") {
                                    has_self = true;
                                } else {
                                    params.push(p);
                                }
                            }
                            break;
                        }
                    }
                    "," if depth == 1 => {
                        if let Some(p) = finish_param(&cur) {
                            if p.name == "self" || p.ty.ends_with("self") {
                                has_self = true;
                            } else {
                                params.push(p);
                            }
                        }
                        cur.clear();
                        self.bump();
                        continue;
                    }
                    _ => {}
                }
            }
            cur.push(t);
            self.bump();
        }
        (params, has_self)
    }

    /// Parses `-> Type` up to the body `{`, a `;`, or a `where`.
    fn parse_return_type(&mut self) -> String {
        if !(self.at_punct('-') && self.peek(1).is_some_and(|t| t.is_punct('>'))) {
            return String::new();
        }
        self.bump();
        self.bump();
        let mut out = String::new();
        let mut depth = 0i32;
        while let Some(t) = self.peek(0) {
            if depth == 0 && (t.is_punct('{') || t.is_punct(';') || t.is_ident("where")) {
                break;
            }
            if t.is_punct('-') && self.peek(1).is_some_and(|n| n.is_punct('>')) {
                out.push_str(" - >");
                self.bump();
                self.bump();
                continue;
            }
            match t.text.as_str() {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => depth -= 1,
                _ => {}
            }
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&t.text);
            self.bump();
        }
        out
    }

    /// Consumes an `impl` head (after its generics) up to the body `{`
    /// or a `;`, returning the head identifier of the implemented-on
    /// type: the last depth-0 path segment before the body, with the
    /// trait part of `impl Trait for Type` discarded and the `where`
    /// clause ignored.
    fn impl_head_type(&mut self) -> String {
        let mut name = String::new();
        let mut depth = 0i32;
        let mut in_where = false;
        while let Some(t) = self.peek(0) {
            if t.is_punct('-') && self.peek(1).is_some_and(|n| n.is_punct('>')) {
                self.bump();
                self.bump();
                continue;
            }
            if depth == 0 && (t.is_punct('{') || t.is_punct(';')) {
                return name;
            }
            match t.text.as_str() {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => depth -= 1,
                _ => {}
            }
            if depth == 0 && t.kind == TokKind::Ident {
                if t.is_ident("for") {
                    // `impl Trait for Type`: everything so far named the
                    // trait; the type follows.
                    name.clear();
                } else if t.is_ident("where") {
                    in_where = true;
                } else if !in_where {
                    name = t.text.clone();
                }
            }
            self.bump();
        }
        name
    }

    /// Skips tokens until a top-level `{` or `;` (neither consumed
    /// unless it is the `;`).
    fn skip_until_body(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek(0) {
            if t.is_punct('-') && self.peek(1).is_some_and(|n| n.is_punct('>')) {
                self.bump();
                self.bump();
                continue;
            }
            if depth == 0 && (t.is_punct('{') || t.is_punct(';')) {
                return;
            }
            match t.text.as_str() {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => depth -= 1,
                _ => {}
            }
            self.bump();
        }
    }

    /// Skips the remainder of a non-fn item: through a top-level `;`,
    /// or through a balanced `{ … }` body.
    fn skip_item_rest(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek(0) {
            if t.is_punct('-') && self.peek(1).is_some_and(|n| n.is_punct('>')) {
                self.bump();
                self.bump();
                continue;
            }
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    ";" if depth == 0 => {
                        self.bump();
                        return;
                    }
                    "{" => {
                        // Item body: consume the balanced braces and stop.
                        if depth == 0 {
                            self.skip_balanced_braces();
                            return;
                        }
                        depth += 1;
                    }
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" | ">" | "}" => depth -= 1,
                    _ => {}
                }
            }
            self.bump();
        }
    }

    /// Consumes a balanced `{ … }` starting at the current `{`.
    fn skip_balanced_braces(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek(0) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    /// Parses a block starting at the current `{`.
    fn parse_block(&mut self) -> Block {
        let start = self.i;
        self.bump(); // '{'
        let mut stmts = Vec::new();
        let mut guard = self.i;
        while let Some(t) = self.peek(0) {
            if t.is_punct('}') {
                self.bump();
                break;
            }
            if t.is_punct(';') {
                // Stray empty statement.
                self.bump();
                continue;
            }
            stmts.push(self.parse_stmt());
            if self.i == guard {
                self.bump();
            }
            guard = self.i;
        }
        Block {
            stmts,
            start,
            end: self.i,
        }
    }

    /// Parses one statement inside a block.
    fn parse_stmt(&mut self) -> Stmt {
        let start = self.i;
        let line = self.line();
        // Nested item? (Possibly attribute-prefixed.)
        if self.stmt_opens_item() {
            if let Some(item) = self.parse_item() {
                return Stmt {
                    kind: StmtKind::Item(Box::new(item)),
                    line,
                    start,
                    end: self.i,
                    nested: Vec::new(),
                };
            }
        }
        if self.at_ident("let") {
            return self.parse_let_stmt(start, line);
        }
        let (end, has_semi, nested) = self.consume_expr_stmt();
        Stmt {
            kind: StmtKind::Expr { has_semi },
            line,
            start,
            end,
            nested,
        }
    }

    /// Whether the current position starts a nested item rather than an
    /// expression. `const` is an item only outside expression position
    /// (a `const {}` block or closure qualifier is rare; treat `const`
    /// followed by an identifier as an item).
    fn stmt_opens_item(&mut self) -> bool {
        let mut j = self.i;
        // Look past attributes.
        while self.toks.get(j).is_some_and(|t| t.is_punct('#'))
            && self.toks.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            let mut depth = 0i32;
            while let Some(t) = self.toks.get(j) {
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        let Some(t) = self.toks.get(j) else {
            return false;
        };
        if t.is_ident("pub") {
            return true;
        }
        if t.is_ident("const") {
            return self
                .toks
                .get(j + 1)
                .is_some_and(|n| n.kind == TokKind::Ident && !n.is_ident("fn"))
                || self.toks.get(j + 1).is_some_and(|n| n.is_ident("fn"));
        }
        ITEM_KEYWORDS.iter().any(|k| t.is_ident(k))
    }

    /// Parses a `let` statement from the `let` keyword.
    fn parse_let_stmt(&mut self, start: usize, line: u32) -> Stmt {
        self.bump(); // `let`
        let is_mut = if self.at_ident("mut") {
            self.bump();
            true
        } else {
            false
        };
        // Pattern: tokens until a top-level `=` (single, not `==`) or `;`.
        let mut pat_idents: Vec<String> = Vec::new();
        let mut pat_len = 0usize;
        let mut depth = 0i32;
        let mut init_start = None;
        while let Some(t) = self.peek(0) {
            if depth == 0 && t.is_punct(';') {
                break;
            }
            if depth == 0
                && t.is_punct('=')
                && !self.peek(1).is_some_and(|n| n.is_punct('='))
                && !self.peek(1).is_some_and(|n| n.is_punct('>'))
            {
                self.bump();
                init_start = Some(self.i);
                break;
            }
            match t.text.as_str() {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => depth -= 1,
                _ => {}
            }
            if t.kind == TokKind::Ident {
                pat_idents.push(t.text.clone());
            }
            pat_len += 1;
            self.bump();
        }
        let discard = pat_len >= 1
            && pat_idents.len() == 1
            && pat_idents.first().is_some_and(|s| s == "_")
            && init_start.is_some();
        // A single-identifier pattern (`let [mut] name = …` or
        // `let name: Ty = …`) yields a binding name.
        let name = if pat_idents.len() == 1 && !discard {
            pat_idents.pop()
        } else if pat_idents.len() > 1 {
            // `let name: Vec<u32> = …` — type idents follow the binding.
            pat_idents.into_iter().next().filter(|n| n != "_")
        } else {
            None
        };
        // Initializer (and `let … else { }` tail) to the closing `;`.
        let (end, _semi, nested) = self.consume_expr_stmt();
        Stmt {
            kind: StmtKind::Let {
                name,
                is_mut,
                discard,
                init_start,
            },
            line,
            start,
            end,
            nested,
        }
    }

    /// Consumes an expression statement: through a top-level `;`, or to
    /// the end of a block-formed expression (`if`/`match`/`for`/… whose
    /// closing `}` is not followed by an expression continuation).
    /// Returns (end, has_semi, nested sub-blocks parsed recursively).
    fn consume_expr_stmt(&mut self) -> (usize, bool, Vec<Block>) {
        let mut nested = Vec::new();
        let mut depth = 0i32;
        loop {
            let Some(t) = self.peek(0) else {
                return (self.i, false, nested);
            };
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    ";" if depth == 0 => {
                        self.bump();
                        return (self.i, true, nested);
                    }
                    "{" if depth == 0 => {
                        // Sub-block: parse recursively, then decide
                        // whether the statement continues.
                        let block = self.parse_block();
                        nested.push(block);
                        if self.stmt_continues_after_block() {
                            continue;
                        }
                        return (self.i, false, nested);
                    }
                    "}" if depth == 0 => {
                        // Enclosing block closes; statement ends here
                        // (the `}` belongs to the caller).
                        return (self.i, false, nested);
                    }
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    _ => {}
                }
                if depth < 0 {
                    return (self.i, false, nested);
                }
            }
            self.bump();
        }
    }

    /// After a depth-0 sub-block, does the statement continue? (`else`,
    /// a method call on the block value, an operator, a match arm…)
    fn stmt_continues_after_block(&mut self) -> bool {
        let Some(t) = self.peek(0) else {
            return false;
        };
        if t.is_ident("else") {
            return true;
        }
        if t.kind == TokKind::Punct {
            return matches!(
                t.text.as_str(),
                "." | "?" | ";" | "+" | "-" | "*" | "/" | "=" | "<" | ">" | "&" | "|"
            );
        }
        false
    }
}

/// Builds a [`Param`] from one parameter's token slice.
fn finish_param(toks: &[&Tok]) -> Option<Param> {
    if toks.is_empty() {
        return None;
    }
    if toks.len() <= 2 && toks.iter().any(|t| t.is_ident("self")) {
        return Some(Param {
            name: "self".to_string(),
            ty: String::new(),
        });
    }
    // Split on the first top-level `:` (not `::`).
    let mut depth = 0i32;
    let mut split = None;
    let mut k = 0usize;
    while k < toks.len() {
        let t = toks[k];
        match t.text.as_str() {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth -= 1,
            ":" if depth == 0 => {
                if toks.get(k + 1).is_some_and(|n| n.is_punct(':'))
                    || (k > 0 && toks[k - 1].is_punct(':'))
                {
                    // path `::`
                } else {
                    split = Some(k);
                    break;
                }
            }
            _ => {}
        }
        k += 1;
    }
    let (pat, ty) = match split {
        Some(k) => (&toks[..k], &toks[k + 1..]),
        None => (toks, &toks[..0]),
    };
    let name = pat
        .iter()
        .rev()
        .find(|t| t.kind == TokKind::Ident && !t.is_ident("mut") && !t.is_ident("ref"))
        .map(|t| t.text.clone())
        .unwrap_or_default();
    let ty = ty
        .iter()
        .map(|t| t.text.as_str())
        .collect::<Vec<_>>()
        .join(" ");
    Some(Param { name, ty })
}

/// Walks every fn item in the tree (including fns nested in mods,
/// impls, and other fns), invoking `f` with the item and its fn data.
pub fn walk_fns<'a>(items: &'a [Item], f: &mut dyn FnMut(&'a Item, &'a FnItem)) {
    for item in items {
        match &item.kind {
            ItemKind::Fn(func) => {
                f(item, func);
                if let Some(body) = &func.body {
                    walk_block_fns(body, f);
                }
            }
            ItemKind::Mod { items, .. } | ItemKind::Impl { items, .. } => walk_fns(items, f),
            _ => {}
        }
    }
}

fn walk_block_fns<'a>(block: &'a Block, f: &mut dyn FnMut(&'a Item, &'a FnItem)) {
    for stmt in &block.stmts {
        if let StmtKind::Item(item) = &stmt.kind {
            if let ItemKind::Fn(func) = &item.kind {
                f(item, func);
                if let Some(body) = &func.body {
                    walk_block_fns(body, f);
                }
            }
        }
        for b in &stmt.nested {
            walk_block_fns(b, f);
        }
    }
}

/// Walks every block of a fn body (the body itself plus all nested
/// sub-blocks, recursively), invoking `f` on each. Bodies of *nested
/// fn items* are not visited — [`walk_fns`] enumerates those as
/// separate functions, so visiting them here would double-count.
pub fn walk_blocks<'a>(block: &'a Block, f: &mut dyn FnMut(&'a Block)) {
    f(block);
    for stmt in &block.stmts {
        for b in &stmt.nested {
            walk_blocks(b, f);
        }
    }
}
