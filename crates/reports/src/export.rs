//! Machine-readable export of measurement datasets.
//!
//! Writes the per-site and per-provider measurements as RFC 4180 CSV —
//! the interchange format measurement studies actually publish — so the
//! datasets can leave the Rust world (pandas, gnuplot, spreadsheets)
//! without any extra dependencies.

use webdeps_measure::{Classification, MeasurementDataset};

/// Escapes one CSV field (RFC 4180: quote when the value contains a
/// comma, quote, or newline; double embedded quotes).
fn field(value: &str) -> String {
    if value.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_string()
    }
}

fn row(cells: &[&str]) -> String {
    cells.iter().map(|c| field(c)).collect::<Vec<_>>().join(",")
}

fn class_label(c: Classification) -> &'static str {
    match c {
        Classification::Private => "private",
        Classification::ThirdParty => "third-party",
        Classification::Unknown => "unknown",
    }
}

/// Per-site CSV: one row per site with its measured states and
/// providers (provider lists are `;`-separated within the cell).
pub fn sites_csv(ds: &MeasurementDataset) -> String {
    let mut out = String::new();
    out.push_str(
        "rank,domain,reachable,dns_state,dns_providers,cdn_state,cdns,https,ca,ca_class,stapled\n",
    );
    for s in &ds.sites {
        let dns_state = s
            .dns
            .state
            .map(|st| format!("{st:?}"))
            .unwrap_or_else(|| "uncharacterized".into());
        let dns_providers = s
            .dns
            .third_parties()
            .map(|k| k.as_str())
            .collect::<Vec<_>>()
            .join(";");
        let cdn_state = s
            .cdn
            .state
            .map(|st| format!("{st:?}"))
            .unwrap_or_else(|| "uncharacterized".into());
        let cdns = s
            .cdn
            .cdns
            .iter()
            .map(|(k, c)| format!("{}:{}", k.as_str(), class_label(*c)))
            .collect::<Vec<_>>()
            .join(";");
        let (ca, ca_class) = match &s.ca.ca {
            Some((key, class)) => (key.as_str().to_string(), class_label(*class).to_string()),
            None => (String::new(), String::new()),
        };
        out.push_str(&row(&[
            &s.rank.get().to_string(),
            s.domain.as_str(),
            if s.reachable { "true" } else { "false" },
            &dns_state,
            &dns_providers,
            &cdn_state,
            &cdns,
            if s.ca.https { "true" } else { "false" },
            &ca,
            &ca_class,
            if s.ca.stapled { "true" } else { "false" },
        ]));
        out.push('\n');
    }
    out
}

/// Per-provider CSV: the §3.4 inter-service measurements.
pub fn providers_csv(ds: &MeasurementDataset) -> String {
    let mut out = String::new();
    out.push_str(
        "provider,kind,direct_sites,dns_third,dns_critical,dns_providers,cdn_third,cdn_critical,cdn_providers\n",
    );
    for p in &ds.providers {
        let dep_cells = |dep: &Option<webdeps_measure::InterServiceDep>| match dep {
            Some(d) => (
                d.uses_third.to_string(),
                d.critical.to_string(),
                d.providers
                    .iter()
                    .map(|k| k.as_str())
                    .collect::<Vec<_>>()
                    .join(";"),
            ),
            None => (String::new(), String::new(), String::new()),
        };
        let (dns_third, dns_crit, dns_providers) = dep_cells(&p.dns_dep);
        let (cdn_third, cdn_crit, cdn_providers) = dep_cells(&p.cdn_dep);
        out.push_str(&row(&[
            p.key.as_str(),
            &p.kind.to_string(),
            &p.direct_sites.to_string(),
            &dns_third,
            &dns_crit,
            &dns_providers,
            &cdn_third,
            &cdn_crit,
            &cdn_providers,
        ]));
        out.push('\n');
    }
    out
}

/// Writes both CSVs into a directory (`sites.csv`, `providers.csv`).
#[must_use]
pub fn write_csv_dir(ds: &MeasurementDataset, dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("sites.csv"), sites_csv(ds))?;
    std::fs::write(dir.join("providers.csv"), providers_csv(ds))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;
    use webdeps_measure::measure_world;
    use webdeps_worldgen::{World, WorldConfig};

    fn dataset() -> &'static MeasurementDataset {
        static DS: OnceLock<MeasurementDataset> = OnceLock::new();
        DS.get_or_init(|| measure_world(&World::generate(WorldConfig::small(67))))
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(row(&["a", "b,c"]), "a,\"b,c\"");
    }

    #[test]
    fn sites_csv_is_rectangular_and_complete() {
        let ds = dataset();
        let csv = sites_csv(ds);
        let mut lines = csv.lines();
        let header = lines.next().expect("header");
        let cols = header.split(',').count();
        let mut n = 0;
        for line in lines {
            // No quoted commas expected in generated data; count plainly.
            assert_eq!(line.split(',').count(), cols, "ragged row: {line}");
            n += 1;
        }
        assert_eq!(n, ds.sites.len());
        assert!(csv.contains("SingleThird"));
        assert!(csv.contains("uncharacterized"));
        assert!(csv.contains("digicert.com"));
    }

    #[test]
    fn providers_csv_covers_all_kinds() {
        let ds = dataset();
        let csv = providers_csv(ds);
        assert!(csv.lines().count() > 20);
        assert!(csv.contains("CDN"));
        assert!(csv.contains("CA"));
        assert!(csv.contains("DNS"));
        assert!(csv.contains("dnsmadeeasy.com"), "DigiCert's wiring appears");
    }

    #[test]
    fn csv_dir_roundtrip_to_disk() {
        let ds = dataset();
        let dir = std::env::temp_dir().join(format!("webdeps-csv-{}", std::process::id()));
        write_csv_dir(ds, &dir).expect("write");
        let sites = std::fs::read_to_string(dir.join("sites.csv")).expect("read back");
        assert_eq!(sites, sites_csv(ds));
        std::fs::remove_dir_all(&dir).ok();
    }
}
