//! # webdeps-core
//!
//! The paper's analysis layer: turns a [`webdeps_measure::MeasurementDataset`]
//! into the quantities the paper reports.
//!
//! * [`graph`] — the typed dependency graph (websites and providers,
//!   direct and inter-service edges, criticality flags).
//! * [`metrics`] — **concentration** `C_p` and **impact** `I_p` (§2.2),
//!   with and without indirect dependencies, as both a literal
//!   implementation of the paper's recursive set unions and an
//!   equivalent reverse-BFS (the ablation pair).
//! * [`stats`] — rank-stratified percentages behind Figures 2, 3, 4.
//! * [`concentration`] — provider coverage CDFs behind Figure 6.
//! * [`evolution`] — 2016→2020 transition tables (Tables 3, 4, 5 for
//!   sites; Tables 7, 8, 9 for providers).
//! * [`outage`] — behavioral what-ifs: fail a provider in the simulator
//!   and count actually-unreachable sites, cross-validating the
//!   graph-derived impact numbers.
//! * [`resilience`] — the per-site dependency audit the paper sketches
//!   as future work (§8.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concentration;
pub mod dot;
pub mod evolution;
pub mod graph;
pub mod metrics;
pub mod outage;
pub mod reach;
pub mod resilience;
pub mod stats;

pub use concentration::{
    coverage_curve, coverage_curve_columnar, providers_for_coverage,
    providers_for_coverage_columnar, CoveragePoint,
};
pub use dot::{to_dot, DotOptions};
pub use evolution::{ca_trends, cdn_trends, dns_trends, provider_trends, TrendTable};
pub use graph::{DepGraph, EdgeKind, GraphBuilder, NodeId, NodeKind, NodeRef};
pub use metrics::{MetricOptions, Metrics, ProviderScore};
pub use outage::{
    probe_site, simulate_outage, simulate_outage_at, simulate_outage_at_with_jobs,
    simulate_outage_with_jobs, OutageResult,
};
pub use reach::{ApplyKind, Churn, ChurnError, MutableReach, ProviderRef, ReachIndex, SiteSet};
pub use resilience::{audit_site, robustness_score, RiskLevel, SiteAudit};
pub use stats::{
    ca_figure, cdn_figure, dns_figure, top_providers_in_bucket, CaFigure, CdnFigure, DnsFigure,
};
