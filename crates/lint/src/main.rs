//! CLI entry point for `webdeps-lint`.
//!
//! Exit codes: 0 = clean, 1 = deny violations (or, under
//! `--deny-warnings`, warn violations / stale baseline entries),
//! 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;
use webdeps_lint::driver::{self, DriveOptions};
use webdeps_lint::{config, Config, Severity};

const USAGE: &str = "\
webdeps-lint — hermetic workspace static-analysis pass

USAGE:
    webdeps-lint [OPTIONS]

OPTIONS:
    --root <DIR>        Workspace root to scan (default: current dir,
                        falling back to the nearest ancestor with a
                        Cargo.toml)
    --json              Print the machine-readable report to stdout
    --json-out <FILE>   Additionally write the JSON report to FILE
    --allow <RULE>      Disable a rule globally (repeatable)
    --severity <R=S>    Override a rule's severity (S: deny|warn)
    --deny-warnings     Exit 1 on warn violations and stale baseline
                        entries too
    --jobs <N>          Worker threads (default: auto; 1 = serial)
    --no-cache          Disable the incremental cache
    --cache-file <F>    Cache location (default: target/lint-cache.json
                        under the root)
    --baseline <FILE>   Baseline of accepted findings (default:
                        LINT_BASELINE.json under the root, if present)
    --no-baseline       Ignore any baseline file
    --write-baseline <FILE>
                        Write a baseline absorbing this run's
                        violations, then exit 0
    --suppressions      List every suppressed violation with its reason
    --list-rules        Print the rule catalog and exit
    --explain <RULE>    Print one rule's full catalog entry (severity,
                        rationale, example, allow syntax) and exit
    -h, --help          Show this help
";

struct Args {
    root: PathBuf,
    json: bool,
    json_out: Option<PathBuf>,
    show_suppressions: bool,
    deny_warnings: bool,
    jobs: usize,
    no_cache: bool,
    cache_file: Option<PathBuf>,
    baseline: Option<PathBuf>,
    no_baseline: bool,
    write_baseline: Option<PathBuf>,
    cfg: Config,
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        json_out: None,
        show_suppressions: false,
        deny_warnings: false,
        jobs: 0,
        no_cache: false,
        cache_file: None,
        baseline: None,
        no_baseline: false,
        write_baseline: None,
        cfg: Config::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a value")?);
            }
            "--json" => args.json = true,
            "--json-out" => {
                args.json_out = Some(PathBuf::from(it.next().ok_or("--json-out needs a value")?));
            }
            "--allow" => {
                let rule = it.next().ok_or("--allow needs a rule name")?;
                if !config::rule_names().contains(&rule.as_str()) {
                    return Err(format!("unknown rule {rule:?}; see --list-rules"));
                }
                args.cfg.disabled.insert(rule);
            }
            "--severity" => {
                let spec = it.next().ok_or("--severity needs rule=deny|warn")?;
                let (rule, sev) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--severity wants rule=deny|warn, got {spec:?}"))?;
                if !config::rule_names().contains(&rule) {
                    return Err(format!("unknown rule {rule:?}; see --list-rules"));
                }
                let sev = Severity::parse(sev)
                    .ok_or_else(|| format!("severity must be deny or warn, got {sev:?}"))?;
                args.cfg.severity_overrides.insert(rule.to_string(), sev);
            }
            "--deny-warnings" => args.deny_warnings = true,
            "--jobs" => {
                let n = it.next().ok_or("--jobs needs a number")?;
                args.jobs = n
                    .parse()
                    .map_err(|_| format!("--jobs wants a number, got {n:?}"))?;
            }
            "--no-cache" => args.no_cache = true,
            "--cache-file" => {
                args.cache_file =
                    Some(PathBuf::from(it.next().ok_or("--cache-file needs a path")?));
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a path")?));
            }
            "--no-baseline" => args.no_baseline = true,
            "--write-baseline" => {
                args.write_baseline = Some(PathBuf::from(
                    it.next().ok_or("--write-baseline needs a path")?,
                ));
            }
            "--suppressions" => args.show_suppressions = true,
            "--list-rules" => {
                for r in config::RULES {
                    println!("{:<20} [{:<4}] {}", r.name, r.severity.label(), r.summary);
                }
                return Ok(None);
            }
            "--explain" => {
                let rule = it.next().ok_or("--explain needs a rule name")?;
                let Some(info) = config::rule_info(&rule) else {
                    return Err(format!("unknown rule {rule:?}; see --list-rules"));
                };
                println!("{} [{}]", info.name, info.severity.label());
                println!("  {}", info.summary);
                println!("\nWhy:\n  {}", info.rationale);
                println!("\nExample (flagged):");
                for line in info.example.lines() {
                    println!("  {line}");
                }
                println!("\nJustified sites:");
                for line in info.allow_hint.lines() {
                    println!("  {line}");
                }
                return Ok(None);
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown argument {other:?}\n\n{USAGE}")),
        }
    }
    // Walk up to a directory that looks like the workspace root.
    if !args.root.join("Cargo.toml").is_file() {
        let mut cur = args.root.canonicalize().map_err(|e| e.to_string())?;
        while !cur.join("Cargo.toml").is_file() {
            let Some(parent) = cur.parent() else {
                return Err(format!("no Cargo.toml at or above {}", args.root.display()));
            };
            cur = parent.to_path_buf();
        }
        args.root = cur;
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("webdeps-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let cache_path = if args.no_cache {
        None
    } else {
        Some(
            args.cache_file
                .clone()
                .unwrap_or_else(|| args.root.join("target/lint-cache.json")),
        )
    };
    // Baseline application is skipped entirely when *writing* one, so
    // the written file absorbs every current violation.
    let baseline_path = if args.no_baseline || args.write_baseline.is_some() {
        None
    } else {
        match &args.baseline {
            Some(p) => Some(p.clone()),
            None => {
                let p = args.root.join("LINT_BASELINE.json");
                p.is_file().then_some(p)
            }
        }
    };
    let opts = DriveOptions {
        jobs: args.jobs,
        cache_path,
        baseline_path,
    };
    let outcome = match driver::drive(&args.root, &args.cfg, &opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("webdeps-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let report = outcome.report;
    eprintln!(
        "webdeps-lint: analyzed {} file(s), replayed {} from cache",
        outcome.analyzed, outcome.cached
    );
    if let Some(path) = &args.write_baseline {
        let body = driver::render_baseline(&report.violations);
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("webdeps-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "webdeps-lint: wrote baseline {} absorbing {} violation(s)",
            path.display(),
            report.violations.len()
        );
        return ExitCode::SUCCESS;
    }
    if let Some(path) = &args.json_out {
        if let Err(e) = std::fs::write(path, report.render_json()) {
            eprintln!("webdeps-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if args.json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_human(args.show_suppressions));
    }
    let warn_gate =
        args.deny_warnings && (report.warn_count() > 0 || !report.stale_baseline.is_empty());
    if report.is_clean() && !warn_gate {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
