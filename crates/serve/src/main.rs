//! `webdeps-serve` — resident query daemon and torture driver.
//!
//! ```text
//! webdeps-serve --serve   [--addr A] [--seed S] [--sites N] [--workers W]
//! webdeps-serve --torture [--seed S] [--seeds K] [--connections C] [--clients T] [--sites N]
//! webdeps-serve --smoke
//! ```
//!
//! `--serve` loads a world, binds, prints the address, and runs until
//! a client sends `SHUTDOWN`. `--torture` runs the seeded chaos
//! campaign against a private in-process server for `--seeds`
//! consecutive seeds and exits non-zero on any invariant violation,
//! printing a copy-pasteable replay line first. `--smoke` is the CI
//! entry point: a small world, a short torture, strict invariants.

use std::process::ExitCode;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use webdeps_model::ServiceKind;
use webdeps_serve::engine::Engine;
use webdeps_serve::server::{spawn, ServerConfig, ServerHandle};
use webdeps_serve::torture::{run_torture, TortureConfig};
use webdeps_worldgen::{World, WorldConfig};

struct Args {
    serve: bool,
    torture: bool,
    smoke: bool,
    addr: String,
    seed: u64,
    seeds: usize,
    sites: usize,
    connections: usize,
    clients: usize,
    workers: usize,
    deadline_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        serve: false,
        torture: false,
        smoke: false,
        addr: "127.0.0.1:0".to_string(),
        seed: 42,
        seeds: 64,
        sites: 1_000,
        connections: 96,
        clients: 4,
        workers: 4,
        deadline_ms: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--serve" => args.serve = true,
            "--torture" => args.torture = true,
            "--smoke" => args.smoke = true,
            "--addr" => args.addr = it.next().ok_or("--addr needs host:port")?,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad --seed {v:?}"))?;
            }
            "--seeds" => {
                let v = it.next().ok_or("--seeds needs a value")?;
                args.seeds = v.parse().map_err(|_| format!("bad --seeds {v:?}"))?;
            }
            "--sites" => {
                let v = it.next().ok_or("--sites needs a value")?;
                args.sites = v.parse().map_err(|_| format!("bad --sites {v:?}"))?;
            }
            "--connections" => {
                let v = it.next().ok_or("--connections needs a value")?;
                args.connections = v.parse().map_err(|_| format!("bad --connections {v:?}"))?;
            }
            "--clients" => {
                let v = it.next().ok_or("--clients needs a value")?;
                args.clients = v.parse().map_err(|_| format!("bad --clients {v:?}"))?;
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                args.workers = v.parse().map_err(|_| format!("bad --workers {v:?}"))?;
            }
            "--deadline-ms" => {
                let v = it.next().ok_or("--deadline-ms needs a value")?;
                args.deadline_ms = v.parse().map_err(|_| format!("bad --deadline-ms {v:?}"))?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: webdeps-serve --serve [--addr A] [--seed S] [--sites N] [--workers W] \
                     [--deadline-ms D] | --torture [--seed S] [--seeds K] [--connections C] \
                     [--clients T] [--sites N] [--workers W] [--deadline-ms D] | --smoke"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if !args.serve && !args.torture && !args.smoke {
        return Err("pick one of --serve, --torture, --smoke (try --help)".into());
    }
    Ok(args)
}

/// World seed is fixed per invocation mode; `--seed` varies only the
/// torture chaos stream so failures replay against the same world.
fn build_engine(world_seed: u64, sites: usize, verify: bool, poison: bool) -> Engine {
    let world = World::generate(WorldConfig {
        n_sites: sites,
        ..WorldConfig::small(world_seed)
    });
    Engine::from_world(world, verify, poison)
}

fn torture_server_config(workers: usize, deadline_ms: u64) -> ServerConfig {
    ServerConfig {
        workers,
        queue_cap: 4,
        deadline_ms: if deadline_ms == 0 { 60 } else { deadline_ms },
        read_timeout_ms: 150,
        retry_after_ms: 10,
        verify_patches: true,
        allow_poison: true,
        ..ServerConfig::default()
    }
}

fn torture_client_config(
    engine: &Engine,
    seed: u64,
    connections: usize,
    clients: usize,
) -> TortureConfig {
    let mut keys = engine.provider_keys(ServiceKind::Dns, 6);
    keys.extend(engine.provider_keys(ServiceKind::Cdn, 6));
    keys.extend(engine.provider_keys(ServiceKind::Ca, 4));
    TortureConfig {
        seed,
        connections,
        clients,
        churn_keys: keys,
        site_count: u32::try_from(engine.site_count()).unwrap_or(u32::MAX),
        client_timeout_ms: 5_000,
        loris_stall_ms: 300,
        send_poison: true,
        ..TortureConfig::default()
    }
}

/// Runs one torture campaign against a fresh server over `engine`.
fn torture_once(engine: &Arc<Engine>, args: &Args, seed: u64) -> Result<String, String> {
    let handle = spawn(
        Arc::clone(engine),
        torture_server_config(args.workers, args.deadline_ms),
    )
    .map_err(|e| format!("bind failed: {e}"))?;
    let cfg = torture_client_config(engine, seed, args.connections, args.clients);
    let report = run_torture(handle.addr(), &cfg);
    let stats = handle.stats();
    let contained = webdeps_serve::stats::ServerStats::read(&stats.contained_panics);
    handle.shutdown();
    if !report.passed() {
        let mut msg = String::new();
        for v in &report.violations {
            msg.push_str("violation: ");
            msg.push_str(v);
            msg.push('\n');
        }
        msg.push_str(&format!(
            "torture FAILED at seed {seed}; replay with:\n  webdeps-serve --torture --seed {seed} \
             --seeds 1 --connections {} --clients {} --sites {}\n",
            args.connections, args.clients, args.sites
        ));
        return Err(msg);
    }
    if report.poisons > 0 && contained == 0 {
        return Err(format!(
            "sent {} poison queries but server contained 0 panics (seed {seed})",
            report.poisons
        ));
    }
    Ok(format!(
        "seed {seed}: PASS {} (server contained_panics={contained})",
        report.summary()
    ))
}

/// Poison queries panic on purpose; the default hook would spray a
/// backtrace per containment. Replace it with one quiet line so smoke
/// and torture output stays readable (counters carry the tally).
fn quiet_contained_panics() {
    std::panic::set_hook(Box::new(|info| {
        let location = info
            .location()
            .map(|l| format!("{}:{}", l.file(), l.line()))
            .unwrap_or_else(|| "unknown".to_string());
        eprintln!("contained panic at {location}");
    }));
}

fn run_torture_cmd(args: &Args) -> Result<(), String> {
    quiet_contained_panics();
    let engine = Arc::new(build_engine(71, args.sites, true, true));
    println!(
        "torture: world sites={} providers(dns/cdn/ca) loaded, {} seed(s) from {}",
        engine.site_count(),
        args.seeds.max(1),
        args.seed
    );
    for i in 0..args.seeds.max(1) {
        let seed = args.seed.wrapping_add(i as u64);
        let line = torture_once(&engine, args, seed)?;
        println!("{line}");
    }
    println!("torture: all {} seed(s) passed", args.seeds.max(1));
    Ok(())
}

fn run_serve_cmd(args: &Args) -> Result<(), String> {
    let engine = Arc::new(build_engine(args.seed, args.sites, false, false));
    let mut cfg = ServerConfig {
        addr: args.addr.clone(),
        workers: args.workers,
        ..ServerConfig::default()
    };
    if args.deadline_ms > 0 {
        cfg.deadline_ms = args.deadline_ms;
    }
    let handle: ServerHandle =
        spawn(Arc::clone(&engine), cfg).map_err(|e| format!("bind failed: {e}"))?;
    println!(
        "webdeps-serve listening on {} (sites={}, epoch={})",
        handle.addr(),
        engine.site_count(),
        engine.current_epoch()
    );
    while !handle.shutdown_requested() {
        thread::sleep(Duration::from_millis(50));
    }
    println!("webdeps-serve draining");
    handle.shutdown();
    Ok(())
}

fn run_smoke(args: &Args) -> Result<(), String> {
    quiet_contained_panics();
    let smoke = parse_smoke_base(args);
    let engine = Arc::new(build_engine(71, smoke.sites, true, true));
    for i in 0..smoke.seeds {
        let seed = smoke.seed.wrapping_add(i as u64);
        let line = torture_once(&engine, &smoke, seed)?;
        println!("{line}");
    }
    println!("serve smoke: PASS");
    Ok(())
}

fn parse_smoke_base(args: &Args) -> Args {
    Args {
        serve: false,
        torture: false,
        smoke: true,
        addr: "127.0.0.1:0".to_string(),
        seed: args.seed,
        seeds: 2,
        sites: 300,
        connections: 48,
        clients: 3,
        workers: 3,
        deadline_ms: 0,
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = if args.smoke {
        run_smoke(&args)
    } else if args.torture {
        run_torture_cmd(&args)
    } else {
        run_serve_cmd(&args)
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
