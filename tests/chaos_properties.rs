//! Property-based tests for the chaos-engine invariants, driven by the
//! in-repo `webdeps-testkit`: ≥64 seeded random fault schedules per
//! property, each fully reproducible with `TESTKIT_SEED=<seed>`.
//!
//! * **Monotonicity** — adding a fault phase to any schedule never
//!   increases availability (checked cache-free; client-side caching
//!   legitimately breaks this, which is exactly why the check runs
//!   through `simulate_outage_at`).
//! * **Redundancy** — any site with two or more independent DNS
//!   provider entities (or a private deployment beside a third party)
//!   survives every single-entity DNS outage among its own providers.

use std::sync::OnceLock;
use webdeps::chaos::campaign::{check_monotonicity, dns_provider_entities, random_schedule};
use webdeps::core::probe_site;
use webdeps::dns::FaultPlan;
use webdeps::model::{DetRng, EntityId};
use webdeps::worldgen::{World, WorldConfig};
use webdeps_testkit::{check_with, gen, tk_assert, Config};

fn world() -> &'static World {
    static W: OnceLock<World> = OnceLock::new();
    W.get_or_init(|| World::generate(WorldConfig::small(71)))
}

/// (site index, provider entities) for every site whose DNS is
/// redundant across at least two independent entities (counting a
/// private deployment as one leg).
fn redundant_pool(world: &World) -> &'static Vec<(usize, Vec<EntityId>)> {
    static POOL: OnceLock<Vec<(usize, Vec<EntityId>)>> = OnceLock::new();
    POOL.get_or_init(|| {
        let mut pool = Vec::new();
        for (i, truth) in world.truth.sites.iter().enumerate() {
            if !truth.dns.state.is_redundant() {
                continue;
            }
            let mut entities: Vec<EntityId> = truth
                .dns
                .providers
                .iter()
                .filter_map(|p| world.provider_entity(p))
                .collect();
            entities.sort_unstable();
            entities.dedup();
            let private_leg =
                truth.dns.state == webdeps::worldgen::profiles::DepState::PrivatePlusThird;
            if private_leg || entities.len() >= 2 {
                pool.push((i, entities));
            }
        }
        pool
    })
}

fn property_config() -> Config {
    Config {
        cases: 64,
        ..Config::default()
    }
}

/// Adding one more random fault phase to a random schedule never makes
/// more sites reachable, at any sampled instant.
#[test]
fn adding_faults_never_increases_availability() {
    let world = world();
    check_with(
        &property_config(),
        "adding_faults_never_increases_availability",
        &gen::u64_any(),
        |&seed| {
            let base = random_schedule(world, seed);
            let mut rng = DetRng::new(seed).fork("chaos-extend");
            let (checks, violations) = check_monotonicity(world, &base, &mut rng, 2, 40);
            tk_assert!(checks > 0, "the check must compare at least one instant");
            if let Some(v) = violations.first() {
                return Err(format!("monotonicity violated: {}", v.detail));
            }
            Ok(())
        },
    );
}

/// A site with two independent DNS provider entities survives each
/// single-entity outage among its own providers.
#[test]
fn redundant_dns_survives_any_single_entity_outage() {
    let world = world();
    let pool = redundant_pool(world);
    assert!(
        pool.len() >= 10,
        "world must contain redundant-DNS sites: {}",
        pool.len()
    );
    check_with(
        &property_config(),
        "redundant_dns_survives_any_single_entity_outage",
        &gen::u64_any(),
        |&seed| {
            let mut rng = DetRng::new(seed).fork("redundancy-pick");
            let (site_idx, entities) = rng.pick(pool);
            let truth = &world.truth.sites[*site_idx];
            // Fail one of the site's own providers — the adversarial
            // choice; unrelated entities trivially cannot hurt it.
            let entity = *rng.pick(entities);
            let mut client = world.client();
            client.set_faults(FaultPlan::healthy().fail_entity(entity));
            client.resolver_mut().disable_cache();
            let apex = std::slice::from_ref(&truth.domain);
            tk_assert!(
                probe_site(&mut client, apex, false),
                "{} has redundant DNS ({:?}) yet died when {:?} went down",
                truth.domain,
                truth.dns.providers,
                entity
            );
            Ok(())
        },
    );
}

/// Sanity on the generator itself: schedules are seed-deterministic
/// and draw targets from the DNS provider population.
#[test]
fn random_schedules_target_dns_providers() {
    let world = world();
    let providers = dns_provider_entities(world);
    assert!(!providers.is_empty());
    check_with(
        &property_config(),
        "random_schedules_target_dns_providers",
        &gen::u64_any(),
        |&seed| {
            let a = random_schedule(world, seed);
            let b = random_schedule(world, seed);
            tk_assert!(
                format!("{a:?}") == format!("{b:?}"),
                "same seed must give the same schedule"
            );
            for phase in a.phases() {
                tk_assert!(phase.start <= phase.end, "windows are ordered");
                match phase.target {
                    webdeps::dns::FaultTarget::Entity(e) => {
                        tk_assert!(
                            providers.contains(&e),
                            "targets come from the DNS provider pool"
                        );
                    }
                    webdeps::dns::FaultTarget::Server(_) => {
                        return Err("campaign schedules target entities only".into())
                    }
                }
            }
            Ok(())
        },
    );
}
