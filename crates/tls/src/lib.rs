//! # webdeps-tls
//!
//! A PKI simulator shaped like the slice of TLS the paper measures:
//! certificates with subject-alternative-name lists, issuing certificate
//! authorities, OCSP responders and CRL distribution points (whose
//! *hostnames* are what the CA-dependency heuristics classify), OCSP
//! stapling, and a client-side revocation checker with response caching
//! — including the failure mode of the 2016 GlobalSign incident, where a
//! responder misconfiguration marked valid certificates revoked and
//! caching stretched a short error into a week-long outage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ca;
pub mod cert;
pub mod crl;
pub mod ocsp;
pub mod pki;
pub mod revocation;

pub use ca::CertificateAuthority;
pub use cert::{Certificate, Endpoint};
pub use crl::Crl;
pub use ocsp::{CertStatus, OcspFault, OcspResponse};
pub use pki::{Pki, PkiBuilder};
pub use revocation::{RevocationChecker, RevocationError, RevocationOutcome, RevocationPolicy};
