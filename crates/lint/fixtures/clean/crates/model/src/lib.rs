//! Fixture: clean library code plus exactly one justified suppression.

use std::collections::BTreeMap;

/// Sums the values of an ordered map.
pub fn total(m: &BTreeMap<String, u32>) -> u32 {
    m.values().sum()
}

/// Returns the first element of a slice the fixture guarantees is
/// non-empty.
pub fn first(xs: &[u32]) -> u32 {
    // lint:allow(panic) — fixture invariant: callers always pass non-empty slices,
    // so taking the head cannot fail even under adversarial inputs
    *xs.first().expect("non-empty by fixture invariant")
}

/// The head of a non-empty slice, via [`first`]. The justification on
/// `first`'s panic site discharges it for every caller, so the
/// interprocedural `panic-reachable` rule stays quiet here.
pub fn head(xs: &[u32]) -> u32 {
    first(xs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1);
        m.insert("b".to_string(), 2);
        assert_eq!(total(&m), 3);
    }
}
