//! The incident-replay engine.
//!
//! [`replay`] advances one persistent [`WebClient`] — DNS cache, OCSP
//! response cache, and simulated clock intact — through an
//! [`Incident`]'s timeline, probing every site's document fetch at each
//! tick. Persistence is the engine's reason to exist: cached DNS
//! answers let sites coast through the early minutes of an outage, and
//! cached OCSP responses keep denying sites long after a PKI fault is
//! fixed. A cache-free sweep (see
//! [`webdeps_core::outage::simulate_outage_at`]) cannot show either
//! effect.

use crate::incident::Incident;
use webdeps_dns::{SimTime, StalePolicy};
use webdeps_tls::{Pki, RevocationPolicy};
use webdeps_web::WebClient;
use webdeps_worldgen::World;

/// How the engine probes the population during a replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayOptions {
    /// Seconds between availability samples.
    pub tick_secs: u64,
    /// Last sampled instant (inclusive); samples run `0, tick, …, ≤
    /// horizon`.
    pub horizon_secs: u64,
    /// Probe under the hard-fail revocation policy (CA outages deny).
    pub hard_fail: bool,
    /// Keep client-side caches across ticks (the realistic setting);
    /// `false` probes each tick's instantaneous conditions.
    pub probe_caching: bool,
    /// Enable RFC 8767 serve-stale on the probing resolver.
    pub serve_stale: bool,
    /// Cap on probed sites (`0` probes the full population).
    pub max_sites: usize,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            tick_secs: 1_800,
            horizon_secs: 0,
            hard_fail: false,
            probe_caching: true,
            serve_stale: false,
            max_sites: 0,
        }
    }
}

/// Availability at one sampled instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickSample {
    /// The sampled instant.
    pub time: SimTime,
    /// Sites whose document fetch succeeded.
    pub up: usize,
    /// Sites probed.
    pub total: usize,
}

impl TickSample {
    /// Fraction of probed sites up at this instant.
    pub fn availability(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.up as f64 / self.total as f64
        }
    }
}

/// The availability curve of one replay.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// The replayed incident's name.
    pub incident: String,
    /// The replayed incident's description.
    pub description: String,
    /// One sample per tick, in time order.
    pub samples: Vec<TickSample>,
}

impl ReplayResult {
    /// The lowest availability seen across the replay.
    pub fn min_availability(&self) -> f64 {
        self.samples
            .iter()
            .map(TickSample::availability)
            .fold(1.0, f64::min)
    }

    /// The sample at a given time, when it was sampled.
    pub fn at(&self, t: SimTime) -> Option<TickSample> {
        self.samples.iter().copied().find(|s| s.time == t)
    }

    /// Deterministic text rendering: a fixed-format availability table
    /// with an ASCII bar per tick. Byte-identical for identical runs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("incident: {}\n", self.incident));
        out.push_str(&format!("{}\n", self.description));
        out.push_str("     time | avail  |    up/total | curve\n");
        for s in &self.samples {
            let avail = s.availability();
            let bar_len = (avail * 40.0).round() as usize;
            out.push_str(&format!(
                "{:>9} | {:.4} | {:>5}/{:<5} | {}\n",
                format!("t+{}s", s.time.seconds()),
                avail,
                s.up,
                s.total,
                "#".repeat(bar_len),
            ));
        }
        out.push_str(&format!(
            "min availability: {:.4}\n",
            self.min_availability()
        ));
        out
    }
}

/// Replays `incident` against `world` and returns the availability
/// curve. Deterministic: same world, incident, and options → identical
/// result (and identical [`ReplayResult::render`] bytes).
pub fn replay(world: &World, incident: &Incident) -> ReplayResult {
    let opts = incident.options;

    // Materialize one PKI view per scripted phase, cumulatively: each
    // phase edits the previous view, so clearing a fault at phase 2
    // reverses exactly what phase 1 injected.
    let mut pki_views: Vec<(SimTime, Pki)> = Vec::new();
    let mut current = world.pki.clone();
    for phase in &incident.pki_phases {
        match phase.fault {
            Some(fault) => current.inject_fault(phase.ca, fault),
            None => current.clear_fault(phase.ca),
        }
        pki_views.push((phase.from, current.clone()));
    }

    let mut client = WebClient::new(world.resolver(), &world.web, &world.pki);
    if opts.hard_fail {
        client = client.with_policy(RevocationPolicy::HardFail);
    }
    if !opts.probe_caching {
        client.resolver_mut().disable_cache();
    }
    if opts.serve_stale {
        client
            .resolver_mut()
            .set_stale_policy(StalePolicy::serve_stale());
    }
    client.set_schedule(incident.schedule.clone());

    let mut listings = world.listings();
    if opts.max_sites > 0 {
        listings.truncate(opts.max_sites);
    }

    let mut samples = Vec::new();
    let mut next_view = 0;
    let mut t = 0u64;
    let tick = opts.tick_secs.max(1);
    while t <= opts.horizon_secs {
        while next_view < pki_views.len() && pki_views[next_view].0.seconds() <= t {
            client.set_pki(&pki_views[next_view].1);
            next_view += 1;
        }
        let now = client.resolver().now().seconds();
        client.resolver_mut().advance_time(t - now);

        let mut up = 0;
        for l in &listings {
            if webdeps_core::outage::probe_site(&mut client, &l.document_hosts, l.https) {
                up += 1;
            }
        }
        samples.push(TickSample {
            time: SimTime(t),
            up,
            total: listings.len(),
        });
        t += tick;
    }

    ReplayResult {
        incident: incident.name.clone(),
        description: incident.description.clone(),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incident::{dyn_two_wave, globalsign_stale_week};
    use std::sync::OnceLock;
    use webdeps_worldgen::incidents::{dyn_incident_world, globalsign_incident_world};

    fn dyn_world() -> &'static World {
        static W: OnceLock<World> = OnceLock::new();
        W.get_or_init(|| dyn_incident_world(71, 600))
    }

    #[test]
    fn dyn_replay_shows_two_waves_with_partial_recovery() {
        let world = dyn_world();
        let mut incident = dyn_two_wave(world, 42).expect("2016 world has Dyn");
        incident.options.max_sites = 200;
        let result = replay(world, &incident);

        let avail = |t: u64| result.at(SimTime(t)).expect("sampled").availability();
        let baseline = avail(0);
        assert!(baseline > 0.95, "healthy world is healthy: {baseline}");

        // Wave 1 dips but not to the floor (loss + retries + caches).
        let wave1 = avail(12_600);
        // Wave 2 (hard down, caches long expired) is the deepest point.
        let wave2 = avail(30_600);
        // Recovery gap climbs back toward baseline.
        let gap = avail(19_800);
        assert!(wave1 < baseline, "wave 1 must dip: {wave1} vs {baseline}");
        assert!(
            gap > wave1,
            "partial recovery between waves: {gap} vs {wave1}"
        );
        assert!(
            wave2 < wave1,
            "the hard wave bites deeper: {wave2} vs {wave1}"
        );
        // Full recovery after the attack ends.
        let end = avail(37_800);
        assert!(end >= gap, "post-incident recovery: {end}");
    }

    #[test]
    fn dyn_replay_is_deterministic() {
        let world = dyn_world();
        let mut incident = dyn_two_wave(world, 42).expect("2016 world has Dyn");
        incident.options.max_sites = 120;
        let a = replay(world, &incident).render();
        let b = replay(world, &incident).render();
        assert_eq!(a, b, "same seed, same bytes");
        // A different loss seed may flip individual draws but keeps the
        // curve shape; only assert it still runs.
        let other = dyn_two_wave(world, 43).expect("2016 world has Dyn");
        let _ = replay(
            world,
            &Incident {
                options: ReplayOptions {
                    max_sites: 40,
                    ..other.options
                },
                ..other
            },
        );
    }

    #[test]
    fn globalsign_replay_outlives_its_fault_until_caches_expire() {
        let world = globalsign_incident_world(71, 600);
        let mut incident = globalsign_stale_week(&world).expect("world has GlobalSign");
        incident.options.max_sites = 300;
        let result = replay(&world, &incident);

        let avail = |t: u64| result.at(SimTime(t)).expect("sampled").availability();
        // The fault lands at t=0 and is *fixed* at t=86 400 — yet
        // availability stays depressed well past the fix.
        let during = avail(43_200);
        assert!(during < 1.0, "GlobalSign customers must be denied");
        let day3 = avail(259_200);
        assert!(
            day3 < 1.0,
            "cached revoked responses persist past the fix: {day3}"
        );
        assert!(
            day3 >= during,
            "stapling sites recover at the fix: {day3} vs {during}"
        );
        // After the 7-day response validity lapses, everyone recovers.
        let day9 = avail(820_800);
        assert!(day9 > day3, "recovery once caches expire: {day9} vs {day3}");
    }

    #[test]
    fn render_is_fixed_format() {
        let world = dyn_world();
        let mut incident = dyn_two_wave(world, 42).expect("2016 world has Dyn");
        incident.options.max_sites = 40;
        incident.options.horizon_secs = 3_600;
        let text = replay(world, &incident).render();
        assert!(text.starts_with("incident: dyn\n"));
        assert!(text.contains("min availability:"));
        assert!(text.lines().count() >= 5);
    }
}
