//! One bench per paper experiment: each `exp_<id>` regenerates the
//! table/figure from the prepared workspace. The first iteration also
//! prints the rendered report, so `cargo bench` doubles as a
//! results-regeneration run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Once;
use webdeps_bench::bench_workspace;
use webdeps_reports::{all_experiment_ids, run_experiment};

fn experiments(c: &mut Criterion) {
    let ws = bench_workspace();
    static PRINT: Once = Once::new();
    PRINT.call_once(|| {
        eprintln!("\n================ regenerated experiments (scale {}) ================", ws.scale);
        for id in all_experiment_ids() {
            let report = run_experiment(ws, id).expect("registered experiment");
            eprintln!("{}", report.render());
        }
    });

    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    for id in all_experiment_ids() {
        group.bench_function(format!("exp_{id}"), |b| {
            b.iter(|| black_box(run_experiment(ws, black_box(id)).expect("registered")));
        });
    }
    group.finish();
}

criterion_group!(benches, experiments);
criterion_main!(benches);
