//! The typed dependency graph.
//!
//! Nodes are websites and (wire-identified) providers; edges are "uses
//! service" relations carrying the service kind and a criticality flag
//! (single provider, no redundancy). Both direct (website → provider)
//! and inter-service (provider → provider) dependencies live in one
//! graph, which is what lets the §5 analysis light up hidden paths like
//! *site → DigiCert → DNSMadeEasy*.

use std::collections::BTreeMap;
use webdeps_measure::{MeasurementDataset, ProviderKey, SiteMeasurement};
use webdeps_model::{fan_out_chunked, Interner, NameId, ServiceKind, SiteId};
use webdeps_worldgen::profiles::{CaProfile, CdnProfile, DepState};

/// Dense node identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a node is.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeRef {
    /// A website from the measured population.
    Site(SiteId),
    /// A provider of a service.
    Provider(ProviderKey, ServiceKind),
}

/// One dependency edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeKind {
    /// The service being consumed.
    pub service: ServiceKind,
    /// Whether the consumer is critically dependent through this edge
    /// (sole provider of this service, no redundancy).
    pub critical: bool,
}

#[derive(Debug, Clone)]
struct Edge {
    from: NodeId,
    to: NodeId,
    kind: EdgeKind,
}

/// One site's extracted dependency edges: `(provider key, service,
/// critical)`, borrowed from the dataset. Extraction is pure per-site
/// work, which is what lets [`DepGraph::from_dataset_with_jobs`] shard
/// it across workers while the (id-assigning, order-sensitive)
/// assembly stays serial.
type SiteEdges<'a> = (SiteId, Vec<(&'a ProviderKey, ServiceKind, bool)>);

fn site_edges(site: &SiteMeasurement) -> SiteEdges<'_> {
    let mut edges: Vec<(&ProviderKey, ServiceKind, bool)> = Vec::new();
    // site → DNS providers.
    if let Some(state) = site.dns.state {
        let critical = state == DepState::SingleThird;
        for key in site.dns.third_parties() {
            edges.push((key, ServiceKind::Dns, critical));
        }
    }
    // site → CDNs.
    if let Some(state) = site.cdn.state {
        let critical = state == CdnProfile::SingleThird;
        for key in site.cdn.third_parties() {
            edges.push((key, ServiceKind::Cdn, critical));
        }
    }
    // site → CA.
    if let Some(state) = site.ca.state {
        if let Some((key, class)) = &site.ca.ca {
            if *class == webdeps_measure::Classification::ThirdParty {
                let critical = state == CaProfile::ThirdNoStaple;
                edges.push((key, ServiceKind::Ca, critical));
            }
        }
    }
    (site.id, edges)
}

/// The assembled graph.
///
/// Node lookup is fully interned: provider keys live once in a string
/// [`Interner`] so the provider index compares `(u32, kind)` pairs
/// instead of hashing/comparing registrable-domain strings, and sites
/// index a dense array by [`SiteId`]. Ids are assigned in insertion
/// order, so the same build sequence always yields the same graph.
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    nodes: Vec<NodeRef>,
    names: Interner,
    provider_index: BTreeMap<(NameId, ServiceKind), NodeId>,
    site_index: Vec<Option<NodeId>>,
    edges: Vec<Edge>,
    outgoing: Vec<Vec<usize>>,
    incoming: Vec<Vec<usize>>,
}

impl DepGraph {
    /// Builds the graph from a measurement dataset: site edges from the
    /// per-site states, provider edges from the §3.4 measurements.
    /// Worker count is auto-resolved (see
    /// [`webdeps_model::par::resolve_jobs`]); the result is identical at
    /// any worker count.
    pub fn from_dataset(ds: &MeasurementDataset) -> DepGraph {
        DepGraph::from_dataset_with_jobs(ds, 0)
    }

    /// [`DepGraph::from_dataset`] with an explicit worker count for the
    /// sharded per-site edge extraction (`0` = auto). Assembly — id
    /// assignment and edge insertion — is serial and consumes the
    /// extracted shards in site order, so the graph is byte-identical
    /// at any `jobs`.
    pub fn from_dataset_with_jobs(ds: &MeasurementDataset, jobs: usize) -> DepGraph {
        let mut g = DepGraph::default();
        g.site_index = vec![None; ds.sites.len()];

        // Sharded extraction: pure reads of the dataset, in parallel.
        // Fanning over indexes (not the sites slice itself) lets each
        // extracted edge borrow its `ProviderKey` from the dataset, so
        // no strings are cloned until assembly interns them.
        let sites = &ds.sites;
        let idxs: Vec<usize> = (0..sites.len()).collect();
        let extracted = fan_out_chunked(&idxs, jobs, |shard| {
            shard.iter().map(|&i| site_edges(&sites[i])).collect()
        });

        // Serial assembly in site order.
        for (site, edges) in extracted {
            let site_node = g.intern(NodeRef::Site(site));
            for (key, service, critical) in edges {
                let p = g.intern(NodeRef::Provider(key.clone(), service));
                g.add_edge(site_node, p, EdgeKind { service, critical });
            }
        }

        // Provider → provider edges.
        for pm in &ds.providers {
            let from = g.intern(NodeRef::Provider(pm.key.clone(), pm.kind));
            if let Some(dep) = &pm.dns_dep {
                for key in &dep.providers {
                    let to = g.intern(NodeRef::Provider(key.clone(), ServiceKind::Dns));
                    g.add_edge(
                        from,
                        to,
                        EdgeKind {
                            service: ServiceKind::Dns,
                            critical: dep.critical,
                        },
                    );
                }
            }
            if let Some(dep) = &pm.cdn_dep {
                for key in &dep.providers {
                    let to = g.intern(NodeRef::Provider(key.clone(), ServiceKind::Cdn));
                    g.add_edge(
                        from,
                        to,
                        EdgeKind {
                            service: ServiceKind::Cdn,
                            critical: dep.critical,
                        },
                    );
                }
            }
        }
        g
    }

    /// Interns a node, returning its id.
    pub fn intern(&mut self, node: NodeRef) -> NodeId {
        match &node {
            NodeRef::Site(site) => {
                let idx = site.index();
                if idx >= self.site_index.len() {
                    self.site_index.resize(idx + 1, None);
                }
                if let Some(id) = self.site_index[idx] {
                    return id;
                }
                let id = self.push_node(node.clone());
                self.site_index[idx] = Some(id);
                id
            }
            NodeRef::Provider(key, kind) => {
                let name = self.names.intern(key.as_str());
                if let Some(&id) = self.provider_index.get(&(name, *kind)) {
                    return id;
                }
                let id = self.push_node(node.clone());
                self.provider_index.insert((name, *kind), id);
                id
            }
        }
    }

    fn push_node(&mut self, node: NodeRef) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.outgoing.push(Vec::new());
        self.incoming.push(Vec::new());
        id
    }

    /// Exclusive upper bound on raw [`SiteId`] indexes present in the
    /// graph — the capacity dense per-site tables need.
    pub fn site_id_bound(&self) -> usize {
        self.site_index.len()
    }

    /// Adds an edge.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, kind: EdgeKind) {
        let idx = self.edges.len();
        self.edges.push(Edge { from, to, kind });
        self.outgoing[from.index()].push(idx);
        self.incoming[to.index()].push(idx);
    }

    /// Node payload.
    pub fn node(&self, id: NodeId) -> &NodeRef {
        &self.nodes[id.index()]
    }

    /// Looks up a node id.
    pub fn find(&self, node: &NodeRef) -> Option<NodeId> {
        match node {
            NodeRef::Site(site) => self.site_index.get(site.index()).copied().flatten(),
            NodeRef::Provider(key, kind) => {
                let name = self.names.get(key.as_str())?;
                self.provider_index.get(&(name, *kind)).copied()
            }
        }
    }

    /// Looks up a provider node.
    pub fn provider(&self, key: &str, kind: ServiceKind) -> Option<NodeId> {
        self.find(&NodeRef::Provider(ProviderKey::new(key.to_string()), kind))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All provider nodes of a kind.
    pub fn providers_of(&self, kind: ServiceKind) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(move |(i, n)| match n {
                NodeRef::Provider(_, k) if *k == kind => Some(NodeId(i as u32)),
                _ => None,
            })
    }

    /// Outgoing dependencies of a node: `(target, kind)`.
    pub fn deps_of(&self, id: NodeId) -> impl Iterator<Item = (NodeId, EdgeKind)> + '_ {
        self.outgoing[id.index()].iter().map(move |&e| {
            let edge = &self.edges[e];
            (edge.to, edge.kind)
        })
    }

    /// Incoming consumers of a node: `(source, kind)`.
    pub fn consumers_of(&self, id: NodeId) -> impl Iterator<Item = (NodeId, EdgeKind)> + '_ {
        self.incoming[id.index()].iter().map(move |&e| {
            let edge = &self.edges[e];
            (edge.from, edge.kind)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webdeps_measure::measure_world;
    use webdeps_worldgen::{World, WorldConfig};

    fn graph() -> (World, MeasurementDataset, DepGraph) {
        let world = World::generate(WorldConfig::small(123));
        let ds = measure_world(&world);
        let g = DepGraph::from_dataset(&ds);
        (world, ds, g)
    }

    #[test]
    fn graph_has_sites_and_providers() {
        let (world, _, g) = graph();
        assert!(
            g.node_count() > world.truth.len(),
            "providers add nodes beyond sites"
        );
        assert!(
            g.edge_count() > world.truth.len(),
            "most sites have multiple dependencies"
        );
        assert!(g.providers_of(ServiceKind::Dns).count() > 5);
        assert!(g.providers_of(ServiceKind::Cdn).count() > 5);
        assert!(g.providers_of(ServiceKind::Ca).count() > 5);
    }

    #[test]
    fn interning_is_idempotent() {
        let mut g = DepGraph::default();
        let a = g.intern(NodeRef::Site(SiteId(1)));
        let b = g.intern(NodeRef::Site(SiteId(1)));
        assert_eq!(a, b);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.find(&NodeRef::Site(SiteId(1))), Some(a));
        assert_eq!(g.find(&NodeRef::Site(SiteId(2))), None);
    }

    #[test]
    fn digicert_chain_is_wired() {
        let (_, _, g) = graph();
        let digicert = g
            .provider("digicert.com", ServiceKind::Ca)
            .expect("DigiCert node");
        let deps: Vec<_> = g.deps_of(digicert).collect();
        assert!(
            deps.iter().any(|(to, kind)| {
                kind.service == ServiceKind::Dns
                    && kind.critical
                    && matches!(g.node(*to), NodeRef::Provider(k, _) if k.as_str() == "dnsmadeeasy.com")
            }),
            "DigiCert → DNSMadeEasy critical edge, got {deps:?}"
        );
        assert!(deps.iter().any(|(to, kind)| {
            kind.service == ServiceKind::Cdn
                && matches!(g.node(*to), NodeRef::Provider(k, _) if k.as_str() == "incapdns.net")
        }));
        // And sites consume DigiCert.
        assert!(g.consumers_of(digicert).count() > 0);
    }

    #[test]
    fn criticality_flags_follow_states() {
        let (world, ds, g) = graph();
        for s in ds.sites.iter().take(400) {
            let truth = world.site(s.id);
            if truth.dns.state == DepState::MultiThird {
                let node = g.find(&NodeRef::Site(s.id)).expect("site node");
                let dns_edges: Vec<_> = g
                    .deps_of(node)
                    .filter(|(_, k)| k.service == ServiceKind::Dns)
                    .collect();
                if dns_edges.len() >= 2 {
                    assert!(
                        dns_edges.iter().all(|(_, k)| !k.critical),
                        "multi-provider sites are never critical"
                    );
                }
            }
        }
    }
}
