//! Minimal URLs.

use std::fmt;
use std::sync::{Arc, OnceLock};
use webdeps_model::{DomainName, ModelError};

/// The shared `/` path. Every root-path URL (one per document fetch
/// attempt in a crawl) clones this single allocation.
pub(crate) fn root_path() -> Arc<str> {
    static ROOT: OnceLock<Arc<str>> = OnceLock::new();
    ROOT.get_or_init(|| Arc::from("/")).clone()
}

/// URL scheme; the study only cares about plain versus TLS-protected
/// HTTP (HTTPS adoption is one of the Figure 4 series).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Plain HTTP.
    Http,
    /// HTTP over TLS.
    Https,
}

impl Scheme {
    /// The scheme's textual prefix.
    pub fn as_str(self) -> &'static str {
        match self {
            Scheme::Http => "http",
            Scheme::Https => "https",
        }
    }
}

/// A scheme + host + path URL. Ports, queries, and fragments play no
/// role in dependency measurement and are not modeled.
///
/// Both `host` and `path` are refcounted, so cloning a URL (every fetch
/// records the URL it served) never copies string data.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Url {
    /// Scheme.
    pub scheme: Scheme,
    /// Hostname.
    pub host: DomainName,
    /// Absolute path (always begins with `/`).
    pub path: Arc<str>,
}

impl Url {
    /// An HTTP URL at the root path.
    pub fn http(host: DomainName) -> Self {
        Url {
            scheme: Scheme::Http,
            host,
            path: root_path(),
        }
    }

    /// An HTTPS URL at the root path.
    pub fn https(host: DomainName) -> Self {
        Url {
            scheme: Scheme::Https,
            host,
            path: root_path(),
        }
    }

    /// Replaces the path.
    pub fn with_path(mut self, path: impl Into<String>) -> Self {
        let p = path.into();
        self.path = if p.starts_with('/') {
            p.into()
        } else {
            format!("/{p}").into()
        };
        self
    }

    /// Parses `scheme://host/path`.
    #[must_use]
    pub fn parse(input: &str) -> Result<Self, ModelError> {
        let (scheme, rest) = if let Some(rest) = input.strip_prefix("https://") {
            (Scheme::Https, rest)
        } else if let Some(rest) = input.strip_prefix("http://") {
            (Scheme::Http, rest)
        } else {
            return Err(ModelError::InvalidDomainName {
                input: input.to_string(),
                reason: "URL must start with http:// or https://",
            });
        };
        let (host, path) = match rest.split_once('/') {
            Some((h, p)) => (h, format!("/{p}").into()),
            None => (rest, root_path()),
        };
        Ok(Url {
            scheme,
            host: DomainName::parse(host)?,
            path,
        })
    }

    /// Whether this URL requires the TLS path.
    pub fn is_https(&self) -> bool {
        self.scheme == Scheme::Https
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}{}", self.scheme.as_str(), self.host, self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webdeps_model::name::dn;

    #[test]
    fn constructors_and_display() {
        let u = Url::https(dn("example.com")).with_path("img/logo.png");
        assert_eq!(u.to_string(), "https://example.com/img/logo.png");
        assert!(u.is_https());
        assert!(!Url::http(dn("example.com")).is_https());
    }

    #[test]
    fn parse_roundtrip() {
        for s in ["http://example.com/", "https://a.b.example.co.uk/x/y"] {
            assert_eq!(Url::parse(s).unwrap().to_string(), s);
        }
        assert_eq!(&*Url::parse("https://example.com").unwrap().path, "/");
        assert!(Url::parse("ftp://example.com").is_err());
        assert!(Url::parse("https://bad host/").is_err());
    }
}
