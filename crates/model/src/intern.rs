//! Name interning.
//!
//! The analysis layer keys everything on strings — registrable domains
//! for provider identities, domain names for sites — and at 100K-site
//! scale the string hashing and lexicographic `BTreeMap` comparisons on
//! those keys dominate graph construction and grouping. [`Interner`]
//! replaces them with a symbol table: each distinct string is stored
//! once in an arena and handed out as a dense [`NameId`], so every
//! downstream map keys on (and compares) a `u32`.
//!
//! Determinism: ids are assigned in first-intern order, so the same
//! intern sequence always yields the same ids, independent of the hash
//! table's internal layout. The table uses FNV-1a with open addressing
//! (no `RandomState`, no ambient randomness) and is never iterated —
//! deterministic enumeration goes through the insertion-ordered arena
//! ([`Interner::names`]).

use std::fmt;

/// Dense identifier of an interned name (assigned in first-intern
/// order, starting at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(pub u32);

impl NameId {
    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index. Panics if `index` does not fit
    /// the 32-bit id space rather than silently truncating.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        assert!(
            u32::try_from(index).is_ok(),
            "NameId overflow: index {index} exceeds the u32 id space"
        );
        NameId(index as u32)
    }
}

impl fmt::Display for NameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "name#{}", self.0)
    }
}

/// FNV-1a 64-bit over a byte string — the same stable hash the lint
/// driver uses for content fingerprints.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An insertion-ordered string symbol table.
///
/// ```
/// use webdeps_model::intern::Interner;
/// let mut names = Interner::new();
/// let a = names.intern("dynect.net");
/// let b = names.intern("cloudflare.com");
/// assert_eq!(names.intern("dynect.net"), a);
/// assert_ne!(a, b);
/// assert_eq!(names.resolve(a), "dynect.net");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Interner {
    /// Arena of interned strings, indexed by [`NameId`].
    names: Vec<Box<str>>,
    /// Open-addressing table of `arena index + 1` (0 = empty slot).
    /// Capacity is always a power of two.
    table: Vec<u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Creates an interner sized for roughly `n` distinct names.
    pub fn with_capacity(n: usize) -> Self {
        let mut i = Interner {
            names: Vec::with_capacity(n),
            table: Vec::new(),
        };
        i.grow_table((n * 2).next_power_of_two().max(16));
        i
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Interns `s`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, s: &str) -> NameId {
        if self.table.is_empty() || self.names.len() * 3 >= self.table.len() * 2 {
            let want = (self.table.len() * 2).max(16);
            self.grow_table(want);
        }
        let mask = self.table.len() - 1;
        let mut slot = (fnv1a(s.as_bytes()) as usize) & mask;
        loop {
            match self.table[slot] {
                0 => {
                    // The probe table stores `id + 1` (0 marks empty),
                    // so the last representable id is `u32::MAX - 1`;
                    // a plain `as u32` here would silently wrap and
                    // alias earlier names.
                    assert!(
                        self.names.len() < u32::MAX as usize,
                        "interner overflow: {} names exhaust the 32-bit NameId space",
                        self.names.len()
                    );
                    let id = NameId(self.names.len() as u32);
                    self.names.push(s.into());
                    self.table[slot] = id.0 + 1;
                    return id;
                }
                occupied => {
                    let idx = (occupied - 1) as usize;
                    if self.names[idx].as_ref() == s {
                        return NameId(occupied - 1);
                    }
                    slot = (slot + 1) & mask;
                }
            }
        }
    }

    /// Looks up `s` without interning it.
    pub fn get(&self, s: &str) -> Option<NameId> {
        if self.table.is_empty() {
            return None;
        }
        let mask = self.table.len() - 1;
        let mut slot = (fnv1a(s.as_bytes()) as usize) & mask;
        loop {
            match self.table[slot] {
                0 => return None,
                occupied => {
                    let idx = (occupied - 1) as usize;
                    if self.names[idx].as_ref() == s {
                        return Some(NameId(occupied - 1));
                    }
                    slot = (slot + 1) & mask;
                }
            }
        }
    }

    /// The string behind an id. Ids come from this interner by
    /// construction; an out-of-range id is a programmer error.
    pub fn resolve(&self, id: NameId) -> &str {
        &self.names[id.index()]
    }

    /// All interned names in insertion (id) order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(|n| n.as_ref())
    }

    /// Bytes of heap owned by this interner: the string arena (pointers
    /// plus payloads) and the probe table. Used by the columnar core's
    /// bytes-per-site budget accounting.
    pub fn heap_bytes(&self) -> usize {
        let arena_ptrs = self.names.capacity() * std::mem::size_of::<Box<str>>();
        let arena_payload: usize = self.names.iter().map(|n| n.len()).sum();
        let table = self.table.capacity() * std::mem::size_of::<u32>();
        arena_ptrs + arena_payload + table
    }

    /// Rebuilds the probe table at `capacity` slots (power of two).
    fn grow_table(&mut self, capacity: usize) {
        let capacity = capacity.next_power_of_two().max(16);
        self.table = vec![0u32; capacity];
        let mask = capacity - 1;
        for (idx, name) in self.names.iter().enumerate() {
            let mut slot = (fnv1a(name.as_bytes()) as usize) & mask;
            while self.table[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            // Same `id + 1` encoding as `intern`; the checked add keeps
            // a rebuild from wrapping an id that `intern` would reject.
            let encoded = u32::try_from(idx).ok().and_then(|idx| idx.checked_add(1));
            match encoded {
                Some(v) => self.table[slot] = v,
                // lint:allow(panic) — id-space exhaustion is a hard
                // programmer error; wrapping here would silently alias
                // interned names.
                None => {
                    panic!("interner overflow: arena index {idx} exceeds the u32 slot encoding")
                }
            }
        }
    }
}

/// Two interners are equal when they intern the same names in the same
/// order — the probe table is an implementation detail (its layout
/// depends on growth history, not content).
impl PartialEq for Interner {
    fn eq(&self, other: &Self) -> bool {
        self.names == other.names
    }
}

impl Eq for Interner {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut i = Interner::new();
        let a = i.intern("a.com");
        let b = i.intern("b.com");
        assert_eq!(a, NameId(0));
        assert_eq!(b, NameId(1));
        assert_eq!(i.intern("a.com"), a);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(a), "a.com");
        assert_eq!(i.resolve(b), "b.com");
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert_eq!(i.get("a.com"), None);
        let a = i.intern("a.com");
        assert_eq!(i.get("a.com"), Some(a));
        assert_eq!(i.get("b.com"), None);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn survives_growth_and_stays_ordered() {
        let mut i = Interner::new();
        let ids: Vec<NameId> = (0..500)
            .map(|n| i.intern(&format!("provider-{n}.net")))
            .collect();
        for (n, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), n);
            assert_eq!(i.resolve(*id), format!("provider-{n}.net"));
            assert_eq!(i.get(&format!("provider-{n}.net")), Some(*id));
        }
        let names: Vec<&str> = i.names().collect();
        assert_eq!(names.len(), 500);
        assert_eq!(names[7], "provider-7.net");
    }

    #[test]
    fn with_capacity_preallocates() {
        let mut i = Interner::with_capacity(64);
        for n in 0..64 {
            i.intern(&format!("x{n}"));
        }
        assert_eq!(i.len(), 64);
    }
}
