//! Dependency-state spaces and their calibrated distributions.
//!
//! Each website is, per service, in one of a small number of dependency
//! states (the paper's Table 3/4/5 vocabulary: private, single third
//! party, redundant, …). This module holds:
//!
//! * the state enums,
//! * the paper's **cumulative** rank-bucket marginals for 2016 and 2020
//!   (exactly the numbers read off Figures 2/3/4 and the prose),
//! * converters from cumulative bucket values to per-band densities, and
//! * samplers: draw a 2016 state for a rank band, then *evolve* it to
//!   2020 with the transition rates of Tables 3/4/5 — so the generated
//!   pair of snapshots reproduces both the per-year marginals and the
//!   flows between them.
//!
//! All values are percentages of sites (0–100).

use webdeps_model::DetRng;

/// Reference cumulative bucket sizes (the paper's k = 100/1K/10K/100K).
pub const BUCKET_K: [f64; 4] = [100.0, 1_000.0, 10_000.0, 100_000.0];

/// The disjoint rank band a 1-based rank falls into:
/// 0: 1–100, 1: 101–1K, 2: 1K+1–10K, 3: 10K+1–100K (and beyond).
pub fn band_of_rank(rank: u32) -> usize {
    match rank {
        0..=100 => 0,
        101..=1_000 => 1,
        1_001..=10_000 => 2,
        _ => 3,
    }
}

/// Converts cumulative bucket percentages (`C_k` over the top-k sites)
/// into per-band densities (percentage within each disjoint band), using
/// the reference bucket sizes.
pub fn cumulative_to_density(cum: [f64; 4]) -> [f64; 4] {
    let mut density = [0.0; 4];
    density[0] = cum[0];
    for j in 1..4 {
        let (k_lo, k_hi) = (BUCKET_K[j - 1], BUCKET_K[j]);
        density[j] = (k_hi * cum[j] - k_lo * cum[j - 1]) / (k_hi - k_lo);
    }
    density
}

/// Recombines per-band densities into the cumulative value for a bucket,
/// for a world of `n_sites` (buckets clamp to the population).
pub fn density_to_cumulative(density: [f64; 4], bucket_limit: usize, n_sites: usize) -> f64 {
    let limit = bucket_limit.min(n_sites) as f64;
    let mut covered = 0.0;
    let mut acc = 0.0;
    for j in 0..4 {
        let band_hi = BUCKET_K[j].min(limit);
        let band_lo = if j == 0 { 0.0 } else { BUCKET_K[j - 1] };
        if band_hi > band_lo {
            acc += density[j] * (band_hi - band_lo);
            covered += band_hi - band_lo;
        }
        if band_hi >= limit {
            break;
        }
    }
    if covered == 0.0 {
        0.0
    } else {
        acc / covered
    }
}

// ---------------------------------------------------------------------
// DNS
// ---------------------------------------------------------------------

/// Website → DNS dependency state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepState {
    /// Only private (self-operated) nameservers.
    Private,
    /// Exactly one third-party provider: critically dependent.
    SingleThird,
    /// Two or more third-party providers: redundant.
    MultiThird,
    /// Private nameservers plus a third-party provider: redundant.
    PrivatePlusThird,
}

impl DepState {
    /// Whether the state uses any third party.
    pub fn uses_third_party(self) -> bool {
        !matches!(self, DepState::Private)
    }

    /// Whether the state is critically dependent on one provider.
    pub fn is_critical(self) -> bool {
        matches!(self, DepState::SingleThird)
    }

    /// Whether the state is redundantly provisioned.
    pub fn is_redundant(self) -> bool {
        matches!(self, DepState::MultiThird | DepState::PrivatePlusThird)
    }
}

/// Calibration for one service's four-state distribution, as cumulative
/// bucket percentages.
#[derive(Debug, Clone, Copy)]
pub struct DnsMarginals {
    /// Sites using any third-party DNS.
    pub third: [f64; 4],
    /// Sites critically dependent (single third-party provider).
    pub critical: [f64; 4],
    /// Sites with private + third-party redundancy.
    pub private_plus_third: [f64; 4],
}

/// 2020 DNS marginals (Figure 2).
pub const DNS_2020: DnsMarginals = DnsMarginals {
    third: [49.0, 65.0, 78.0, 89.0],
    critical: [28.0, 48.0, 68.0, 85.0],
    private_plus_third: [9.0, 7.0, 4.0, 1.5],
};

/// 2016 DNS marginals, back-derived from 2020 minus the Table 3 deltas.
pub const DNS_2016: DnsMarginals = DnsMarginals {
    third: [50.0, 59.2, 72.4, 84.3],
    critical: [30.0, 42.5, 62.5, 80.3],
    private_plus_third: [9.0, 7.0, 4.0, 1.5],
};

/// Table 3 transition rates (percent of sites, cumulative buckets).
#[derive(Debug, Clone, Copy)]
pub struct DnsTransitions {
    /// Private → single third party.
    pub pvt_to_single: [f64; 4],
    /// Single third party → private.
    pub single_to_pvt: [f64; 4],
    /// Redundant → not redundant.
    pub red_to_nored: [f64; 4],
    /// Not redundant → redundant.
    pub nored_to_red: [f64; 4],
}

/// Table 3 of the paper.
pub const DNS_TRANSITIONS: DnsTransitions = DnsTransitions {
    pvt_to_single: [0.0, 7.4, 9.8, 10.7],
    single_to_pvt: [1.0, 1.6, 4.2, 6.0],
    red_to_nored: [1.0, 1.6, 1.0, 0.5],
    nored_to_red: [2.0, 1.9, 1.1, 0.5],
};

impl DnsMarginals {
    /// Per-band density of each state, in order
    /// (private, single, multi, private+third).
    pub fn densities(&self) -> [[f64; 4]; 4] {
        let third = cumulative_to_density(self.third);
        let critical = cumulative_to_density(self.critical);
        let ppt = cumulative_to_density(self.private_plus_third);
        let mut out = [[0.0; 4]; 4];
        for b in 0..4 {
            let multi = (third[b] - critical[b] - ppt[b]).max(0.0);
            out[0][b] = (100.0 - third[b]).max(0.0);
            out[1][b] = critical[b];
            out[2][b] = multi;
            out[3][b] = ppt[b];
        }
        out
    }
}

/// Samples a 2016 DNS state for a site in `band`.
pub fn sample_dns_2016(band: usize, rng: &mut DetRng) -> DepState {
    let d = DNS_2016.densities();
    let weights = [d[0][band], d[1][band], d[2][band], d[3][band]];
    // lint:allow(panic) — weights are static non-zero tables defined in this module
    match rng.weighted_index(&weights).expect("non-zero weights") {
        0 => DepState::Private,
        1 => DepState::SingleThird,
        2 => DepState::MultiThird,
        _ => DepState::PrivatePlusThird,
    }
}

/// Evolves a 2016 DNS state to 2020 using Table 3 band-conditional
/// transition probabilities.
pub fn evolve_dns(state16: DepState, band: usize, rng: &mut DetRng) -> DepState {
    let d16 = DNS_2016.densities();
    let t = &DNS_TRANSITIONS;
    let pvt_to_single = cumulative_to_density(t.pvt_to_single);
    let single_to_pvt = cumulative_to_density(t.single_to_pvt);
    let red_to_nored = cumulative_to_density(t.red_to_nored);
    let nored_to_red = cumulative_to_density(t.nored_to_red);

    let cond = |rate: f64, source_share: f64| {
        if source_share <= 0.0 {
            0.0
        } else {
            (rate / source_share).clamp(0.0, 1.0)
        }
    };

    match state16 {
        DepState::Private => {
            if rng.chance(cond(pvt_to_single[band], d16[0][band])) {
                DepState::SingleThird
            } else {
                DepState::Private
            }
        }
        DepState::SingleThird => {
            let p_to_pvt = cond(single_to_pvt[band], d16[1][band]);
            let p_to_red = cond(nored_to_red[band], d16[1][band]);
            let u = rng.unit();
            if u < p_to_pvt {
                DepState::Private
            } else if u < p_to_pvt + p_to_red {
                // Adopting redundancy splits between multi-third and
                // private+third the same way the 2020 marginals do.
                if rng.chance(0.4) {
                    DepState::PrivatePlusThird
                } else {
                    DepState::MultiThird
                }
            } else {
                DepState::SingleThird
            }
        }
        DepState::MultiThird | DepState::PrivatePlusThird => {
            let red_share = d16[2][band] + d16[3][band];
            if rng.chance(cond(red_to_nored[band], red_share)) {
                DepState::SingleThird
            } else {
                state16
            }
        }
    }
}

// ---------------------------------------------------------------------
// CDN
// ---------------------------------------------------------------------

/// Website → CDN dependency state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CdnProfile {
    /// No CDN at all.
    None,
    /// A CDN owned by the site's own entity (Yahoo/yimg style).
    Private,
    /// One third-party CDN: critically dependent.
    SingleThird,
    /// Multiple CDNs: redundant.
    Multi,
}

impl CdnProfile {
    /// Whether any CDN is used.
    pub fn uses_cdn(self) -> bool {
        !matches!(self, CdnProfile::None)
    }

    /// Whether the site critically depends on one third-party CDN.
    pub fn is_critical(self) -> bool {
        matches!(self, CdnProfile::SingleThird)
    }
}

/// CDN marginals: adoption is a share of all sites, the rest are shares
/// of CDN-using sites. Cumulative bucket values.
#[derive(Debug, Clone, Copy)]
pub struct CdnMarginals {
    /// Share of sites using any CDN.
    pub adoption: [f64; 4],
    /// Of CDN users: share with a private CDN.
    pub private_of_users: [f64; 4],
    /// Of CDN users: share critically dependent (single third party).
    pub critical_of_users: [f64; 4],
}

/// 2020 CDN marginals (Figure 3 and §4.1).
pub const CDN_2020: CdnMarginals = CdnMarginals {
    adoption: [65.0, 55.0, 45.0, 33.2],
    private_of_users: [10.0, 6.0, 4.0, 2.4],
    critical_of_users: [43.0, 55.0, 70.0, 85.0],
};

/// 2016 CDN marginals (28.4% adoption at 100K; Table 4 deltas).
pub const CDN_2016: CdnMarginals = CdnMarginals {
    adoption: [60.0, 50.0, 40.0, 28.4],
    private_of_users: [10.0, 6.3, 4.8, 2.9],
    critical_of_users: [49.0, 58.8, 71.0, 85.0],
};

/// Table 4 transition rates (percent of sites, cumulative buckets),
/// plus the prose adoption/abandonment flows scaled to keep the 2020
/// list marginals (see DESIGN.md fidelity notes).
#[derive(Debug, Clone, Copy)]
pub struct CdnTransitions {
    /// Private CDN → single third-party CDN.
    pub pvt_to_single: [f64; 4],
    /// Redundant → not redundant.
    pub red_to_nored: [f64; 4],
    /// Not redundant → redundant.
    pub nored_to_red: [f64; 4],
    /// No CDN → some CDN (share of all sites).
    pub adopt: [f64; 4],
    /// Some CDN → no CDN (share of all sites).
    pub abandon: [f64; 4],
}

/// Table 4 of the paper (adoption flows from §4.1 prose, rescaled).
pub const CDN_TRANSITIONS: CdnTransitions = CdnTransitions {
    pvt_to_single: [0.0, 0.3, 0.8, 0.5],
    red_to_nored: [3.0, 2.7, 1.2, 1.1],
    nored_to_red: [9.0, 6.8, 3.0, 1.6],
    adopt: [11.0, 10.6, 10.4, 11.6],
    abandon: [6.0, 5.6, 5.4, 6.8],
};

impl CdnMarginals {
    /// Per-band densities of (none, private, single, multi), as shares
    /// of all sites.
    pub fn densities(&self) -> [[f64; 4]; 4] {
        let adoption = cumulative_to_density(self.adoption);
        let pvt_cum: [f64; 4] =
            std::array::from_fn(|i| self.adoption[i] * self.private_of_users[i] / 100.0);
        let crit_cum: [f64; 4] =
            std::array::from_fn(|i| self.adoption[i] * self.critical_of_users[i] / 100.0);
        let private = cumulative_to_density(pvt_cum);
        let critical = cumulative_to_density(crit_cum);
        let mut out = [[0.0; 4]; 4];
        for b in 0..4 {
            let multi = (adoption[b] - private[b] - critical[b]).max(0.0);
            out[0][b] = (100.0 - adoption[b]).max(0.0);
            out[1][b] = private[b];
            out[2][b] = critical[b];
            out[3][b] = multi;
        }
        out
    }
}

/// Samples a 2016 CDN state.
pub fn sample_cdn_2016(band: usize, rng: &mut DetRng) -> CdnProfile {
    let d = CDN_2016.densities();
    let weights = [d[0][band], d[1][band], d[2][band], d[3][band]];
    // lint:allow(panic) — weights are static non-zero tables defined in this module
    match rng.weighted_index(&weights).expect("non-zero weights") {
        0 => CdnProfile::None,
        1 => CdnProfile::Private,
        2 => CdnProfile::SingleThird,
        _ => CdnProfile::Multi,
    }
}

/// Evolves a 2016 CDN state to 2020.
pub fn evolve_cdn(state16: CdnProfile, band: usize, rng: &mut DetRng) -> CdnProfile {
    let d16 = CDN_2016.densities();
    let t = &CDN_TRANSITIONS;
    let pvt_to_single = cumulative_to_density(t.pvt_to_single);
    let red_to_nored = cumulative_to_density(t.red_to_nored);
    let nored_to_red = cumulative_to_density(t.nored_to_red);
    let adopt = cumulative_to_density(t.adopt);
    let abandon = cumulative_to_density(t.abandon);

    let cond = |rate: f64, share: f64| {
        if share <= 0.0 {
            0.0
        } else {
            (rate / share).clamp(0.0, 1.0)
        }
    };
    let users16 = 100.0 - d16[0][band];

    match state16 {
        CdnProfile::None => {
            if rng.chance(cond(adopt[band], d16[0][band])) {
                // New adopters overwhelmingly pick a single third party.
                if rng.chance(0.92) {
                    CdnProfile::SingleThird
                } else {
                    CdnProfile::Multi
                }
            } else {
                CdnProfile::None
            }
        }
        CdnProfile::Private => {
            if rng.chance(cond(pvt_to_single[band], d16[1][band])) {
                CdnProfile::SingleThird
            } else {
                CdnProfile::Private
            }
        }
        CdnProfile::SingleThird => {
            let p_abandon = cond(abandon[band] * d16[2][band] / users16, d16[2][band]);
            let p_red = cond(nored_to_red[band], d16[2][band]);
            let u = rng.unit();
            if u < p_abandon {
                CdnProfile::None
            } else if u < p_abandon + p_red {
                CdnProfile::Multi
            } else {
                CdnProfile::SingleThird
            }
        }
        CdnProfile::Multi => {
            let p_abandon = cond(abandon[band] * d16[3][band] / users16, d16[3][band]);
            let p_single = cond(red_to_nored[band], d16[3][band]);
            let u = rng.unit();
            if u < p_abandon {
                CdnProfile::None
            } else if u < p_abandon + p_single {
                CdnProfile::SingleThird
            } else {
                CdnProfile::Multi
            }
        }
    }
}

// ---------------------------------------------------------------------
// CA
// ---------------------------------------------------------------------

/// Website → CA dependency state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaProfile {
    /// Plain HTTP: no CA dependency at all.
    NoHttps,
    /// HTTPS with a certificate from the site's own (private) CA.
    PrivateCa,
    /// HTTPS, third-party CA, OCSP stapling enabled: not critical.
    ThirdStapled,
    /// HTTPS, third-party CA, no stapling: critically dependent.
    ThirdNoStaple,
}

impl CaProfile {
    /// Whether the site serves HTTPS.
    pub fn is_https(self) -> bool {
        !matches!(self, CaProfile::NoHttps)
    }

    /// Whether the site uses a third-party CA.
    pub fn uses_third_party(self) -> bool {
        matches!(self, CaProfile::ThirdStapled | CaProfile::ThirdNoStaple)
    }

    /// Whether the site critically depends on its CA.
    pub fn is_critical(self) -> bool {
        matches!(self, CaProfile::ThirdNoStaple)
    }
}

/// CA marginals: HTTPS adoption over all sites, then shares of HTTPS
/// sites. Cumulative bucket values.
#[derive(Debug, Clone, Copy)]
pub struct CaMarginals {
    /// HTTPS adoption over all sites.
    pub https: [f64; 4],
    /// Of HTTPS sites: share using a private CA.
    pub private_of_https: [f64; 4],
    /// Of third-party-CA HTTPS sites: share with OCSP stapling.
    pub stapled_of_third: [f64; 4],
}

/// 2020 CA marginals (Figure 4, §4.1).
pub const CA_2020: CaMarginals = CaMarginals {
    https: [95.0, 90.0, 85.0, 78.4],
    private_of_https: [25.0, 8.0, 3.0, 1.3],
    stapled_of_third: [20.0, 19.0, 18.0, 17.5],
};

/// 2016 CA marginals (46.5% HTTPS at 100K).
pub const CA_2016: CaMarginals = CaMarginals {
    https: [88.0, 72.0, 58.0, 46.5],
    private_of_https: [25.0, 8.0, 3.0, 1.3],
    stapled_of_third: [22.0, 13.0, 15.0, 17.0],
};

/// Table 5 transition rates (percent of 2016-HTTPS sites).
#[derive(Debug, Clone, Copy)]
pub struct CaTransitions {
    /// Stapling → no stapling.
    pub staple_to_nostaple: [f64; 4],
    /// No stapling → stapling.
    pub nostaple_to_staple: [f64; 4],
    /// Share of stapling among newly-HTTPS sites (§4.1: 11.9%).
    pub new_https_staple_rate: f64,
}

/// Table 5 of the paper.
pub const CA_TRANSITIONS: CaTransitions = CaTransitions {
    staple_to_nostaple: [7.5, 6.2, 9.1, 9.7],
    nostaple_to_staple: [3.7, 14.7, 12.9, 9.9],
    new_https_staple_rate: 11.9,
};

impl CaMarginals {
    /// Per-band densities of (nohttps, private, stapled, nostaple), as
    /// shares of all sites.
    pub fn densities(&self) -> [[f64; 4]; 4] {
        let https = cumulative_to_density(self.https);
        let pvt_cum: [f64; 4] =
            std::array::from_fn(|i| self.https[i] * self.private_of_https[i] / 100.0);
        let private = cumulative_to_density(pvt_cum);
        let stapled_cum: [f64; 4] = std::array::from_fn(|i| {
            let third = self.https[i] - pvt_cum[i];
            third * self.stapled_of_third[i] / 100.0
        });
        let stapled = cumulative_to_density(stapled_cum);
        let mut out = [[0.0; 4]; 4];
        for b in 0..4 {
            let nostaple = (https[b] - private[b] - stapled[b]).max(0.0);
            out[0][b] = (100.0 - https[b]).max(0.0);
            out[1][b] = private[b];
            out[2][b] = stapled[b];
            out[3][b] = nostaple;
        }
        out
    }
}

/// Samples a 2016 CA state.
pub fn sample_ca_2016(band: usize, rng: &mut DetRng) -> CaProfile {
    let d = CA_2016.densities();
    let weights = [d[0][band], d[1][band], d[2][band], d[3][band]];
    // lint:allow(panic) — weights are static non-zero tables defined in this module
    match rng.weighted_index(&weights).expect("non-zero weights") {
        0 => CaProfile::NoHttps,
        1 => CaProfile::PrivateCa,
        2 => CaProfile::ThirdStapled,
        _ => CaProfile::ThirdNoStaple,
    }
}

/// Evolves a 2016 CA state to 2020: HTTPS adoption grows, stapling flips
/// per Table 5.
pub fn evolve_ca(state16: CaProfile, band: usize, rng: &mut DetRng) -> CaProfile {
    let d16 = CA_2016.densities();
    let d20 = CA_2020.densities();
    let t = &CA_TRANSITIONS;
    let staple_to_no = cumulative_to_density(t.staple_to_nostaple);
    let no_to_staple = cumulative_to_density(t.nostaple_to_staple);

    let cond = |rate: f64, share: f64| {
        if share <= 0.0 {
            0.0
        } else {
            (rate / share).clamp(0.0, 1.0)
        }
    };
    // Table 5 rates are relative to 2016-HTTPS sites; rescale to the
    // source state's share of all sites.
    let https16 = 100.0 - d16[0][band];

    match state16 {
        CaProfile::NoHttps => {
            // Adoption closes the gap between 2016 and 2020 HTTPS rates.
            let gap = (d16[0][band] - d20[0][band]).max(0.0);
            if rng.chance(cond(gap, d16[0][band])) {
                if rng.chance(t.new_https_staple_rate / 100.0) {
                    CaProfile::ThirdStapled
                } else {
                    CaProfile::ThirdNoStaple
                }
            } else {
                CaProfile::NoHttps
            }
        }
        CaProfile::PrivateCa => CaProfile::PrivateCa,
        CaProfile::ThirdStapled => {
            let rate = staple_to_no[band] * https16 / 100.0;
            if rng.chance(cond(rate, d16[2][band])) {
                CaProfile::ThirdNoStaple
            } else {
                CaProfile::ThirdStapled
            }
        }
        CaProfile::ThirdNoStaple => {
            let rate = no_to_staple[band] * https16 / 100.0;
            if rng.chance(cond(rate, d16[3][band])) {
                CaProfile::ThirdStapled
            } else {
                CaProfile::ThirdNoStaple
            }
        }
    }
}

/// Alias used by the public API: DNS profiles are plain [`DepState`]s.
pub type DnsProfile = DepState;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_boundaries() {
        assert_eq!(band_of_rank(1), 0);
        assert_eq!(band_of_rank(100), 0);
        assert_eq!(band_of_rank(101), 1);
        assert_eq!(band_of_rank(1_000), 1);
        assert_eq!(band_of_rank(10_000), 2);
        assert_eq!(band_of_rank(10_001), 3);
        assert_eq!(band_of_rank(1_000_000), 3);
    }

    #[test]
    fn density_roundtrip() {
        let cum = [49.0, 65.0, 78.0, 89.0];
        let d = cumulative_to_density(cum);
        for (i, &limit) in [100usize, 1_000, 10_000, 100_000].iter().enumerate() {
            let back = density_to_cumulative(d, limit, 100_000);
            assert!(
                (back - cum[i]).abs() < 1e-9,
                "bucket {limit}: {back} vs {}",
                cum[i]
            );
        }
    }

    #[test]
    fn densities_are_valid_distributions() {
        for d in [DNS_2016.densities(), DNS_2020.densities()] {
            for b in 0..4 {
                let total: f64 = (0..4).map(|s| d[s][b]).sum();
                assert!((total - 100.0).abs() < 1e-6, "band {b} sums to {total}");
                assert!(
                    (0..4).all(|s| d[s][b] >= 0.0),
                    "negative density in band {b}"
                );
            }
        }
        for d in [
            CDN_2016.densities(),
            CDN_2020.densities(),
            CA_2016.densities(),
            CA_2020.densities(),
        ] {
            for b in 0..4 {
                let total: f64 = (0..4).map(|s| d[s][b]).sum();
                assert!((total - 100.0).abs() < 1e-6, "band {b} sums to {total}");
                assert!(
                    (0..4).all(|s| d[s][b] >= -1e-9),
                    "negative density in band {b}"
                );
            }
        }
    }

    #[test]
    fn dep_state_predicates() {
        assert!(!DepState::Private.uses_third_party());
        assert!(DepState::SingleThird.is_critical());
        assert!(DepState::MultiThird.is_redundant());
        assert!(DepState::PrivatePlusThird.is_redundant());
        assert!(!DepState::PrivatePlusThird.is_critical());
        assert!(CdnProfile::SingleThird.is_critical());
        assert!(!CdnProfile::Private.is_critical());
        assert!(CdnProfile::Private.uses_cdn());
        assert!(CaProfile::ThirdNoStaple.is_critical());
        assert!(CaProfile::ThirdStapled.is_https());
        assert!(!CaProfile::NoHttps.is_https());
        assert!(!CaProfile::PrivateCa.uses_third_party());
    }

    /// Sampling 2016 then evolving must land near the 2020 marginals —
    /// the consistency check behind every trend table.
    #[test]
    fn evolution_reaches_2020_marginals() {
        let rng = DetRng::new(42);
        let n = 60_000usize;
        let band = 3; // the bulk band dominates the 100K numbers
        let mut crit16 = 0usize;
        let mut crit20 = 0usize;
        let mut third20 = 0usize;
        for i in 0..n {
            let mut r = rng.fork_indexed("site", i);
            let s16 = sample_dns_2016(band, &mut r);
            let s20 = evolve_dns(s16, band, &mut r);
            crit16 += s16.is_critical() as usize;
            crit20 += s20.is_critical() as usize;
            third20 += s20.uses_third_party() as usize;
        }
        let d16 = DNS_2016.densities();
        let d20 = DNS_2020.densities();
        let got16 = 100.0 * crit16 as f64 / n as f64;
        let got20 = 100.0 * crit20 as f64 / n as f64;
        let got_third = 100.0 * third20 as f64 / n as f64;
        assert!(
            (got16 - d16[1][band]).abs() < 1.5,
            "crit16 {got16} vs {}",
            d16[1][band]
        );
        assert!(
            (got20 - d20[1][band]).abs() < 1.5,
            "crit20 {got20} vs {}",
            d20[1][band]
        );
        let want_third = 100.0 - d20[0][band];
        assert!(
            (got_third - want_third).abs() < 1.5,
            "third20 {got_third} vs {want_third}"
        );
    }

    #[test]
    fn cdn_evolution_grows_adoption() {
        let rng = DetRng::new(7);
        let n = 50_000usize;
        let band = 3;
        let (mut used16, mut used20, mut crit20) = (0usize, 0usize, 0usize);
        for i in 0..n {
            let mut r = rng.fork_indexed("cdn", i);
            let s16 = sample_cdn_2016(band, &mut r);
            let s20 = evolve_cdn(s16, band, &mut r);
            used16 += s16.uses_cdn() as usize;
            used20 += s20.uses_cdn() as usize;
            crit20 += s20.is_critical() as usize;
        }
        let a16 = 100.0 * used16 as f64 / n as f64;
        let a20 = 100.0 * used20 as f64 / n as f64;
        let d16 = CDN_2016.densities();
        assert!((a16 - (100.0 - d16[0][band])).abs() < 1.5);
        assert!(a20 > a16 + 2.0, "adoption must grow: {a16} → {a20}");
        let d20 = CDN_2020.densities();
        assert!((100.0 * crit20 as f64 / n as f64 - d20[2][band]).abs() < 2.5);
    }

    #[test]
    fn ca_evolution_adopts_https_keeps_stapling_flat() {
        let rng = DetRng::new(9);
        let n = 50_000usize;
        let band = 3;
        let (mut https16, mut https20, mut st16, mut st20) = (0usize, 0usize, 0usize, 0usize);
        for i in 0..n {
            let mut r = rng.fork_indexed("ca", i);
            let s16 = sample_ca_2016(band, &mut r);
            let s20 = evolve_ca(s16, band, &mut r);
            https16 += s16.is_https() as usize;
            https20 += s20.is_https() as usize;
            st16 += matches!(s16, CaProfile::ThirdStapled) as usize;
            st20 += matches!(s20, CaProfile::ThirdStapled) as usize;
        }
        assert!(https20 > https16, "HTTPS adoption must grow");
        let d20 = CA_2020.densities();
        let https_rate = 100.0 * https20 as f64 / n as f64;
        assert!(
            (https_rate - (100.0 - d20[0][band])).abs() < 2.0,
            "https20 {https_rate}"
        );
        // Stapling churns but stays in the same regime (no significant
        // change — Observation 6).
        let s16r = st16 as f64 / https16 as f64;
        let s20r = st20 as f64 / https20 as f64;
        assert!(
            (s16r - s20r).abs() < 0.06,
            "stapling regime shift: {s16r} vs {s20r}"
        );
    }
}
