//! World materialization.
//!
//! Turns a [`SnapshotPlan`] into a fully wired [`World`]: every DNS
//! provider gets servers and zones, every CDN an edge and a CNAME
//! domain, every CA a responder reachable through its own (possibly
//! third-party) DNS and CDN, and every site a zone, webserver,
//! certificate, and landing page — such that the measurement pipeline
//! can discover everything the paper's scripts discovered, purely over
//! the wire.

// lint:allow-file(panic) — world construction runs on static catalogs and
// seeded RNG only; every expect here encodes a generator invariant, and a
// violation means the generator itself is wrong, which must abort loudly.

use crate::config::WorldConfig;
use crate::profiles::{CaProfile, CdnProfile, DepState};
use crate::providers::{self, CaProviderSpec, ConglomerateSpec, DnsProvider, ProviderDep};
use crate::snapshots::{plan_snapshot, SnapshotPlan};
use crate::truth::{GroundTruth, SiteListing, SiteTruth};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use webdeps_dns::record::{RecordData, Soa};
use webdeps_dns::zone::Zone;
use webdeps_dns::{DnsNetwork, Resolver, ServerId};
use webdeps_model::name::dn;
use webdeps_model::{
    timing, CaId, DetRng, DomainName, EntityId, EntityKind, EntityRegistry, PublicSuffixList,
    SiteId,
};
use webdeps_tls::{Pki, PkiBuilder};
use webdeps_web::server::{TlsConfig, VirtualHost};
use webdeps_web::{
    CdnDirectory, CnameToCdnMap, Page, Resource, ResourceKind, Scheme, Url, WebClient, WebNetwork,
};

/// Shared third-party *content* hosts (fonts, ads, widgets) that appear
/// as external resources on landing pages. `Some(cdn)` fronts the host
/// with that CDN — external CNAME chains the pipeline must *not* count
/// as site-CDN pairs.
const CONTENT_PROVIDERS: &[(&str, Option<&str>)] = &[
    ("fontserve.com", Some("Akamai")),
    ("adnet.com", Some("CloudFront")),
    ("jslib-cdn.com", Some("Cloudflare CDN")),
    ("trackify.com", None),
    ("socialwidgets.com", Some("Fastly")),
];

/// A fully materialized snapshot of the synthetic Internet.
#[derive(Debug)]
pub struct World {
    /// Generation parameters.
    pub config: WorldConfig,
    /// Ground-truth ownership registry (validation only).
    pub entities: EntityRegistry,
    /// Public-suffix list shared with the measurement pipeline.
    pub psl: PublicSuffixList,
    /// The name system.
    pub dns: DnsNetwork,
    /// The web-serving plane.
    pub web: WebNetwork,
    /// The PKI.
    pub pki: Pki,
    /// CDN ground-truth directory (the CNAME map is derived from it).
    pub cdn_dir: CdnDirectory,
    /// The measurement pipeline's CNAME-to-CDN map.
    pub cname_map: CnameToCdnMap,
    /// Per-site ground truth (validation only).
    pub truth: GroundTruth,
    /// Provider display name → owning entity.
    provider_entities: BTreeMap<String, EntityId>,
}

impl World {
    /// Generates a world from scratch. Site synthesis is sharded across
    /// `WEBDEPS_JOBS` workers (auto-detected when unset); output is
    /// byte-identical at any worker count.
    pub fn generate(config: WorldConfig) -> World {
        World::generate_with_jobs(config, 0)
    }

    /// [`Self::generate`] with an explicit worker count (`0` = auto).
    /// The job count is a speed knob only — results are identical.
    pub fn generate_with_jobs(config: WorldConfig, jobs: usize) -> World {
        World::from_plan_with_jobs(plan_snapshot(&config), jobs)
    }

    /// Materializes a prepared plan.
    pub fn from_plan(plan: SnapshotPlan) -> World {
        World::from_plan_with_jobs(plan, 0)
    }

    /// [`Self::from_plan`] with an explicit worker count (`0` = auto).
    pub fn from_plan_with_jobs(plan: SnapshotPlan, jobs: usize) -> World {
        Builder::new(plan, jobs).build()
    }

    /// A fresh resolver bound to this world.
    pub fn resolver(&self) -> Resolver<'_> {
        Resolver::new(&self.dns)
    }

    /// A fresh browser-like client bound to this world.
    pub fn client(&self) -> WebClient<'_> {
        WebClient::new(self.resolver(), &self.web, &self.pki)
    }

    /// The public site list handed to the measurement pipeline.
    pub fn listings(&self) -> Vec<SiteListing> {
        self.truth.listings()
    }

    /// Ground truth for a site.
    pub fn site(&self, id: SiteId) -> &SiteTruth {
        self.truth.site(id)
    }

    /// The owning entity of a named provider (for outage injection),
    /// e.g. `"Dyn"`, `"Akamai"`, `"DigiCert"`, `"Googol CDN"`.
    pub fn provider_entity(&self, name: &str) -> Option<EntityId> {
        self.provider_entities.get(name).copied()
    }

    /// All provider names with their entities.
    pub fn provider_entities(&self) -> impl Iterator<Item = (&str, EntityId)> {
        self.provider_entities.iter().map(|(n, e)| (n.as_str(), *e))
    }
}

/// Incremental world assembly state (use [`World::generate`] or
/// [`World::from_plan`]; the builder is not directly constructible).
pub struct Builder {
    plan: SnapshotPlan,
    entities: EntityRegistry,
    dns_b: webdeps_dns::NetworkBuilder,
    web_b: webdeps_web::WebNetworkBuilder,
    cdn_dir: CdnDirectory,
    pki_b: Option<PkiBuilder>,
    rng: DetRng,
    next_web_ip: u32,
    next_dns_ip: u32,
    /// DNS provider name → its nameserver ServerIds.
    dns_servers: BTreeMap<String, Vec<ServerId>>,
    /// DNS provider name → catalog entry.
    dns_catalog: BTreeMap<String, DnsProvider>,
    /// CDN name → (cname domain, edge ip).
    cdn_info: BTreeMap<String, (DomainName, Ipv4Addr)>,
    /// CA name → id.
    ca_ids: BTreeMap<String, CaId>,
    provider_entities: BTreeMap<String, EntityId>,
    serial: u32,
    jobs: usize,
}

impl Builder {
    fn new(plan: SnapshotPlan, jobs: usize) -> Builder {
        let seed = plan.config.seed;
        Builder {
            jobs,
            plan,
            entities: EntityRegistry::new(),
            dns_b: DnsNetwork::builder(),
            web_b: WebNetwork::builder(),
            cdn_dir: CdnDirectory::new(),
            pki_b: Some(Pki::builder()),
            rng: DetRng::new(seed ^ 0xB11D),
            next_web_ip: 0x0A00_0001, // 10.0.0.1
            next_dns_ip: 0x0C00_0001, // 12.0.0.1
            dns_servers: BTreeMap::new(),
            dns_catalog: BTreeMap::new(),
            cdn_info: BTreeMap::new(),
            ca_ids: BTreeMap::new(),
            provider_entities: BTreeMap::new(),
            serial: 1,
        }
    }

    fn web_ip(&mut self) -> Ipv4Addr {
        let ip = Ipv4Addr::from(self.next_web_ip);
        self.next_web_ip += 1;
        ip
    }

    fn dns_ip(&mut self) -> Ipv4Addr {
        let ip = Ipv4Addr::from(self.next_dns_ip);
        self.next_dns_ip += 1;
        ip
    }

    fn serial(&mut self) -> u32 {
        self.serial += 1;
        self.serial
    }

    /// Builds a SOA whose MNAME/RNAME belong to `admin_domain`.
    fn soa_of(&mut self, admin_domain: &DomainName) -> Soa {
        let serial = self.serial();
        Soa::standard(
            admin_domain.child("ns1").expect("valid"),
            admin_domain.child("hostmaster").expect("valid"),
            serial,
        )
    }

    /// Creates two nameserver hosts under `ns_domain` for `operator` and
    /// returns their ids. Idempotent per domain.
    fn make_ns_servers(&mut self, ns_domain: &DomainName, operator: EntityId) -> Vec<ServerId> {
        let mut out = Vec::with_capacity(2);
        for label in ["ns1", "ns2"] {
            let host = ns_domain.child(label).expect("valid label");
            let ip = self.dns_ip();
            out.push(self.dns_b.add_server(host, ip, operator));
        }
        out
    }

    /// Deploys a zone that carries A records for its own `ns1`/`ns2`.
    fn deploy_infra_zone(
        &mut self,
        origin: DomainName,
        soa: Soa,
        ns_hosts: Vec<DomainName>,
        servers: Vec<ServerId>,
        a_records: Vec<(DomainName, Ipv4Addr)>,
    ) {
        let mut zone = Zone::new(origin.clone(), soa);
        for h in &ns_hosts {
            zone.add(origin.clone(), RecordData::Ns(h.clone()));
        }
        for (name, ip) in a_records {
            zone.add(name, RecordData::A(ip));
        }
        self.dns_b.add_zone(zone, servers);
    }

    /// Resolves a provider-level DNS dependency into the (ns hosts,
    /// servers, soa-admin domain) of the dependent's zone.
    fn dep_dns_setup(
        &mut self,
        own_domain: &DomainName,
        own_entity: EntityId,
        dep: &ProviderDep,
    ) -> (Vec<DomainName>, Vec<ServerId>, DomainName) {
        match dep {
            ProviderDep::Private | ProviderDep::None => {
                let servers = self.make_ns_servers(own_domain, own_entity);
                (
                    vec![
                        own_domain.child("ns1").expect("valid"),
                        own_domain.child("ns2").expect("valid"),
                    ],
                    servers,
                    own_domain.clone(),
                )
            }
            ProviderDep::SingleThird(p) => {
                let prov = self
                    .dns_catalog
                    .get(*p)
                    .unwrap_or_else(|| panic!("unknown DNS provider {p}"))
                    .clone();
                let servers = self.dns_servers[*p].clone();
                (
                    vec![
                        prov.ns_domain.child("ns1").expect("valid"),
                        prov.ns_domain.child("ns2").expect("valid"),
                    ],
                    servers,
                    prov.ns_domain.clone(),
                )
            }
            ProviderDep::Redundant(p) => {
                let prov = self
                    .dns_catalog
                    .get(*p)
                    .unwrap_or_else(|| panic!("unknown DNS provider {p}"))
                    .clone();
                let mut servers = self.make_ns_servers(own_domain, own_entity);
                servers.extend(self.dns_servers[*p].iter().copied());
                (
                    vec![
                        own_domain.child("ns1").expect("valid"),
                        prov.ns_domain.child("ns1").expect("valid"),
                    ],
                    servers,
                    own_domain.clone(),
                )
            }
        }
    }

    /// Phase 1: DNS providers — entities, servers, and provider zones.
    fn build_dns_providers(&mut self) {
        let psl = PublicSuffixList::builtin();
        let catalog = providers::dns_catalog(&self.plan.config);
        for p in catalog {
            // Entities own *registrable* domains (cloudflare.com, not
            // ns.cloudflare.com) so wire identities resolve to owners.
            let reg = |d: &DomainName| psl.registrable_domain(d).unwrap_or_else(|| d.clone());
            let mut domains = vec![reg(&p.ns_domain)];
            for extra in &p.extra_ns_domains {
                let r = reg(extra);
                if !domains.contains(&r) {
                    domains.push(r);
                }
            }
            let entity = self
                .entities
                .register(p.name.clone(), EntityKind::DnsProvider, domains);
            self.provider_entities.insert(p.name.clone(), entity);

            let mut servers = self.make_ns_servers(&p.ns_domain.clone(), entity);
            let mut a_records: Vec<(DomainName, Ipv4Addr)> = Vec::new();
            for (i, &sid) in servers.iter().enumerate() {
                let host = p
                    .ns_domain
                    .child(if i == 0 { "ns1" } else { "ns2" })
                    .expect("valid");
                // Use the actual registered server IP for glue realism.
                let _ = sid;
                a_records.push((host, Ipv4Addr::from(self.next_dns_ip - 2 + i as u32)));
            }
            let soa = self.soa_of(&p.ns_domain.clone());
            self.deploy_infra_zone(
                p.ns_domain.clone(),
                soa,
                vec![
                    p.ns_domain.child("ns1").expect("valid"),
                    p.ns_domain.child("ns2").expect("valid"),
                ],
                servers.clone(),
                a_records,
            );
            // Extra alias domains (Alibaba style): separate zones whose
            // SOA MNAME points at the primary domain's master.
            for extra in &p.extra_ns_domains {
                let extra_server = {
                    let host = extra.child("ns1").expect("valid");
                    let ip = self.dns_ip();
                    self.dns_b.add_server(host, ip, entity)
                };
                servers.push(extra_server);
                let serial = self.serial();
                let soa = Soa::standard(
                    p.ns_domain.child("ns1").expect("valid"),
                    p.ns_domain.child("hostmaster").expect("valid"),
                    serial,
                );
                let a = vec![(
                    extra.child("ns1").expect("valid"),
                    Ipv4Addr::from(self.next_dns_ip - 1),
                )];
                self.deploy_infra_zone(
                    extra.clone(),
                    soa,
                    vec![extra.child("ns1").expect("valid")],
                    vec![extra_server],
                    a,
                );
            }
            self.dns_servers.insert(p.name.clone(), servers);
            self.dns_catalog.insert(p.name.clone(), p);
        }
    }

    /// Phase 2: third-party CDNs — entities, edges, CNAME-domain zones.
    fn build_cdns(&mut self) {
        let catalog = providers::cdn_catalog(&self.plan.config);
        for c in catalog {
            self.build_one_cdn(&c.name, c.cname_domain.clone(), None, &c.dns_dep, true);
            let _ = c;
        }
    }

    /// Creates one CDN (third-party or conglomerate-private).
    fn build_one_cdn(
        &mut self,
        name: &str,
        cname_domain: DomainName,
        owner: Option<EntityId>,
        dns_dep: &ProviderDep,
        advertises: bool,
    ) {
        let entity = owner.unwrap_or_else(|| {
            let reg = PublicSuffixList::builtin()
                .registrable_domain(&cname_domain)
                .unwrap_or_else(|| cname_domain.clone());
            self.entities
                .register(name.to_string(), EntityKind::CdnProvider, vec![reg])
        });
        self.provider_entities.insert(name.to_string(), entity);
        self.cdn_dir.register(
            name.to_string(),
            entity,
            vec![cname_domain.clone()],
            advertises,
        );

        let edge_ip = self.web_ip();
        self.web_b.add_server(edge_ip, entity);

        let (ns_hosts, servers, mut admin) = self.dep_dns_setup(&cname_domain, entity, dns_dep);
        if name == "Cloudflare CDN" {
            // One real-world confusion source, faithfully modeled: the
            // CDN zone shares its SOA administration with the company's
            // DNS product, so the SOA rule cannot separate a
            // Cloudflare-DNS site from the Cloudflare CDN (those pairs
            // end up unclassified, like the paper's 771/38,030).
            admin = dn("ns.cloudflare.com");
        }
        let soa = self.soa_of(&admin);
        // In-zone A records for any private nameservers.
        let mut a_records = Vec::new();
        for h in &ns_hosts {
            if h.is_subdomain_of(&cname_domain) {
                a_records.push((h.clone(), self.dns_ip()));
            }
        }
        self.deploy_infra_zone(cname_domain.clone(), soa, ns_hosts, servers, a_records);
        self.cdn_info
            .insert(name.to_string(), (cname_domain, edge_ip));
    }

    /// Registers a CDN customer host (`cust-…`) pointing at the edge.
    fn add_cdn_customer(&mut self, cdn_name: &str, label: &str) -> DomainName {
        let (domain, edge_ip) = self
            .cdn_info
            .get(cdn_name)
            .unwrap_or_else(|| panic!("unknown CDN {cdn_name}"))
            .clone();
        let host = domain.child(label).expect("valid label");
        let zone = self.dns_b.zone_mut(&domain).expect("CDN zone deployed");
        zone.add(host.clone(), RecordData::A(edge_ip));
        host
    }

    /// Phase 3: third-party CAs — PKI registration, responder infra.
    fn build_cas(&mut self) {
        let catalog = providers::ca_catalog(&self.plan.config);
        for ca in catalog {
            let entity = self.entities.register(
                ca.name.clone(),
                EntityKind::CertificateAuthority,
                vec![ca.domain.clone()],
            );
            self.build_one_ca(&ca.name, ca.domain.clone(), entity, &ca, None);
        }
    }

    /// Creates one CA's PKI entry and serving infrastructure.
    /// `zone_override` nests the CA's zone under a conglomerate domain.
    fn build_one_ca(
        &mut self,
        name: &str,
        ca_domain: DomainName,
        entity: EntityId,
        spec: &CaProviderSpec,
        lifetime_override: Option<u64>,
    ) {
        self.provider_entities.insert(name.to_string(), entity);
        let ocsp_host = ca_domain.child("ocsp").expect("valid");
        let crl_host = ca_domain.child("crl").expect("valid");
        let ca_id = self.pki_b.as_mut().expect("pki open").add_ca(
            name.to_string(),
            entity,
            vec![ocsp_host.clone()],
            vec![crl_host.clone()],
            lifetime_override.unwrap_or(spec.cert_lifetime),
        );
        self.ca_ids.insert(name.to_string(), ca_id);

        // Responder origin.
        let responder_ip = self.web_ip();
        self.web_b.add_server(responder_ip, entity);
        self.web_b
            .set_vhost(ocsp_host.clone(), VirtualHost::default());
        self.web_b
            .set_vhost(crl_host.clone(), VirtualHost::default());

        // The CA's zone, wired per its DNS dependency. CAs administer
        // their own zone *content* (SOA MNAME/RNAME stay in-house) even
        // when the serving nameservers are a third party's — which is
        // why the paper's SOA rule classifies CA→DNS and CA→CDN pairs
        // decently (94% strawman accuracy) while failing on websites.
        let (ns_hosts, servers, _admin) = self.dep_dns_setup(&ca_domain, entity, &spec.dns_dep);
        let soa = self.soa_of(&ca_domain.clone());
        let mut a_records = Vec::new();
        for h in &ns_hosts {
            if h.is_subdomain_of(&ca_domain) {
                a_records.push((h.clone(), self.dns_ip()));
            }
        }
        self.deploy_infra_zone(ca_domain.clone(), soa, ns_hosts, servers, a_records);

        // Responder hosts: direct A records, or CNAME onto a CDN.
        let zone_origin = ca_domain.clone();
        match &spec.cdn_dep {
            ProviderDep::SingleThird(cdn) | ProviderDep::Redundant(cdn) => {
                let label = format!("ca-{}", name.to_ascii_lowercase().replace([' ', '\''], "-"));
                let cust = self.add_cdn_customer(cdn, &label);
                let zone = self.dns_b.zone_mut(&zone_origin).expect("CA zone deployed");
                zone.add(ocsp_host, RecordData::Cname(cust.clone()));
                zone.add(crl_host, RecordData::Cname(cust));
            }
            _ => {
                let zone = self.dns_b.zone_mut(&zone_origin).expect("CA zone deployed");
                zone.add(ocsp_host, RecordData::A(responder_ip));
                zone.add(crl_host, RecordData::A(responder_ip));
            }
        }
    }

    /// Phase 4: conglomerates — corporate zones, private CAs and CDNs.
    fn build_conglomerates(&mut self) {
        for spec in providers::CONGLOMERATES {
            self.build_one_conglomerate(spec);
        }
    }

    fn conglomerate_entity_name(spec: &ConglomerateSpec) -> String {
        spec.name.to_string()
    }

    fn build_one_conglomerate(&mut self, spec: &ConglomerateSpec) {
        let primary = dn(spec.domain);
        let mut domains = vec![primary.clone()];
        domains.extend(spec.alias_domains.iter().map(|d| dn(d)));
        let entity = self.entities.register(
            Self::conglomerate_entity_name(spec),
            EntityKind::WebsiteOperator,
            domains.clone(),
        );
        self.provider_entities.insert(spec.name.to_string(), entity);

        // Corporate zones: private DNS on the primary domain.
        let servers = self.make_ns_servers(&primary, entity);
        let ns_hosts = vec![
            primary.child("ns1").expect("valid"),
            primary.child("ns2").expect("valid"),
        ];
        let soa = self.soa_of(&primary);
        let mut a_records = Vec::new();
        for h in &ns_hosts {
            a_records.push((h.clone(), self.dns_ip()));
        }
        self.deploy_infra_zone(
            primary.clone(),
            soa,
            ns_hosts.clone(),
            servers.clone(),
            a_records,
        );
        for alias in spec.alias_domains {
            let alias = dn(alias);
            if spec.private_cdn && Some(alias.as_str()) == spec.alias_domains.first().copied() {
                continue; // the first alias becomes the private CDN domain below
            }
            let serial = self.serial();
            let soa = Soa::standard(
                primary.child("ns1").expect("valid"),
                primary.child("hostmaster").expect("valid"),
                serial,
            );
            self.deploy_infra_zone(alias, soa, ns_hosts.clone(), servers.clone(), Vec::new());
        }

        // Private CDN (Yahoo/yimg style): first alias domain, wired per
        // the conglomerate's CDN-DNS dependency (the twitter case).
        if spec.private_cdn {
            let cdn_domain = dn(spec
                .alias_domains
                .first()
                .expect("private CDN needs an alias"));
            let cdn_name = format!("{} CDN", spec.name);
            self.build_one_cdn(&cdn_name, cdn_domain, Some(entity), &spec.cdn_dns_dep, true);
        }

        // Private CA: nested zone `pki.<primary>`, wired per the
        // conglomerate's CA dependencies (the godaddy / microsoft cases).
        if spec.private_ca {
            let ca_domain = primary.child("pki").expect("valid");
            let ca_name = format!("{} CA", spec.name);
            let fake_spec = CaProviderSpec {
                name: ca_name.clone(),
                domain: ca_domain.clone(),
                weights: [0.0; 4],
                dns_dep: spec.ca_dns_dep.clone(),
                cdn_dep: spec.ca_cdn_dep.clone(),
                cert_lifetime: 397 * 86_400,
            };
            self.build_one_ca(&ca_name, ca_domain, entity, &fake_spec, None);
        }

        // The corporate site itself (not part of the ranked list; member
        // sites from the plan point here via SAN evidence).
        let www_ip = self.web_ip();
        self.web_b.add_server(www_ip, entity);
        let zone = self.dns_b.zone_mut(&primary).expect("deployed");
        zone.add(primary.clone(), RecordData::A(www_ip));
    }

    /// Phase 5: shared content providers (external page resources).
    fn build_content_providers(&mut self) {
        for (domain, cdn) in CONTENT_PROVIDERS {
            let domain = dn(domain);
            let entity = self.entities.register(
                format!("Content {domain}"),
                EntityKind::WebsiteOperator,
                vec![domain.clone()],
            );
            let servers = self.make_ns_servers(&domain, entity);
            let ns_hosts = vec![
                domain.child("ns1").expect("valid"),
                domain.child("ns2").expect("valid"),
            ];
            let soa = self.soa_of(&domain);
            let mut a_records = Vec::new();
            for h in &ns_hosts {
                a_records.push((h.clone(), self.dns_ip()));
            }
            let origin_ip = self.web_ip();
            self.web_b.add_server(origin_ip, entity);
            let static_host = domain.child("static").expect("valid");
            self.web_b
                .set_vhost(static_host.clone(), VirtualHost::default());
            self.deploy_infra_zone(domain.clone(), soa, ns_hosts, servers, a_records);
            let cname = match cdn {
                Some(cdn_name) if self.cdn_info.contains_key(*cdn_name) => {
                    Some(self.add_cdn_customer(
                        cdn_name,
                        &format!("cust-{}", domain.labels().next().expect("label")),
                    ))
                }
                _ => None,
            };
            let zone = self.dns_b.zone_mut(&domain).expect("deployed");
            match cname {
                Some(cust) => zone.add(static_host, RecordData::Cname(cust)),
                None => zone.add(static_host, RecordData::A(origin_ip)),
            }
        }
    }

    /// External content hosts available for page generation.
    fn content_hosts() -> Vec<DomainName> {
        CONTENT_PROVIDERS
            .iter()
            .map(|(d, _)| dn(d).child("static").expect("valid"))
            .collect()
    }

    /// Phase 6: the ranked site population.
    ///
    /// Site synthesis is sharded across [`par::fan_out`] workers: each
    /// shard *plans* its contiguous run of sites — zones, certificates,
    /// pages, vhosts — against predicted ids/IPs/serials derived from
    /// per-site counter prefix sums ([`SiteCursor::advance`]), and the
    /// planned mutations ([`ShardOps`]) are applied serially in shard
    /// order, asserting every prediction. The serial path is the
    /// one-shard path, so output is byte-identical at any
    /// `WEBDEPS_JOBS` value (see `tests/parallel_determinism.rs`).
    fn build_sites(&mut self, pki: &mut Pki) {
        let content_hosts = Self::content_hosts();
        let sites = std::mem::take(&mut self.plan.truth.sites);

        let start = SiteCursor {
            web_ip: self.next_web_ip,
            dns_ip: self.next_dns_ip,
            serial: self.serial,
            server: self.dns_b.server_count(),
            entity: self.entities.len(),
            cert_serial: pki.next_serial(),
        };
        let jobs = webdeps_model::par::effective_jobs(self.jobs, sites.len());
        let chunk = sites.len().div_ceil(jobs).max(1);
        let mut cursor = start;
        let mut shards: Vec<(SiteCursor, &[SiteTruth])> = Vec::with_capacity(jobs);
        for part in sites.chunks(chunk) {
            shards.push((cursor, part));
            for site in part {
                cursor.advance(site);
            }
        }
        let final_cursor = cursor;
        let boundary: Vec<SiteCursor> = shards
            .iter()
            .skip(1)
            .map(|&(c, _)| c)
            .chain(std::iter::once(final_cursor))
            .collect();

        let shard_ops: Vec<ShardOps> = {
            let planner = SitePlanner {
                rng: &self.rng,
                dns_catalog: &self.dns_catalog,
                dns_servers: &self.dns_servers,
                cdn_info: &self.cdn_info,
                ca_ids: &self.ca_ids,
                provider_entities: &self.provider_entities,
                content_hosts: &content_hosts,
                pki,
            };
            webdeps_model::par::fan_out(&shards, shards.len(), |&(shard_start, part)| {
                planner.plan_shard(shard_start, part)
            })
        };

        for (ops, expected_end) in shard_ops.into_iter().zip(boundary) {
            assert_eq!(
                ops.end, expected_end,
                "shard counter prediction diverged from planned consumption"
            );
            self.apply_shard(ops, pki);
        }
        self.next_web_ip = final_cursor.web_ip;
        self.next_dns_ip = final_cursor.dns_ip;
        self.serial = final_cursor.serial;
        self.plan.truth.sites = sites;
    }

    /// Applies one shard's planned mutations to the shared builders, in
    /// the order the serial generator would have produced them.
    fn apply_shard(&mut self, ops: ShardOps, pki: &mut Pki) {
        for op in ops.entities {
            match op {
                EntityOp::Register {
                    name,
                    domains,
                    predicted,
                } => {
                    let got = self
                        .entities
                        .register(name, EntityKind::WebsiteOperator, domains);
                    assert_eq!(got, predicted, "entity id prediction diverged");
                }
                EntityOp::AddDomain { id, domain } => self.entities.add_domain(id, domain),
            }
        }
        for (ip, operator) in ops.web_servers {
            self.web_b.add_server(ip, operator);
        }
        for (host, ip, operator, predicted) in ops.dns_servers {
            let got = self.dns_b.add_server(host, ip, operator);
            assert_eq!(got, predicted, "dns server id prediction diverged");
        }
        for (zone, servers) in ops.zones {
            self.dns_b.add_zone(zone, servers);
        }
        for (origin, host, ip) in ops.cdn_records {
            let zone = self.dns_b.zone_mut(&origin).expect("CDN zone deployed");
            zone.add(host, RecordData::A(ip));
        }
        for (host, vhost) in ops.vhosts {
            self.web_b.set_vhost(host, vhost);
        }
        for (origin, img, ip) in ops.guarded_img {
            // First writer wins: sites are applied in order, so the
            // earliest conglomerate member publishes the sibling-brand
            // A record — exactly as the serial generator did.
            if let Some(zone) = self.dns_b.zone_mut(&origin) {
                if matches!(
                    zone.lookup(&img, webdeps_dns::RecordType::A),
                    webdeps_dns::zone::ZoneAnswer::NxDomain { .. }
                ) {
                    zone.add(img, RecordData::A(ip));
                }
            }
        }
        for (ca, serial) in ops.certs {
            pki.register_issued(ca, serial);
        }
    }

    fn build(mut self) -> World {
        timing::time("gen/providers", || {
            self.build_dns_providers();
            self.build_cdns();
            self.build_cas();
            self.build_conglomerates();
            self.build_content_providers();
        });
        let mut pki = self.pki_b.take().expect("pki open").build();
        timing::time("gen/sites", || self.build_sites(&mut pki));
        let _finalize = timing::scope("gen/finalize");
        let cname_map = CnameToCdnMap::from_directory(&self.cdn_dir);
        World {
            config: self.plan.config,
            entities: self.entities,
            psl: PublicSuffixList::builtin(),
            dns: self.dns_b.build(),
            web: self.web_b.build(),
            pki,
            cdn_dir: self.cdn_dir,
            cname_map,
            truth: self.plan.truth,
            provider_entities: self.provider_entities,
        }
    }
}

/// Counter snapshot for sharded site construction. Site synthesis
/// consumes six monotone counters (origin IPs, nameserver IPs, zone
/// serials, DNS server ids, entity ids, certificate serials); each
/// site's consumption is a pure function of its [`SiteTruth`], so shard
/// starting points are computed by prefix sums and every worker assigns
/// exactly the values the serial generator would have.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct SiteCursor {
    web_ip: u32,
    dns_ip: u32,
    serial: u32,
    server: usize,
    entity: usize,
    cert_serial: u64,
}

impl SiteCursor {
    /// Advances past one site's consumption — must stay in lockstep
    /// with [`SitePlanner::plan_site`] (the merge asserts it does).
    fn advance(&mut self, site: &SiteTruth) {
        self.web_ip += 1;
        if site.conglomerate.is_none() {
            self.entity += 1;
        }
        match site.dns.state {
            DepState::Private => {
                self.server += 2;
                self.dns_ip += 4;
                self.serial += if site.dns.alias_ns { 2 } else { 1 };
            }
            DepState::PrivatePlusThird => {
                self.server += 2;
                self.dns_ip += 3;
                self.serial += 1;
            }
            DepState::SingleThird | DepState::MultiThird => {
                self.serial += 1;
            }
        }
        if site.https() {
            self.cert_serial += 1;
        }
    }

    fn take_web_ip(&mut self) -> Ipv4Addr {
        let ip = Ipv4Addr::from(self.web_ip);
        self.web_ip += 1;
        ip
    }

    fn take_dns_ip(&mut self) -> Ipv4Addr {
        let ip = Ipv4Addr::from(self.dns_ip);
        self.dns_ip += 1;
        ip
    }

    fn take_serial(&mut self) -> u32 {
        self.serial += 1;
        self.serial
    }
}

/// An entity-registry mutation planned by a shard worker.
enum EntityOp {
    Register {
        name: String,
        domains: Vec<DomainName>,
        predicted: EntityId,
    },
    AddDomain {
        id: EntityId,
        domain: DomainName,
    },
}

/// One shard's planned mutations of the shared builders, recorded in
/// the order the serial generator would perform them. Everything
/// allocation-heavy (names, zones, certificates, pages) is built on the
/// worker; applying ops is pure map/vec insertion.
#[derive(Default)]
struct ShardOps {
    entities: Vec<EntityOp>,
    web_servers: Vec<(Ipv4Addr, EntityId)>,
    dns_servers: Vec<(DomainName, Ipv4Addr, EntityId, ServerId)>,
    /// Zone deployments in serial deployment order (a site's alias-NS
    /// zone precedes its own zone).
    zones: Vec<(Zone, Vec<ServerId>)>,
    /// `cust-…` A records destined for already-deployed CDN zones:
    /// (zone origin, host, edge IP).
    cdn_records: Vec<(DomainName, DomainName, Ipv4Addr)>,
    vhosts: Vec<(DomainName, VirtualHost)>,
    /// Sibling-brand `img` records guarded by first-writer-wins:
    /// (zone origin, host, origin IP).
    guarded_img: Vec<(DomainName, DomainName, Ipv4Addr)>,
    /// Certificates prepared off-thread, to register in serial order.
    certs: Vec<(CaId, u64)>,
    /// Counter state after the shard's last site (continuity check).
    end: SiteCursor,
}

/// Read-only context a shard worker plans sites against.
struct SitePlanner<'a> {
    rng: &'a DetRng,
    dns_catalog: &'a BTreeMap<String, DnsProvider>,
    dns_servers: &'a BTreeMap<String, Vec<ServerId>>,
    cdn_info: &'a BTreeMap<String, (DomainName, Ipv4Addr)>,
    ca_ids: &'a BTreeMap<String, CaId>,
    provider_entities: &'a BTreeMap<String, EntityId>,
    content_hosts: &'a [DomainName],
    pki: &'a Pki,
}

impl SitePlanner<'_> {
    fn plan_shard(&self, start: SiteCursor, sites: &[SiteTruth]) -> ShardOps {
        let mut ops = ShardOps::default();
        let mut cur = start;
        for site in sites {
            self.plan_site(site, &mut cur, &mut ops);
        }
        ops.end = cur;
        ops
    }

    /// Plans two nameserver hosts under `ns_domain` with predicted ids.
    fn plan_ns_servers(
        &self,
        ns_domain: &DomainName,
        operator: EntityId,
        cur: &mut SiteCursor,
        ops: &mut ShardOps,
    ) -> Vec<ServerId> {
        let mut out = Vec::with_capacity(2);
        for label in ["ns1", "ns2"] {
            let host = ns_domain.child(label).expect("valid label");
            let ip = cur.take_dns_ip();
            let sid = ServerId::from_index(cur.server);
            cur.server += 1;
            ops.dns_servers.push((host, ip, operator, sid));
            out.push(sid);
        }
        out
    }

    /// Plans a CDN customer host (`cust-…`) pointing at the edge.
    fn plan_cdn_customer(&self, cdn_name: &str, label: &str, ops: &mut ShardOps) -> DomainName {
        let (domain, edge_ip) = self
            .cdn_info
            .get(cdn_name)
            .unwrap_or_else(|| panic!("unknown CDN {cdn_name}"));
        let host = domain.child(label).expect("valid label");
        ops.cdn_records
            .push((domain.clone(), host.clone(), *edge_ip));
        host
    }

    fn plan_site(&self, site: &SiteTruth, cur: &mut SiteCursor, ops: &mut ShardOps) {
        let rng = self.rng.fork_indexed("site-build", site.universe);
        let domain = site.domain.clone();

        // Entity: conglomerate member sites belong to the conglomerate.
        let entity = match site.conglomerate {
            Some(ci) => {
                let e = self.provider_entities[providers::CONGLOMERATES[ci].name];
                ops.entities.push(EntityOp::AddDomain {
                    id: e,
                    domain: domain.clone(),
                });
                e
            }
            None => {
                let mut domains = vec![domain.clone()];
                if site.dns.alias_ns {
                    domains.push(dn(&format!("site-{}-dns.net", site.universe)));
                }
                let id = EntityId::from_index(cur.entity);
                cur.entity += 1;
                ops.entities.push(EntityOp::Register {
                    name: format!("Operator of {domain}"),
                    domains,
                    predicted: id,
                });
                id
            }
        };

        // Origin webserver.
        let origin_ip = cur.take_web_ip();
        ops.web_servers.push((origin_ip, entity));

        // --- DNS ---------------------------------------------------
        let mut ns_hosts: Vec<DomainName> = Vec::new();
        let mut servers: Vec<ServerId> = Vec::new();
        let mut extra_zone: Option<(DomainName, Vec<ServerId>)> = None;
        match site.dns.state {
            DepState::Private => {
                let ns_base = if site.dns.alias_ns {
                    dn(&format!("site-{}-dns.net", site.universe))
                } else {
                    domain.clone()
                };
                let own = self.plan_ns_servers(&ns_base, entity, cur, ops);
                ns_hosts.push(ns_base.child("ns1").expect("valid"));
                ns_hosts.push(ns_base.child("ns2").expect("valid"));
                servers.extend(own.iter().copied());
                if site.dns.alias_ns {
                    extra_zone = Some((ns_base, own));
                }
            }
            DepState::SingleThird => {
                let p = &self.dns_catalog[&site.dns.providers[0]];
                if let Some(extra) = p.extra_ns_domains.first() {
                    // Alibaba-style: two nameserver domains, one entity.
                    ns_hosts.push(p.ns_domain.child("ns1").expect("valid"));
                    ns_hosts.push(extra.child("ns1").expect("valid"));
                } else {
                    ns_hosts.push(p.ns_domain.child("ns1").expect("valid"));
                    ns_hosts.push(p.ns_domain.child("ns2").expect("valid"));
                }
                servers.extend(self.dns_servers[&site.dns.providers[0]].iter().copied());
            }
            DepState::MultiThird => {
                for name in &site.dns.providers {
                    let p = &self.dns_catalog[name];
                    ns_hosts.push(p.ns_domain.child("ns1").expect("valid"));
                    servers.extend(self.dns_servers[name].iter().copied());
                }
            }
            DepState::PrivatePlusThird => {
                let own = self.plan_ns_servers(&domain, entity, cur, ops);
                ns_hosts.push(domain.child("ns1").expect("valid"));
                servers.extend(own);
                let p = &self.dns_catalog[&site.dns.providers[0]];
                ns_hosts.push(p.ns_domain.child("ns1").expect("valid"));
                servers.extend(self.dns_servers[&site.dns.providers[0]].iter().copied());
            }
        }

        let soa = if site.dns.provider_soa {
            let ns_domain = &self.dns_catalog[&site.dns.providers[0]].ns_domain;
            let serial = cur.take_serial();
            Soa::standard(
                ns_domain.child("ns1").expect("valid"),
                ns_domain.child("hostmaster").expect("valid"),
                serial,
            )
        } else {
            // Self-managed SOA: MNAME points at a hidden master under
            // the site's own domain (a common production setup), so the
            // SOA strawman correctly detects third-party nameservers.
            let serial = cur.take_serial();
            Soa::standard(
                domain.child("ns0").expect("valid"),
                domain.child("hostmaster").expect("valid"),
                serial,
            )
        };

        let mut zone = Zone::new(domain.clone(), soa);
        for h in &ns_hosts {
            zone.add(domain.clone(), RecordData::Ns(h.clone()));
        }
        zone.add(domain.clone(), RecordData::A(origin_ip));
        for h in &ns_hosts {
            if h.is_subdomain_of(&domain) {
                zone.add(h.clone(), RecordData::A(cur.take_dns_ip()));
            }
        }
        if let Some((alias_domain, alias_servers)) = extra_zone {
            // Alias-NS zone: same administrator as the site zone.
            let serial = cur.take_serial();
            let soa = Soa::standard(
                alias_domain.child("ns1").expect("valid"),
                domain.child("hostmaster").expect("valid"),
                serial,
            );
            let mut alias_zone = Zone::new(alias_domain.clone(), soa);
            alias_zone.add(
                alias_domain.clone(),
                RecordData::Ns(alias_domain.child("ns1").expect("valid")),
            );
            for label in ["ns1", "ns2"] {
                alias_zone.add(
                    alias_domain.child(label).expect("valid"),
                    RecordData::A(cur.take_dns_ip()),
                );
            }
            ops.zones.push((alias_zone, alias_servers));
        }

        // --- CDN on-ramps + hosts ------------------------------------
        let www = domain.child("www").expect("valid");
        let www2 = domain.child("www2").expect("valid");
        let static_host = domain.child("static").expect("valid");
        let sid = site.id.index();
        match site.cdn.state {
            CdnProfile::None => {
                zone.add(static_host.clone(), RecordData::A(origin_ip));
            }
            CdnProfile::Private | CdnProfile::SingleThird => {
                let cdn = &site.cdn.cdns[0];
                let cust_www = self.plan_cdn_customer(cdn, &format!("cust-{sid}-www"), ops);
                let cust_static = self.plan_cdn_customer(cdn, &format!("cust-{sid}-st"), ops);
                zone.add(www.clone(), RecordData::Cname(cust_www));
                zone.add(static_host.clone(), RecordData::Cname(cust_static));
            }
            CdnProfile::Multi => {
                // Both CDNs are visible on the landing page: static
                // assets ride CDN A, image assets CDN B (multi-CDN sites
                // split object classes), and the document itself fails
                // over www → www2.
                let cust_a =
                    self.plan_cdn_customer(&site.cdn.cdns[0], &format!("cust-{sid}-www"), ops);
                let cust_b =
                    self.plan_cdn_customer(&site.cdn.cdns[1], &format!("cust-{sid}-www2"), ops);
                let cust_static =
                    self.plan_cdn_customer(&site.cdn.cdns[0], &format!("cust-{sid}-st"), ops);
                let cust_img =
                    self.plan_cdn_customer(&site.cdn.cdns[1], &format!("cust-{sid}-img"), ops);
                zone.add(www.clone(), RecordData::Cname(cust_a));
                zone.add(www2.clone(), RecordData::Cname(cust_b));
                zone.add(static_host.clone(), RecordData::Cname(cust_static));
                zone.add(
                    domain.child("img").expect("valid"),
                    RecordData::Cname(cust_img),
                );
            }
        }
        ops.zones.push((zone, servers));

        // --- Certificate ------------------------------------------
        let tls = if site.https() {
            let ca_name = site.ca.ca.as_ref().expect("HTTPS site has a CA");
            let ca_id = *self
                .ca_ids
                .get(ca_name)
                .unwrap_or_else(|| panic!("unknown CA {ca_name}"));
            let mut san = vec![domain.clone(), dn(&format!("*.{domain}"))];
            if let Some(ci) = site.conglomerate {
                let spec = &providers::CONGLOMERATES[ci];
                san.push(dn(spec.domain));
                for alias in spec.alias_domains {
                    san.push(dn(alias));
                    san.push(dn(&format!("*.{alias}")));
                }
            }
            if site.dns.alias_ns {
                san.push(dn(&format!("site-{}-dns.net", site.universe)));
            }
            let must_staple = rng.fork("must-staple").chance(0.002);
            let serial = cur.cert_serial;
            cur.cert_serial += 1;
            let cert = self.pki.ca(ca_id).make_certificate(
                serial,
                domain.clone(),
                san,
                webdeps_dns::SimTime::ZERO,
                must_staple,
            );
            ops.certs.push((ca_id, serial));
            let staple = site.ca.state == CaProfile::ThirdStapled || must_staple;
            Some(TlsConfig {
                certificate: std::sync::Arc::new(cert),
                staple,
            })
        } else {
            None
        };

        // --- Page + vhosts ------------------------------------------
        let scheme = if site.https() {
            Scheme::Https
        } else {
            Scheme::Http
        };
        let doc_hosts = site.document_hosts();
        let mut page = Page::new();
        page.push(Resource::new(
            Url {
                scheme,
                host: doc_hosts[0].clone(),
                path: "/app.js".into(),
            },
            ResourceKind::Script,
        ));
        page.push(Resource::new(
            Url {
                scheme,
                host: static_host.clone(),
                path: "/style.css".into(),
            },
            ResourceKind::Stylesheet,
        ));
        if site.cdn.state == CdnProfile::Multi {
            // The second CDN's objects (see the on-ramp wiring above).
            page.push(Resource::new(
                Url {
                    scheme,
                    host: domain.child("img").expect("valid"),
                    path: "/hero.png".into(),
                },
                ResourceKind::Image,
            ));
        }
        if let Some(ci) = site.conglomerate {
            let spec = &providers::CONGLOMERATES[ci];
            if let Some(alias) = spec.alias_domains.first() {
                // Internal resource on a sibling brand domain (the
                // yimg/yahoo heuristic case).
                page.push(Resource::new(
                    Url {
                        scheme,
                        host: dn(alias).child("img").expect("valid"),
                        path: "/logo.png".into(),
                    },
                    ResourceKind::Image,
                ));
            }
        }
        let mut crng = rng.fork("content");
        let n_ext = 1 + crng.below(3);
        for k in 0..n_ext {
            let host = &self.content_hosts
                [(crng.below(self.content_hosts.len()) + k) % self.content_hosts.len()];
            // External objects load over HTTP in this model so content
            // hosts need no certificates; the paper's pipeline only
            // needs their hostnames and CNAME chains.
            page.push(Resource::new(
                Url {
                    scheme: Scheme::Http,
                    host: host.clone(),
                    path: format!("/w{k}.js").into(),
                },
                ResourceKind::Script,
            ));
        }

        let page = std::sync::Arc::new(page);
        for host in &doc_hosts {
            ops.vhosts.push((
                host.clone(),
                VirtualHost {
                    tls: tls.clone(),
                    page: Some(page.clone()),
                    redirect: None,
                },
            ));
        }
        if site.cdn.state.uses_cdn() {
            // The apex answers from the origin with a redirect onto the
            // CDN-fronted www host, like real CDN onboarding does.
            ops.vhosts.push((
                domain.clone(),
                VirtualHost {
                    tls: tls.clone(),
                    page: None,
                    redirect: Some(www.clone()),
                },
            ));
        }
        ops.vhosts.push((
            static_host,
            VirtualHost {
                tls: tls.clone(),
                page: None,
                redirect: None,
            },
        ));
        if site.cdn.state == CdnProfile::Multi {
            ops.vhosts.push((
                domain.child("img").expect("valid"),
                VirtualHost {
                    tls: tls.clone(),
                    page: None,
                    redirect: None,
                },
            ));
        }
        if let Some(ci) = site.conglomerate {
            let spec = &providers::CONGLOMERATES[ci];
            if let Some(alias) = spec.alias_domains.first() {
                let img = dn(alias).child("img").expect("valid");
                ops.vhosts.push((
                    img.clone(),
                    VirtualHost {
                        tls: tls.clone(),
                        page: None,
                        redirect: None,
                    },
                ));
                // Resolvable target for the sibling-brand host — the
                // merge adds it first-writer-wins, like the serial
                // generator's NXDOMAIN-guarded insert did.
                ops.guarded_img.push((dn(alias), img, origin_ip));
            }
        }
    }
}

/// Convenience: the display name of a conglomerate's private CDN/CA used
/// in ground truth.
pub fn conglomerate_cdn_name(spec: &ConglomerateSpec) -> String {
    format!("{} CDN", spec.name)
}

/// Re-exported for examples: the conglomerate private-CA name.
pub fn conglomerate_ca_name(spec: &ConglomerateSpec) -> String {
    format!("{} CA", spec.name)
}

/// Builder type alias used by the public API docs.
pub type WorldBuilder = Builder;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use webdeps_dns::RecordType;

    fn small_world() -> World {
        World::generate(WorldConfig::small(41))
    }

    #[test]
    fn world_builds_and_sites_resolve() {
        let w = small_world();
        assert_eq!(w.truth.len(), 2_000);
        let mut resolver = w.resolver();
        let mut resolved = 0;
        for listing in w.listings().iter().take(200) {
            if resolver.resolve(&listing.domain, RecordType::A).is_ok() {
                resolved += 1;
            }
        }
        assert_eq!(resolved, 200, "every site apex must resolve");
    }

    #[test]
    fn document_hosts_fetch_end_to_end() {
        let w = small_world();
        let mut client = w.client();
        let mut ok = 0;
        let mut total = 0;
        for listing in w.listings().iter().take(300) {
            total += 1;
            let scheme = if listing.https {
                Scheme::Https
            } else {
                Scheme::Http
            };
            let url = Url {
                scheme,
                host: listing.document_hosts[0].clone(),
                path: "/".into(),
            };
            match client.fetch(&url) {
                Ok(out) => {
                    assert!(out.page.is_some(), "document host must serve a page");
                    ok += 1;
                }
                Err(e) => panic!("fetch of {url} failed: {e}"),
            }
        }
        assert_eq!(ok, total);
    }

    #[test]
    fn https_sites_present_covering_fresh_certs() {
        let w = small_world();
        let mut client = w.client();
        for listing in w.listings().iter().filter(|l| l.https).take(100) {
            let url = Url::https(listing.document_hosts[0].clone());
            let out = client.fetch(&url).expect("https fetch");
            let tls = out.tls.expect("tls session");
            assert!(tls.certificate.covers(&url.host));
        }
    }

    #[test]
    fn stapling_matches_ground_truth() {
        let w = small_world();
        let mut client = w.client();
        let mut stapled_sites = 0;
        for listing in w.listings().iter().filter(|l| l.https).take(400) {
            let truth = w.site(listing.id);
            let url = Url::https(listing.document_hosts[0].clone());
            let out = client.fetch(&url).expect("https fetch");
            if truth.ca.state == CaProfile::ThirdStapled {
                assert!(out.was_stapled(), "{} should staple", listing.domain);
                stapled_sites += 1;
            }
        }
        assert!(stapled_sites > 0, "sample must include stapling sites");
    }

    #[test]
    fn cdn_sites_route_through_edge_with_visible_chain() {
        let w = small_world();
        let mut client = w.client();
        let mut checked = 0;
        for listing in w.listings() {
            let truth = w.site(listing.id);
            if truth.cdn.state != CdnProfile::SingleThird {
                continue;
            }
            let scheme = if listing.https {
                Scheme::Https
            } else {
                Scheme::Http
            };
            let url = Url {
                scheme,
                host: listing.document_hosts[0].clone(),
                path: "/".into(),
            };
            let out = client.fetch(&url).expect("cdn fetch");
            assert!(!out.cname_chain.is_empty(), "CDN on-ramp must be a CNAME");
            let cdn_id = w.cname_map.classify_chain(out.cname_chain.iter());
            let cdn = w.cdn_dir.get(cdn_id.expect("chain maps to a CDN"));
            assert_eq!(&cdn.name, &truth.cdn.cdns[0]);
            checked += 1;
            if checked >= 50 {
                break;
            }
        }
        assert!(checked > 10, "world must contain CDN sites");
    }

    #[test]
    fn apex_redirects_lead_browsers_to_the_cdn_host() {
        use webdeps_web::Crawler;
        let w = small_world();
        let site = w
            .truth
            .sites
            .iter()
            .find(|s| s.cdn.state == CdnProfile::SingleThird)
            .expect("CDN site exists");
        let mut client = w.client();
        // Start from the bare apex, as a user typing the domain would.
        let report = Crawler::crawl(
            &mut client,
            &site.domain,
            std::slice::from_ref(&site.domain),
            site.https(),
        );
        assert!(report.reachable());
        assert_eq!(
            report.document_host,
            Some(site.domain.child("www").unwrap()),
            "apex redirect must land on the CDN-fronted host"
        );
        assert!(
            !report.document_chain.is_empty(),
            "…which rides the CDN CNAME"
        );
    }

    #[test]
    fn dyn_style_outage_kills_critical_sites_spares_redundant() {
        let w = small_world();
        // Find a provider with critically dependent sites in this world.
        let mut by_provider: HashMap<&str, (usize, usize)> = HashMap::new();
        for s in &w.truth.sites {
            for p in &s.dns.providers {
                let e = by_provider.entry(p.as_str()).or_default();
                if s.dns.state == DepState::SingleThird {
                    e.0 += 1;
                } else {
                    e.1 += 1;
                }
            }
        }
        let (victim, _) = by_provider
            .iter()
            .filter(|(_, (crit, red))| *crit > 5 && *red > 0)
            .max_by_key(|(_, (crit, _))| *crit)
            .expect("some provider has critical + redundant customers");
        let entity = w.provider_entity(victim).expect("provider entity");

        let mut client = w.client();
        client.set_faults(webdeps_dns::FaultPlan::healthy().fail_entity(entity));
        client.resolver_mut().disable_cache();

        let mut critical_dead = 0;
        let mut critical_total = 0;
        let mut redundant_alive = 0;
        let mut redundant_total = 0;
        for s in &w.truth.sites {
            if !s.dns.providers.iter().any(|p| p == victim) {
                continue;
            }
            let scheme = if s.https() {
                Scheme::Https
            } else {
                Scheme::Http
            };
            let url = Url {
                scheme,
                host: s.document_hosts()[0].clone(),
                path: "/".into(),
            };
            let up = client.fetch(&url).is_ok();
            match s.dns.state {
                DepState::SingleThird => {
                    critical_total += 1;
                    if !up {
                        critical_dead += 1;
                    }
                }
                DepState::MultiThird | DepState::PrivatePlusThird => {
                    redundant_total += 1;
                    if up {
                        redundant_alive += 1;
                    }
                }
                DepState::Private => unreachable!("private sites have no providers"),
            }
        }
        assert!(critical_total > 0 && redundant_total > 0);
        assert_eq!(
            critical_dead, critical_total,
            "all critical customers must go dark"
        );
        assert_eq!(
            redundant_alive, redundant_total,
            "all redundant customers must survive"
        );
    }

    #[test]
    fn worlds_are_deterministic() {
        let a = small_world();
        let b = small_world();
        assert_eq!(a.dns.zone_count(), b.dns.zone_count());
        assert_eq!(a.web.vhost_count(), b.web.vhost_count());
        for (x, y) in a.truth.sites.iter().zip(b.truth.sites.iter()).take(100) {
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.dns.providers, y.dns.providers);
        }
    }

    #[test]
    fn provider_entities_are_exposed() {
        let w = small_world();
        assert!(w.provider_entity("Cloudflare").is_some());
        assert!(w.provider_entity("DigiCert").is_some());
        assert!(w.provider_entity("Akamai").is_some());
        assert!(w.provider_entity("NoSuchProvider").is_none());
    }
}
