//! Property tests for the linter's lexer: on *any* input — including
//! unterminated literals, stray quotes, and half-open comments — `lex`
//! must never panic, and token line numbers must be nondecreasing and
//! bounded by the input's line count.

use webdeps_lint::lexer::lex;
use webdeps_testkit::{check, gen};

/// Fragments chosen to hit every tricky lexer path: raw strings, byte
/// literals, lifetime-vs-char ambiguity, nested comments, and plain
/// soup. Random concatenations of these produce both valid Rust and
/// aggressively malformed input.
const FRAGMENTS: &[&str] = &[
    "fn",
    "let",
    "unwrap",
    "HashMap",
    " ",
    "\n",
    "\t",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    ".",
    "::",
    "->",
    "=",
    "\"",
    "\\",
    "\\\"",
    "'",
    "'a",
    "'a'",
    "'\\n'",
    "b'",
    "b\"",
    "r\"",
    "r#\"",
    "\"#",
    "r##\"",
    "\"##",
    "/*",
    "*/",
    "/**",
    "/*!",
    "//",
    "///",
    "//!",
    "/* /* */",
    "0x1f",
    "1_000",
    "3.14",
    "r#type",
    "_x",
    "é",
    "λ",
    "—",
    "lint:allow(panic)",
    "lint:allow-file(",
    "TODO",
    "#[cfg(test)]",
    "#[test]",
    "std::env::var",
    "Instant::now()",
];

fn soup() -> gen::Gen<String> {
    gen::vec_of(gen::usize_range(0, FRAGMENTS.len() - 1), 0, 64)
        .map(|idxs| idxs.into_iter().map(|i| FRAGMENTS[i]).collect::<String>())
}

#[test]
fn lexer_never_panics_on_fragment_soup() {
    check("lexer_never_panics", &soup(), |src| {
        let src = src.clone();
        let toks =
            std::panic::catch_unwind(move || lex(&src)).map_err(|_| "lex panicked".to_string())?;
        let mut prev = 0u32;
        for t in &toks {
            if t.line < prev {
                return Err(format!("line numbers decreased: {} after {prev}", t.line));
            }
            prev = t.line;
        }
        Ok(())
    });
}

#[test]
fn lexer_line_numbers_stay_within_input() {
    check("lexer_lines_bounded", &soup(), |src| {
        let nlines = src.split('\n').count() as u32;
        let src2 = src.clone();
        let toks =
            std::panic::catch_unwind(move || lex(&src2)).map_err(|_| "lex panicked".to_string())?;
        for t in &toks {
            if t.line == 0 || t.line > nlines {
                return Err(format!("token line {} outside 1..={nlines}", t.line));
            }
        }
        Ok(())
    });
}

#[test]
fn full_lint_pass_never_panics_on_fragment_soup() {
    let cfg = webdeps_lint::Config::default();
    check("lint_source_never_panics", &soup(), move |src| {
        let src = src.clone();
        let cfg = cfg.clone();
        std::panic::catch_unwind(move || {
            webdeps_lint::lint_source("crates/model/src/fuzz.rs", &src, &cfg)
        })
        .map_err(|_| "lint_source panicked".to_string())?;
        Ok(())
    });
}
