//! Behavioral outage simulation.
//!
//! The graph metrics *predict* which sites a provider outage denies;
//! this module *replays* the outage in the simulator — fail the
//! provider's entities, flush caches, and attempt every site's document
//! fetch through the full Figure-1 request path — so the two can be
//! cross-validated (the Mirai-Dyn what-if, end to end).

use webdeps_dns::{FaultPlan, FaultSchedule, SimTime};
use webdeps_model::{fan_out_chunked, DomainName, EntityId, ModelError, SiteId};
use webdeps_tls::RevocationPolicy;
use webdeps_web::{Scheme, Url, WebClient};
use webdeps_worldgen::{SiteListing, World};

/// Result of one simulated outage.
#[derive(Debug, Clone)]
pub struct OutageResult {
    /// Entities failed.
    pub failed_entities: Vec<EntityId>,
    /// Sites that became unreachable.
    pub affected: Vec<SiteId>,
    /// Sites probed.
    pub total: usize,
}

impl OutageResult {
    /// Affected fraction of the probed population.
    pub fn affected_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.affected.len() as f64 / self.total as f64
        }
    }
}

/// Resolves a provider reference (catalog name like `"Dyn"`, or a wire
/// identity like `"dynect.net"`) to its owning entity.
pub fn provider_entity(world: &World, provider: &str) -> Option<EntityId> {
    if let Some(e) = world.provider_entity(provider) {
        return Some(e);
    }
    let domain = DomainName::parse(provider).ok()?;
    world.entities.owner_of(&domain)
}

/// Simulates an outage of the given providers and probes every site.
/// `hard_fail` selects the strict revocation policy under which CA
/// unavailability denies service (the paper's criticality model).
///
/// Fails with [`ModelError::UnknownProvider`] when a provider
/// reference matches neither a catalog name nor a wire identity.
#[must_use]
pub fn simulate_outage(
    world: &World,
    providers: &[&str],
    hard_fail: bool,
) -> Result<OutageResult, ModelError> {
    simulate_outage_with_jobs(world, providers, hard_fail, 0)
}

/// [`simulate_outage`] with an explicit worker count (`0` = auto).
///
/// The probe sweep shards the site list across workers, each with its
/// own client. Per-site probes are independent here — the resolver
/// cache is disabled and the fault plan is time-invariant — so shard
/// boundaries cannot change outcomes and the affected list (merged in
/// site order) is identical at any `jobs`;
/// `tests/parallel_determinism.rs` holds this to account.
#[must_use]
pub fn simulate_outage_with_jobs(
    world: &World,
    providers: &[&str],
    hard_fail: bool,
    jobs: usize,
) -> Result<OutageResult, ModelError> {
    let entities: Vec<EntityId> = providers
        .iter()
        .map(|p| {
            provider_entity(world, p).ok_or_else(|| ModelError::UnknownProvider {
                name: p.to_string(),
            })
        })
        .collect::<Result<_, _>>()?;

    let mut plan = FaultPlan::healthy();
    for &e in &entities {
        plan = plan.fail_entity(e);
    }

    let listings = world.listings();
    let affected = probe_sweep(&listings, jobs, || {
        let mut client = world.client();
        if hard_fail {
            client = client.with_policy(RevocationPolicy::HardFail);
        }
        client.set_faults(plan.clone());
        client.resolver_mut().disable_cache();
        client
    });
    Ok(OutageResult {
        failed_entities: entities,
        affected,
        total: listings.len(),
    })
}

/// Shards `listings` across workers, probes each site through a
/// per-shard client built by `make_client`, and returns the affected
/// sites in listing order.
fn probe_sweep<'w, F>(listings: &[SiteListing], jobs: usize, make_client: F) -> Vec<SiteId>
where
    F: Fn() -> WebClient<'w> + Sync,
{
    fan_out_chunked(listings, jobs, |shard| {
        let mut client = make_client();
        let mut affected = Vec::new();
        for l in shard {
            if !probe_site(&mut client, &l.document_hosts, l.https) {
                affected.push(l.id);
            }
        }
        affected
    })
}

/// Probes every site under `schedule`, evaluated at the instant `at` —
/// the schedule-aware sibling of [`simulate_outage`]. Probing is
/// cache-free (each site sees the instant's conditions, not history);
/// the incident-replay engine in `webdeps-chaos` layers cache carry-over
/// on top of this. Infallible: the schedule already names entities, so
/// there is no provider lookup to fail.
///
/// `max_sites` caps the probed population (`0` probes everything) so
/// invariant sweeps over many schedules stay fast.
pub fn simulate_outage_at(
    world: &World,
    schedule: &FaultSchedule,
    at: SimTime,
    hard_fail: bool,
    max_sites: usize,
) -> OutageResult {
    simulate_outage_at_with_jobs(world, schedule, at, hard_fail, max_sites, 0)
}

/// [`simulate_outage_at`] with an explicit worker count (`0` = auto).
///
/// Safe to shard for the same reason probing is cache-free: every
/// worker's client is pinned to the instant `at` with its resolver
/// cache disabled, so a site's probe outcome is a function of the
/// schedule and the instant alone, never of which sites shared its
/// worker. The chaos replay engine deliberately does *not* use this —
/// its persistent client carries caches across sites and ticks, which
/// is the semantics being studied there.
pub fn simulate_outage_at_with_jobs(
    world: &World,
    schedule: &FaultSchedule,
    at: SimTime,
    hard_fail: bool,
    max_sites: usize,
    jobs: usize,
) -> OutageResult {
    let mut listings = world.listings();
    if max_sites > 0 {
        listings.truncate(max_sites);
    }
    let affected = probe_sweep(&listings, jobs, || {
        let mut client = world.client();
        if hard_fail {
            client = client.with_policy(RevocationPolicy::HardFail);
        }
        client.set_schedule(schedule.clone());
        client.resolver_mut().disable_cache();
        client.resolver_mut().advance_time(at.seconds());
        client
    });
    OutageResult {
        failed_entities: schedule.entities_active_at(at),
        affected,
        total: listings.len(),
    }
}

/// Whether any of a site's document hosts answers through `client`.
pub fn probe_site(client: &mut WebClient<'_>, hosts: &[DomainName], https: bool) -> bool {
    let scheme = if https { Scheme::Https } else { Scheme::Http };
    hosts.iter().any(|h| {
        client
            .fetch(&Url {
                scheme,
                host: h.clone(),
                path: "/".into(),
            })
            .is_ok()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DepGraph;
    use crate::metrics::{MetricOptions, Metrics};
    use webdeps_measure::measure_world;
    use webdeps_model::ServiceKind;
    use webdeps_worldgen::{World, WorldConfig};

    #[test]
    fn healthy_baseline_has_no_outage() {
        let world = World::generate(WorldConfig::small(71));
        let result = simulate_outage(&world, &[], false).expect("no providers to resolve");
        assert!(result.affected.is_empty(), "nothing failed, nothing breaks");
        assert_eq!(result.total, world.truth.len());
    }

    #[test]
    fn scheduled_outage_matches_plan_outage_inside_its_window() {
        use webdeps_dns::fault::Degradation;
        let world = World::generate(WorldConfig::small(71));
        let dyn_entity = world.provider_entity("Dyn").expect("Dyn exists");
        let schedule = FaultSchedule::seeded(9).fail_entity_during(
            dyn_entity,
            SimTime(3_600),
            SimTime(7_200),
            Degradation::Down,
        );
        let before = simulate_outage_at(&world, &schedule, SimTime(0), false, 0);
        assert!(before.affected.is_empty(), "no fault active yet");
        assert!(before.failed_entities.is_empty());

        let during = simulate_outage_at(&world, &schedule, SimTime(5_000), false, 0);
        assert_eq!(during.failed_entities, vec![dyn_entity]);
        let plan_view = simulate_outage(&world, &["Dyn"], false).expect("catalog name");
        assert_eq!(
            during.affected, plan_view.affected,
            "inside the window the schedule is exactly the binary outage"
        );

        let after = simulate_outage_at(&world, &schedule, SimTime(7_200), false, 0);
        assert!(after.affected.is_empty(), "window is half-open");
    }

    #[test]
    fn max_sites_caps_the_probe() {
        let world = World::generate(WorldConfig::small(71));
        let r = simulate_outage_at(&world, &FaultSchedule::empty(), SimTime(0), false, 25);
        assert_eq!(r.total, 25);
    }

    #[test]
    fn provider_lookup_accepts_names_and_domains() {
        let world = World::generate(WorldConfig::small(71));
        let by_name = provider_entity(&world, "Dyn").expect("catalog name");
        let by_domain = provider_entity(&world, "dynect.net").expect("wire identity");
        assert_eq!(by_name, by_domain);
        assert!(provider_entity(&world, "no-such-provider-anywhere").is_none());
    }

    /// The headline cross-validation: graph-predicted DNS impact equals
    /// behaviorally simulated damage.
    #[test]
    fn graph_impact_matches_simulated_outage_for_dns() {
        let world = World::generate(WorldConfig::small(71));
        let ds = measure_world(&world);
        let graph = DepGraph::from_dataset(&ds);
        let metrics = Metrics::new(&graph);

        // Pick a mid-sized provider so the test stays fast but nonempty.
        let provider_key = "domaincontrol.com"; // GoDaddy
        let node = graph
            .provider(provider_key, ServiceKind::Dns)
            .expect("observed provider");
        let predicted = metrics.dependent_sites(node, true, &MetricOptions::direct_only());

        let result = simulate_outage(&world, &[provider_key], false)
            .expect("providers are from the world catalog");
        let simulated: std::collections::HashSet<_> = result.affected.iter().copied().collect();

        // Every predicted-critical site must actually break.
        for site in &predicted {
            assert!(
                simulated.contains(site),
                "site {site} predicted critical but survived"
            );
        }
        // The simulation may break a few extra sites (uncharacterized
        // ones the measurement excluded), but not wildly more.
        assert!(
            simulated.len() <= predicted.len() + ds.sites.len() / 10,
            "simulated {} vs predicted {}",
            simulated.len(),
            predicted.len()
        );
    }

    /// CA outage under hard-fail: stapling sites survive, others die —
    /// behaviorally confirming the paper's criticality definition.
    #[test]
    fn ca_outage_spares_stapling_sites() {
        use webdeps_worldgen::profiles::CaProfile;
        let world = World::generate(WorldConfig::small(71));
        // DigiCert's entity also runs its OCSP responders.
        let result = simulate_outage(&world, &["DigiCert"], true)
            .expect("providers are from the world catalog");
        let affected: std::collections::HashSet<_> = result.affected.iter().copied().collect();
        let mut stapled_children = 0;
        for truth in &world.truth.sites {
            if truth.ca.ca.as_deref() != Some("DigiCert") {
                continue;
            }
            match truth.ca.state {
                CaProfile::ThirdStapled => {
                    assert!(
                        !affected.contains(&truth.id),
                        "{} staples and must survive",
                        truth.domain
                    );
                    stapled_children += 1;
                }
                CaProfile::ThirdNoStaple => {
                    assert!(
                        affected.contains(&truth.id),
                        "{} does not staple and must fail",
                        truth.domain
                    );
                }
                _ => {}
            }
        }
        assert!(
            stapled_children > 0,
            "sample must include stapling DigiCert sites"
        );
    }

    /// The 2016 Mirai-Dyn scenario: killing Dyn also kills Fastly
    /// customers (Fastly's DNS ran on Dyn exclusively in 2016).
    #[test]
    fn dyn_outage_2016_takes_fastly_customers_down() {
        let world = World::generate(WorldConfig {
            seed: 71,
            n_sites: 2_000,
            year: webdeps_worldgen::SnapshotYear::Y2016,
        });
        let result =
            simulate_outage(&world, &["Dyn"], false).expect("providers are from the world catalog");
        let affected: std::collections::HashSet<_> = result.affected.iter().copied().collect();
        let mut fastly_only = 0;
        for truth in &world.truth.sites {
            let uses_fastly_only = truth.cdn.cdns == vec!["Fastly".to_string()];
            let dns_on_dyn = truth.dns.providers.iter().any(|p| p == "Dyn");
            if uses_fastly_only && !dns_on_dyn && truth.dns.state.is_critical() {
                // Site's own DNS is fine, but its single CDN rides Dyn.
                assert!(
                    affected.contains(&truth.id),
                    "{} should fall with Fastly→Dyn",
                    truth.domain
                );
                fastly_only += 1;
            }
        }
        assert!(fastly_only > 0, "2016 world must contain Fastly-only sites");
    }
}
