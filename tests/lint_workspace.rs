//! The linter's own acceptance gate: the live workspace must be clean.
//!
//! Any new `HashMap` iteration into output, stray `unwrap()` in a
//! library path, layering violation, or external dependency fails this
//! test — the static-analysis pass is part of the tier-1 suite, not an
//! optional extra.

use std::path::Path;

#[test]
fn live_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = webdeps_lint::lint_workspace(root, &webdeps_lint::Config::default())
        .expect("workspace scan");
    assert!(
        report.files_scanned > 100,
        "scan must cover the whole tree, saw only {} files",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        report.render_human(false)
    );
    // Every committed suppression must actually silence something;
    // stale allows rot into misleading documentation.
    assert!(
        report.unused_allows.is_empty(),
        "unused lint:allow directives: {:?}",
        report.unused_allows
    );
}

#[test]
fn suppressions_all_carry_reasons() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = webdeps_lint::lint_workspace(root, &webdeps_lint::Config::default())
        .expect("workspace scan");
    for s in &report.suppressed {
        assert!(
            !s.reason.is_empty(),
            "suppression at {}:{} has no reason",
            s.violation.file,
            s.allow_line
        );
    }
}
