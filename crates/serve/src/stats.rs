//! Health counters and latency tracking.
//!
//! Everything the `/stats` query reports lives here, designed to be
//! updated from many worker threads without contention surprises:
//! plain atomics for counters, and a fixed-size logarithmic histogram
//! (one atomic per power-of-two microsecond bucket) for latencies —
//! recording is lock-free and O(1), and quantiles are read by a single
//! cumulative walk. Memory is constant no matter how many queries the
//! daemon has served.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two microsecond buckets: bucket `i` holds
/// latencies in `[2^i, 2^(i+1))` µs, except bucket 0 (`< 2` µs) and the
/// last bucket (everything above ~17 minutes).
const BUCKETS: usize = 30;

/// Lock-free logarithmic latency histogram.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    fn bucket_of(micros: u64) -> usize {
        if micros < 2 {
            0
        } else {
            (63 - micros.leading_zeros() as usize).min(BUCKETS - 1)
        }
    }

    /// Records one observation.
    pub fn record_micros(&self, micros: u64) {
        self.buckets[Self::bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The upper bound (µs) of the bucket containing quantile `q`
    /// (`0.0..=1.0`), or 0 with no observations. Bucket-resolution
    /// (±2×) is plenty for shed/deadline tuning.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let clamped = q.clamp(0.0, 1.0);
        let target = ((total as f64) * clamped).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }
}

/// All server-wide health counters, shared by workers, the accept loop,
/// and the stats/health queries.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections admitted to a worker.
    pub accepted: AtomicU64,
    /// Connections or requests shed with a `BUSY` reply.
    pub sheds: AtomicU64,
    /// Queries cut off mid-scan with a `DEADLINE` reply.
    pub deadlines: AtomicU64,
    /// Queries whose execution panicked and was contained (`ERR`).
    pub contained_panics: AtomicU64,
    /// Malformed requests answered with `ERR`.
    pub parse_errors: AtomicU64,
    /// Queries answered `OK`.
    pub ok_replies: AtomicU64,
    /// Churn deltas absorbed by SCC-local patching.
    pub churn_patched: AtomicU64,
    /// Churn deltas that forced a full rebuild.
    pub churn_rebuilt: AtomicU64,
    /// Per-query latency distribution.
    pub latency: LatencyHistogram,
}

impl ServerStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        ServerStats::default()
    }

    /// Convenience relaxed increment.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Convenience relaxed read.
    pub fn read(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_walk_the_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_micros(0.5), 0);
        // 98 fast observations, 2 slow ones.
        for _ in 0..98 {
            h.record_micros(10);
        }
        for _ in 0..2 {
            h.record_micros(100_000);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_micros(0.50);
        let p99 = h.quantile_micros(0.99);
        assert!(p50 <= 16, "p50 bucket bound was {p50}");
        assert!(p99 >= 65_536, "p99 bucket bound was {p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        assert_eq!(LatencyHistogram::bucket_of(2), 1);
        assert_eq!(LatencyHistogram::bucket_of(3), 1);
        assert_eq!(LatencyHistogram::bucket_of(4), 2);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), BUCKETS - 1);
    }
}
