//! The iterative resolver.
//!
//! [`Resolver`] is the client-side engine the measurement pipeline and
//! the web crawler use for every lookup. It walks the authority chain of
//! a query name (registry tier → … → deepest deployed zone), requires
//! every tier to have at least one reachable server under the active
//! [`FaultPlan`] and [`FaultSchedule`], chases CNAME chains across
//! zones, and caches both positive and negative answers with TTL
//! semantics.
//!
//! Client-side resilience is modelled explicitly, because it decides
//! incident outcomes as much as server-side redundancy does:
//!
//! * a [`RetryPolicy`] retries each zone tier across the NS preference
//!   order with a per-attempt timeout — under *partial* packet loss
//!   (the Mirai wave shape) retries convert most would-be failures into
//!   slow successes, and exhausting them yields the distinct
//!   [`ResolveError::Timeout`] rather than a SERVFAIL-shaped
//!   [`ResolveError::AllServersDown`];
//! * an opt-in [`StalePolicy`] serves expired cached answers while
//!   authority is unreachable (RFC 8767 serve-stale).

use crate::cache::{CacheHit, DnsCache};
use crate::clock::SimClock;
use crate::fault::{FaultPlan, FaultSchedule};
use crate::network::{DnsNetwork, ZoneDeployment};
use crate::record::{RecordType, ResourceRecord, Soa};
use crate::zone::ZoneAnswer;
use std::fmt;
use std::net::Ipv4Addr;
use webdeps_model::{DomainName, EntityId};

/// Maximum CNAME chain length before the resolver gives up (mirrors the
/// chase limits of production resolvers).
const MAX_CNAME_HOPS: usize = 8;

/// A successful resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolution {
    /// The name originally queried.
    pub qname: DomainName,
    /// The type originally queried.
    pub qtype: RecordType,
    /// Final answer records (of type `qtype`, owned by the last name in
    /// the chain).
    pub answers: Vec<ResourceRecord>,
    /// CNAME records traversed, in traversal order (empty when the name
    /// answered directly).
    pub chain: Vec<ResourceRecord>,
    /// Origin of the zone that produced the final answer.
    pub authority_zone: DomainName,
}

impl Resolution {
    /// The canonical (final) name after CNAME chasing.
    pub fn canonical_name(&self) -> &DomainName {
        self.chain
            .last()
            .and_then(|rr| rr.data.as_cname())
            .unwrap_or(&self.qname)
    }

    /// All addresses in the answer (for A queries).
    pub fn addresses(&self) -> Vec<Ipv4Addr> {
        self.answers
            .iter()
            .filter_map(|rr| rr.data.as_a())
            .collect()
    }

    /// All CNAME targets traversed, in order.
    pub fn cname_targets(&self) -> Vec<DomainName> {
        self.chain
            .iter()
            .filter_map(|rr| rr.data.as_cname().cloned())
            .collect()
    }
}

/// Resolution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// No deployed zone is authoritative for the name.
    UnknownZone {
        /// The unresolvable name.
        name: DomainName,
    },
    /// Every server of a zone on the authority path is down — the
    /// on-the-wire signature of a provider outage (timeouts/SERVFAIL).
    AllServersDown {
        /// The name being resolved when the outage was hit.
        name: DomainName,
        /// Origin of the unreachable zone.
        zone: DomainName,
    },
    /// A referral pointed at a zone that is not deployed anywhere.
    LameDelegation {
        /// The zone cut that is lame.
        cut: DomainName,
    },
    /// The name does not exist (authoritative denial).
    NxDomain {
        /// The denied name.
        name: DomainName,
        /// SOA of the denying zone (negative-caching scope).
        soa: Soa,
    },
    /// The name exists but has no records of the queried type.
    NoData {
        /// The queried name.
        name: DomainName,
        /// SOA of the answering zone.
        soa: Soa,
    },
    /// A CNAME loop or over-long chain was detected.
    ChainTooLong {
        /// The name whose chain exceeded the limit.
        name: DomainName,
    },
    /// A zone tier had live servers, but every retry attempt against
    /// them was lost or answered too late — the signature of a
    /// *degraded* (not dead) nameserver set. Distinct from
    /// [`ResolveError::AllServersDown`] so clients can tell "the
    /// provider is gone" from "the provider is drowning".
    Timeout {
        /// The name being resolved when retries ran out.
        name: DomainName,
        /// Origin of the degraded zone.
        zone: DomainName,
    },
}

impl ResolveError {
    /// Whether this is a *negative* authoritative answer (cacheable),
    /// as opposed to an availability failure.
    pub fn is_negative_answer(&self) -> bool {
        matches!(
            self,
            ResolveError::NxDomain { .. } | ResolveError::NoData { .. }
        )
    }

    /// Whether this failure is caused by unavailability (outage-shaped),
    /// i.e. the resolution *would* succeed on healthy infrastructure.
    pub fn is_outage(&self) -> bool {
        matches!(
            self,
            ResolveError::AllServersDown { .. } | ResolveError::Timeout { .. }
        )
    }
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::UnknownZone { name } => write!(f, "no authority known for {name}"),
            ResolveError::AllServersDown { name, zone } => {
                write!(f, "all servers for zone {zone} down while resolving {name}")
            }
            ResolveError::LameDelegation { cut } => write!(f, "lame delegation at {cut}"),
            ResolveError::NxDomain { name, .. } => write!(f, "NXDOMAIN for {name}"),
            ResolveError::NoData { name, .. } => write!(f, "NODATA for {name}"),
            ResolveError::ChainTooLong { name } => write!(f, "CNAME chain too long at {name}"),
            ResolveError::Timeout { name, zone } => {
                write!(f, "retries exhausted against zone {zone} resolving {name}")
            }
        }
    }
}

impl std::error::Error for ResolveError {}

/// Per-query retry behavior across a zone tier's NS preference order.
///
/// The defaults mirror stub-resolver practice (three attempts, 1 s
/// per-attempt timeout, 500 ms backoff between rounds) and are exactly
/// equivalent to the pre-retry resolver on a healthy or hard-down
/// network: retries only change outcomes under partial degradation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Rounds through the NS preference order before giving up (≥ 1).
    pub attempts: u32,
    /// Per-attempt timeout, milliseconds: a response delayed past this
    /// counts as lost.
    pub timeout_ms: u32,
    /// Pause between retry rounds, milliseconds (bookkeeping only — the
    /// simulated clock does not advance during a query).
    pub backoff_ms: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            timeout_ms: 1_000,
            backoff_ms: 500,
        }
    }
}

impl RetryPolicy {
    /// A single attempt, no retries (the pre-RFC-resilience client).
    pub fn single_shot() -> Self {
        RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        }
    }
}

/// RFC 8767 serve-stale policy: whether (and how far past TTL expiry)
/// the resolver may answer from expired cache entries when authority is
/// unreachable. Off by default — stale answers are a deliberate
/// resilience trade-off, not baseline behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StalePolicy {
    /// Whether serve-stale is active.
    pub enabled: bool,
    /// Maximum staleness served, seconds past TTL expiry (RFC 8767
    /// suggests 1–3 days; default one day).
    pub max_stale_secs: u64,
}

impl Default for StalePolicy {
    fn default() -> Self {
        StalePolicy {
            enabled: false,
            max_stale_secs: 86_400,
        }
    }
}

impl StalePolicy {
    /// Serve-stale on, with the default one-day window.
    pub fn serve_stale() -> Self {
        StalePolicy {
            enabled: true,
            ..StalePolicy::default()
        }
    }
}

/// Counters exposed for benchmarking and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolverStats {
    /// Authoritative queries sent (one per zone tier contacted).
    pub queries_sent: u64,
    /// Lookups answered from cache.
    pub cache_hits: u64,
    /// Successful resolutions.
    pub successes: u64,
    /// Failed resolutions (including negative answers).
    pub failures: u64,
    /// Retry rounds run beyond the first attempt.
    pub retries: u64,
    /// Tier contacts that exhausted every retry against live servers.
    pub timeouts: u64,
    /// Lookups answered from expired cache entries (RFC 8767).
    pub stale_served: u64,
}

/// Iterative, caching resolver bound to a [`DnsNetwork`].
#[derive(Debug, Clone)]
pub struct Resolver<'n> {
    network: &'n DnsNetwork,
    clock: SimClock,
    cache: DnsCache,
    faults: FaultPlan,
    schedule: FaultSchedule,
    retry: RetryPolicy,
    stale: StalePolicy,
    stats: ResolverStats,
    caching_enabled: bool,
}

impl<'n> Resolver<'n> {
    /// A resolver with healthy infrastructure and caching enabled.
    pub fn new(network: &'n DnsNetwork) -> Self {
        Resolver {
            network,
            clock: SimClock::new(),
            cache: DnsCache::new(),
            faults: FaultPlan::healthy(),
            schedule: FaultSchedule::empty(),
            retry: RetryPolicy::default(),
            stale: StalePolicy::default(),
            stats: ResolverStats::default(),
            caching_enabled: true,
        }
    }

    /// Replaces the active fault plan (outage what-ifs). The cache is
    /// *not* flushed: cached answers outliving an outage is exactly the
    /// behavior the paper discusses around the GlobalSign incident.
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// The active fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Replaces the active time-varying fault schedule (incident
    /// replays). As with [`Self::set_faults`], the cache is kept.
    pub fn set_schedule(&mut self, schedule: FaultSchedule) {
        self.schedule = schedule;
    }

    /// The active fault schedule.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// Sets the per-query retry policy.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Sets the RFC 8767 serve-stale policy.
    pub fn set_stale_policy(&mut self, stale: StalePolicy) {
        self.stale = stale;
    }

    /// The active serve-stale policy.
    pub fn stale_policy(&self) -> StalePolicy {
        self.stale
    }

    /// Whether an entity's non-DNS infrastructure (webservers, OCSP
    /// responders) is up right now, folding the binary plan with the
    /// schedule evaluated at the current simulated time.
    pub fn entity_effectively_up(&self, entity: EntityId) -> bool {
        self.faults.entity_up(entity) && !self.schedule.entity_down_at(entity, self.clock.now())
    }

    /// Disables the answer cache (every lookup hits authority).
    pub fn disable_cache(&mut self) {
        self.caching_enabled = false;
        self.cache.clear();
    }

    /// Flushes all cached answers.
    pub fn flush_cache(&mut self) {
        self.cache.clear();
    }

    /// Caps the answer cache at `max_names` distinct names (0 =
    /// unbounded, the default). See [`crate::cache::DnsCache::set_bound`];
    /// crawl pipelines use this so a million one-shot site names cannot
    /// bloat the cache into a multi-gigabyte table.
    pub fn bound_cache(&mut self, max_names: usize) {
        self.cache.set_bound(max_names);
    }

    /// The simulated clock (read-only).
    pub fn now(&self) -> crate::clock::SimTime {
        self.clock.now()
    }

    /// Advances simulated time (expires cache entries naturally).
    pub fn advance_time(&mut self, secs: u64) {
        self.clock.advance(secs);
    }

    /// Resolver statistics so far.
    pub fn stats(&self) -> ResolverStats {
        self.stats
    }

    /// The network this resolver queries.
    pub fn network(&self) -> &'n DnsNetwork {
        self.network
    }

    /// Whether a deployment has at least one reachable server.
    fn deployment_reachable(&self, dep: &ZoneDeployment) -> bool {
        dep.servers.iter().any(|&sid| {
            let server = self.network.server(sid);
            self.faults.server_up(sid, server.operator)
        })
    }

    /// Contacts one zone tier: walks the NS preference order up to
    /// `retry.attempts` times, skipping hard-down servers and drawing
    /// per-attempt loss/latency outcomes from the schedule. Returns
    /// `Ok(())` when any attempt lands, [`ResolveError::AllServersDown`]
    /// when no server was even a candidate, and
    /// [`ResolveError::Timeout`] when live-but-degraded servers ate
    /// every retry.
    fn contact_tier(
        &mut self,
        dep: &ZoneDeployment,
        qname: &DomainName,
    ) -> Result<(), ResolveError> {
        self.stats.queries_sent += 1;
        // Fast path: no schedule means the plan alone decides, with no
        // per-attempt randomness — the original binary semantics.
        if self.schedule.is_empty() {
            if self.deployment_reachable(dep) {
                return Ok(());
            }
            return Err(ResolveError::AllServersDown {
                name: qname.clone(),
                zone: dep.zone.origin().clone(),
            });
        }
        let now = self.clock.now();
        let qhash = FaultSchedule::qname_hash(qname.as_str());
        let mut had_candidate = false;
        for attempt in 0..self.retry.attempts.max(1) {
            if attempt > 0 && had_candidate {
                self.stats.retries += 1;
            }
            let mut tried_this_round = false;
            for &sid in &dep.servers {
                let server = self.network.server(sid);
                if !self.faults.server_up(sid, server.operator) {
                    continue;
                }
                let cond = self.schedule.server_condition_at(sid, server.operator, now);
                if cond.down {
                    continue;
                }
                had_candidate = true;
                tried_this_round = true;
                // An answer delayed past the per-attempt timeout is
                // indistinguishable from a lost packet.
                if cond.added_ms > self.retry.timeout_ms {
                    continue;
                }
                if cond.loss > 0.0
                    && self
                        .schedule
                        .attempt_dropped(cond.loss, sid, qhash, now, attempt)
                {
                    continue;
                }
                return Ok(());
            }
            if !tried_this_round {
                break;
            }
        }
        if had_candidate {
            self.stats.timeouts += 1;
            Err(ResolveError::Timeout {
                name: qname.clone(),
                zone: dep.zone.origin().clone(),
            })
        } else {
            Err(ResolveError::AllServersDown {
                name: qname.clone(),
                zone: dep.zone.origin().clone(),
            })
        }
    }

    /// Full iterative resolution of `(qname, qtype)`.
    #[must_use]
    pub fn resolve(
        &mut self,
        qname: &DomainName,
        qtype: RecordType,
    ) -> Result<Resolution, ResolveError> {
        self.resolve_with(qname, qtype, Resolution::clone)
    }

    /// Resolves `(qname, qtype)` and hands the resolution to `f` *in
    /// place* — the allocation-lean engine behind [`Self::resolve`]. A
    /// fresh cache hit is read borrowed instead of deep-cloning the
    /// answer set, and on a miss the new resolution moves into the cache
    /// after `f` has seen it — the dominant resolver costs at crawl
    /// scale were exactly those two clones.
    #[must_use]
    pub fn resolve_with<R>(
        &mut self,
        qname: &DomainName,
        qtype: RecordType,
        f: impl FnOnce(&Resolution) -> R,
    ) -> Result<R, ResolveError> {
        let mut stale_fallback: Option<Resolution> = None;
        if self.caching_enabled {
            let now = self.clock.now();
            if let Some(cached) = self.cache.peek_fresh(qname, qtype, now) {
                self.stats.cache_hits += 1;
                return match cached {
                    Ok(res) => Ok(f(res)),
                    Err(err) => Err(err.clone()),
                };
            }
            let window = if self.stale.enabled {
                self.stale.max_stale_secs
            } else {
                0
            };
            match self.cache.lookup(qname, qtype, now, window) {
                // Unreachable in practice (peek_fresh tests the same TTL
                // condition), kept total for robustness.
                Some(CacheHit::Fresh(cached)) => {
                    self.stats.cache_hits += 1;
                    return cached.map(|res| f(&res));
                }
                Some(CacheHit::Stale { value, .. }) => stale_fallback = Some(value),
                None => {}
            }
        }
        let result = self.resolve_uncached(qname, qtype);
        match result {
            Ok(res) => {
                self.stats.successes += 1;
                let out = f(&res);
                if self.caching_enabled {
                    self.cache
                        .put_positive(qname.clone(), qtype, res, self.clock.now());
                }
                Ok(out)
            }
            Err(err) => {
                if err.is_outage() {
                    // RFC 8767: authority unreachable, an expired answer
                    // is better than none. The entry is deliberately not
                    // re-cached — it keeps aging toward the stale horizon.
                    if let Some(res) = stale_fallback {
                        self.stats.stale_served += 1;
                        self.stats.successes += 1;
                        return Ok(f(&res));
                    }
                }
                self.stats.failures += 1;
                if self.caching_enabled && err.is_negative_answer() {
                    self.cache
                        .put_negative(qname.clone(), qtype, err.clone(), self.clock.now());
                }
                Err(err)
            }
        }
    }

    fn resolve_uncached(
        &mut self,
        qname: &DomainName,
        qtype: RecordType,
    ) -> Result<Resolution, ResolveError> {
        let mut current = qname.clone();
        let mut chain: Vec<ResourceRecord> = Vec::new();

        for _hop in 0..=MAX_CNAME_HOPS {
            let tiers = self.network.authority_chain(&current);
            if tiers.is_empty() {
                return Err(ResolveError::UnknownZone { name: current });
            }
            // Every tier on the authority path must be reachable: a dead
            // parent zone denies the referral to its children.
            for dep in &tiers {
                self.contact_tier(dep, &current)?;
            }
            // lint:allow(panic) — infallible: emptiness is checked immediately above
            let deepest = tiers.last().expect("non-empty checked above");
            match deepest.zone.lookup(&current, qtype) {
                ZoneAnswer::Answer(answers) => {
                    return Ok(Resolution {
                        qname: qname.clone(),
                        qtype,
                        answers,
                        chain,
                        authority_zone: deepest.zone.origin().clone(),
                    });
                }
                ZoneAnswer::CnameRedirect { record, target } => {
                    // Loop detection: a repeated target means a cycle.
                    if target == *qname
                        || chain.iter().any(|rr| rr.data.as_cname() == Some(&target))
                    {
                        return Err(ResolveError::ChainTooLong { name: target });
                    }
                    chain.push(record);
                    current = target;
                }
                ZoneAnswer::Referral { cut, .. } => {
                    // authority_chain already found the deepest deployed
                    // zone, so a referral here means the child zone is
                    // not deployed anywhere.
                    return Err(ResolveError::LameDelegation { cut });
                }
                ZoneAnswer::NoData { soa } => {
                    return Err(ResolveError::NoData { name: current, soa });
                }
                ZoneAnswer::NxDomain { soa } => {
                    return Err(ResolveError::NxDomain { name: current, soa });
                }
                ZoneAnswer::OutOfZone => {
                    return Err(ResolveError::LameDelegation { cut: current });
                }
            }
        }
        Err(ResolveError::ChainTooLong { name: current })
    }

    /// Resolves a hostname to addresses, chasing CNAMEs.
    #[must_use]
    pub fn resolve_addresses(&mut self, host: &DomainName) -> Result<Vec<Ipv4Addr>, ResolveError> {
        self.resolve_with(host, RecordType::A, |r| r.addresses())
    }

    /// Whether the host currently resolves to at least one address.
    pub fn is_resolvable(&mut self, host: &DomainName) -> bool {
        matches!(self.resolve_addresses(host), Ok(addrs) if !addrs.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RecordData, Soa};
    use crate::zone::Zone;
    use webdeps_model::name::dn;
    use webdeps_model::EntityId;

    /// Two-provider world: example.com served by both a private server
    /// and a Dyn-like provider; www points via CNAME to a CDN host in a
    /// different zone.
    fn build_network() -> DnsNetwork {
        let mut b = DnsNetwork::builder();
        let pvt = b.add_server(
            dn("ns1.example.com"),
            Ipv4Addr::new(192, 0, 2, 1),
            EntityId(0),
        );
        let dyn1 = b.add_server(
            dn("ns1.dyn-like.net"),
            Ipv4Addr::new(198, 51, 100, 1),
            EntityId(1),
        );
        let cdn = b.add_server(
            dn("ns1.cdnco.net"),
            Ipv4Addr::new(203, 0, 113, 1),
            EntityId(2),
        );

        let mut site = Zone::new(
            dn("example.com"),
            Soa::standard(dn("ns1.example.com"), dn("hostmaster.example.com"), 1),
        );
        site.add(dn("example.com"), RecordData::Ns(dn("ns1.example.com")));
        site.add(dn("example.com"), RecordData::Ns(dn("ns1.dyn-like.net")));
        site.add(
            dn("example.com"),
            RecordData::A(Ipv4Addr::new(192, 0, 2, 80)),
        );
        site.add(
            dn("www.example.com"),
            RecordData::Cname(dn("cust-1.cdnco.net")),
        );
        b.add_zone(site, vec![pvt, dyn1]);

        let mut cdnzone = Zone::new(
            dn("cdnco.net"),
            Soa::standard(dn("ns1.cdnco.net"), dn("ops.cdnco.net"), 1),
        );
        cdnzone.add(dn("cdnco.net"), RecordData::Ns(dn("ns1.cdnco.net")));
        cdnzone.add(
            dn("cust-1.cdnco.net"),
            RecordData::A(Ipv4Addr::new(203, 0, 113, 80)),
        );
        b.add_zone(cdnzone, vec![cdn]);

        b.build()
    }

    #[test]
    fn resolves_direct_a_record() {
        let net = build_network();
        let mut r = Resolver::new(&net);
        let res = r.resolve(&dn("example.com"), RecordType::A).unwrap();
        assert_eq!(res.addresses(), vec![Ipv4Addr::new(192, 0, 2, 80)]);
        assert_eq!(res.authority_zone, dn("example.com"));
        assert!(res.chain.is_empty());
        assert_eq!(res.canonical_name(), &dn("example.com"));
    }

    #[test]
    fn chases_cname_across_zones() {
        let net = build_network();
        let mut r = Resolver::new(&net);
        let res = r.resolve(&dn("www.example.com"), RecordType::A).unwrap();
        assert_eq!(res.addresses(), vec![Ipv4Addr::new(203, 0, 113, 80)]);
        assert_eq!(res.cname_targets(), vec![dn("cust-1.cdnco.net")]);
        assert_eq!(res.canonical_name(), &dn("cust-1.cdnco.net"));
        assert_eq!(res.authority_zone, dn("cdnco.net"));
    }

    #[test]
    fn negative_answers() {
        let net = build_network();
        let mut r = Resolver::new(&net);
        assert!(matches!(
            r.resolve(&dn("missing.example.com"), RecordType::A),
            Err(ResolveError::NxDomain { .. })
        ));
        assert!(matches!(
            r.resolve(&dn("example.com"), RecordType::Txt),
            Err(ResolveError::NoData { .. })
        ));
        assert!(matches!(
            r.resolve(&dn("unknown-zone.zz"), RecordType::A),
            Err(ResolveError::UnknownZone { .. })
        ));
    }

    #[test]
    fn redundancy_survives_single_provider_outage() {
        let net = build_network();
        let mut r = Resolver::new(&net);
        r.set_faults(FaultPlan::healthy().fail_entity(EntityId(1))); // Dyn-like down
                                                                     // example.com still resolves via its private server.
        assert!(r.is_resolvable(&dn("example.com")));
    }

    #[test]
    fn total_outage_fails_resolution() {
        let net = build_network();
        let mut r = Resolver::new(&net);
        r.set_faults(
            FaultPlan::healthy()
                .fail_entity(EntityId(0))
                .fail_entity(EntityId(1)),
        );
        let err = r.resolve(&dn("example.com"), RecordType::A).unwrap_err();
        assert!(err.is_outage(), "expected outage, got {err}");
        assert!(
            matches!(err, ResolveError::AllServersDown { ref zone, .. } if *zone == dn("example.com"))
        );
    }

    #[test]
    fn cdn_outage_breaks_cname_tail_only() {
        let net = build_network();
        let mut r = Resolver::new(&net);
        r.set_faults(FaultPlan::healthy().fail_entity(EntityId(2))); // CDN down
        assert!(r.is_resolvable(&dn("example.com")), "apex unaffected");
        let err = r
            .resolve(&dn("www.example.com"), RecordType::A)
            .unwrap_err();
        assert!(
            matches!(err, ResolveError::AllServersDown { ref zone, .. } if *zone == dn("cdnco.net"))
        );
    }

    #[test]
    fn cache_serves_through_outage_until_ttl_expiry() {
        let net = build_network();
        let mut r = Resolver::new(&net);
        assert!(r.is_resolvable(&dn("example.com")));
        let hits_before = r.stats().cache_hits;
        // Take everything down; the cached answer must survive…
        r.set_faults(
            FaultPlan::healthy()
                .fail_entity(EntityId(0))
                .fail_entity(EntityId(1)),
        );
        assert!(
            r.is_resolvable(&dn("example.com")),
            "cached answer should persist"
        );
        assert_eq!(r.stats().cache_hits, hits_before + 1);
        // …until the TTL (default 3600 s) lapses.
        r.advance_time(3_601);
        assert!(
            !r.is_resolvable(&dn("example.com")),
            "expired cache must re-query"
        );
    }

    #[test]
    fn disabled_cache_requeries_every_time() {
        let net = build_network();
        let mut r = Resolver::new(&net);
        r.disable_cache();
        r.resolve(&dn("example.com"), RecordType::A).unwrap();
        let q1 = r.stats().queries_sent;
        r.resolve(&dn("example.com"), RecordType::A).unwrap();
        assert!(r.stats().queries_sent > q1);
        assert_eq!(r.stats().cache_hits, 0);
    }

    #[test]
    fn stats_track_successes_and_failures() {
        let net = build_network();
        let mut r = Resolver::new(&net);
        r.resolve(&dn("example.com"), RecordType::A).unwrap();
        let _ = r.resolve(&dn("missing.example.com"), RecordType::A);
        let s = r.stats();
        assert_eq!(s.successes, 1);
        assert_eq!(s.failures, 1);
        assert!(s.queries_sent >= 2);
    }

    #[test]
    fn schedule_outage_window_opens_and_closes() {
        use crate::clock::SimTime;
        use crate::fault::{Degradation, FaultSchedule};
        let net = build_network();
        let mut r = Resolver::new(&net);
        r.disable_cache();
        r.set_schedule(
            FaultSchedule::seeded(1)
                .fail_entity_during(EntityId(0), SimTime(100), SimTime(200), Degradation::Down)
                .fail_entity_during(EntityId(1), SimTime(100), SimTime(200), Degradation::Down),
        );
        assert!(r.is_resolvable(&dn("example.com")), "before the window");
        r.advance_time(150);
        let err = r.resolve(&dn("example.com"), RecordType::A).unwrap_err();
        assert!(
            matches!(err, ResolveError::AllServersDown { .. }),
            "hard-down window yields SERVFAIL shape, got {err}"
        );
        r.advance_time(100);
        assert!(r.is_resolvable(&dn("example.com")), "after the window");
    }

    #[test]
    fn latency_past_timeout_is_a_timeout_not_servfail() {
        use crate::clock::SimTime;
        use crate::fault::{Degradation, FaultSchedule};
        let net = build_network();
        let mut r = Resolver::new(&net);
        r.disable_cache();
        r.set_schedule(
            FaultSchedule::seeded(1)
                .fail_entity_during(
                    EntityId(0),
                    SimTime(0),
                    SimTime(1_000),
                    Degradation::Latency { added_ms: 5_000 },
                )
                .fail_entity_during(
                    EntityId(1),
                    SimTime(0),
                    SimTime(1_000),
                    Degradation::Latency { added_ms: 5_000 },
                ),
        );
        let err = r.resolve(&dn("example.com"), RecordType::A).unwrap_err();
        assert!(
            matches!(err, ResolveError::Timeout { .. }),
            "live-but-slow servers must time out, got {err}"
        );
        assert!(err.is_outage());
        assert_eq!(r.stats().timeouts, 1);
        // A generous timeout absorbs the latency entirely.
        r.set_retry_policy(RetryPolicy {
            timeout_ms: 10_000,
            ..RetryPolicy::default()
        });
        assert!(r.is_resolvable(&dn("example.com")));
    }

    #[test]
    fn retries_ride_out_partial_loss() {
        use crate::clock::SimTime;
        use crate::fault::{Degradation, FaultSchedule};
        let net = build_network();
        let loss = FaultSchedule::seeded(7)
            .fail_entity_during(
                EntityId(0),
                SimTime(0),
                SimTime(1_000_000),
                Degradation::Loss { probability: 0.7 },
            )
            .fail_entity_during(
                EntityId(1),
                SimTime(0),
                SimTime(1_000_000),
                Degradation::Loss { probability: 0.7 },
            );

        let survival = |attempts: u32| {
            let mut r = Resolver::new(&net);
            r.disable_cache();
            r.set_schedule(loss.clone());
            r.set_retry_policy(RetryPolicy {
                attempts,
                ..RetryPolicy::default()
            });
            let mut ok = 0;
            for _ in 0..200 {
                if r.is_resolvable(&dn("example.com")) {
                    ok += 1;
                }
                r.advance_time(1); // fresh loss draws each probe
            }
            ok
        };
        let one = survival(1);
        let three = survival(3);
        assert!(
            three > one,
            "retries must convert losses into successes: {one} vs {three}"
        );
        // 3 attempts × 2 servers at p=0.7 ⇒ P(all six lost) ≈ 0.12.
        assert!(three >= 140, "expected high survival, got {three}/200");
    }

    #[test]
    fn serve_stale_bridges_an_outage_within_its_window() {
        let net = build_network();
        let mut r = Resolver::new(&net);
        r.set_stale_policy(StalePolicy::serve_stale());
        assert!(r.is_resolvable(&dn("example.com")));
        r.set_faults(
            FaultPlan::healthy()
                .fail_entity(EntityId(0))
                .fail_entity(EntityId(1)),
        );
        // Past the TTL (3600 s) but within the stale window (1 day):
        // the expired answer bridges the outage.
        r.advance_time(7_200);
        assert!(
            r.is_resolvable(&dn("example.com")),
            "stale answer must be served during the outage"
        );
        assert_eq!(r.stats().stale_served, 1);
        // Healthy authority is always preferred over a stale answer.
        r.set_faults(FaultPlan::healthy());
        assert!(r.is_resolvable(&dn("example.com")));
        assert_eq!(r.stats().stale_served, 1, "no stale hit when live works");
        // Beyond the window the answer is gone for good.
        r.set_faults(
            FaultPlan::healthy()
                .fail_entity(EntityId(0))
                .fail_entity(EntityId(1)),
        );
        r.advance_time(3_600 + 86_400 + 1);
        assert!(
            !r.is_resolvable(&dn("example.com")),
            "stale horizon must be honoured"
        );
    }

    #[test]
    fn stale_disabled_by_default() {
        let net = build_network();
        let mut r = Resolver::new(&net);
        assert!(r.is_resolvable(&dn("example.com")));
        r.set_faults(
            FaultPlan::healthy()
                .fail_entity(EntityId(0))
                .fail_entity(EntityId(1)),
        );
        r.advance_time(3_601);
        assert!(!r.is_resolvable(&dn("example.com")));
        assert_eq!(r.stats().stale_served, 0);
    }

    #[test]
    fn entity_effectively_up_folds_plan_and_schedule() {
        use crate::clock::SimTime;
        use crate::fault::{Degradation, FaultSchedule};
        let net = build_network();
        let mut r = Resolver::new(&net);
        assert!(r.entity_effectively_up(EntityId(5)));
        r.set_schedule(FaultSchedule::seeded(1).fail_entity_during(
            EntityId(5),
            SimTime(0),
            SimTime(100),
            Degradation::Down,
        ));
        assert!(!r.entity_effectively_up(EntityId(5)));
        r.advance_time(100);
        assert!(r.entity_effectively_up(EntityId(5)), "window closed");
        r.set_faults(FaultPlan::healthy().fail_entity(EntityId(5)));
        assert!(!r.entity_effectively_up(EntityId(5)), "plan still binds");
    }

    #[test]
    fn cname_loop_detected() {
        let mut b = DnsNetwork::builder();
        let s = b.add_server(
            dn("ns1.loopy.com"),
            Ipv4Addr::new(192, 0, 2, 1),
            EntityId(0),
        );
        let mut z = Zone::new(
            dn("loopy.com"),
            Soa::standard(dn("ns1.loopy.com"), dn("hostmaster.loopy.com"), 1),
        );
        z.add(dn("a.loopy.com"), RecordData::Cname(dn("b.loopy.com")));
        z.add(dn("b.loopy.com"), RecordData::Cname(dn("a.loopy.com")));
        b.add_zone(z, vec![s]);
        let net = b.build();
        let mut r = Resolver::new(&net);
        assert!(matches!(
            r.resolve(&dn("a.loopy.com"), RecordType::A),
            Err(ResolveError::ChainTooLong { .. })
        ));
    }
}
