//! # webdeps-reports
//!
//! Regenerators for **every table and figure** in the paper's evaluation.
//! Each experiment function takes a prepared [`Workspace`] (paired
//! 2016/2020 worlds + measurement datasets + graphs + the vertical case
//! studies) and renders the same rows/series the paper prints, side by
//! side with the paper's published values.
//!
//! The binary `repro` runs any subset:
//!
//! ```text
//! repro --scale 20000 --seed 42 --exp table3 --exp figure7
//! repro --all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod export;
pub mod figures;
pub mod incidents;
pub mod names;
pub mod table;
pub mod tables;
pub mod workspace;

pub use experiments::{all_experiment_ids, run_experiment, Report};
pub use export::{providers_csv, sites_csv, write_csv_dir};
pub use table::TextTable;
pub use workspace::Workspace;
