//! Certificate authorities.

use crate::cert::{Certificate, Endpoint};
use webdeps_dns::SimTime;
use webdeps_model::{CaId, DomainName, EntityId};

/// One certificate authority: an organization operating OCSP responders
/// and CRL distribution points.
///
/// The *hostnames* of those endpoints are load-bearing: the paper's
/// CA→DNS and CA→CDN dependency measurements resolve and classify them
/// exactly as they do website hostnames.
#[derive(Debug, Clone)]
pub struct CertificateAuthority {
    /// Identifier within the PKI.
    pub id: CaId,
    /// Display name, e.g. `"DigiCert"`.
    pub name: String,
    /// Owning organization.
    pub entity: EntityId,
    /// OCSP responder hosts embedded into issued certificates.
    pub ocsp_hosts: Vec<DomainName>,
    /// CRL distribution hosts embedded into issued certificates.
    pub crl_hosts: Vec<DomainName>,
    /// Default certificate lifetime in seconds (Let's Encrypt: 90 days;
    /// commercial CAs: ~1 year).
    pub cert_lifetime: u64,
}

impl CertificateAuthority {
    /// Assembles the certificate this CA would issue for `subject` with
    /// the given SAN list. `serial` uniqueness is the PKI's job.
    pub fn make_certificate(
        &self,
        serial: u64,
        subject: DomainName,
        mut san: Vec<DomainName>,
        issued_at: SimTime,
        must_staple: bool,
    ) -> Certificate {
        if !san.contains(&subject) {
            san.insert(0, subject.clone());
        }
        Certificate {
            serial,
            subject,
            san,
            issuer: self.id,
            not_before: issued_at,
            not_after: issued_at.plus(self.cert_lifetime),
            ocsp_urls: self
                .ocsp_hosts
                .iter()
                .cloned()
                .map(Endpoint::at_root)
                .collect(),
            crl_dps: self
                .crl_hosts
                .iter()
                .cloned()
                .map(|h| Endpoint::new(h, format!("/{}.crl", self.name.to_ascii_lowercase())))
                .collect(),
            must_staple,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webdeps_model::name::dn;

    fn ca() -> CertificateAuthority {
        CertificateAuthority {
            id: CaId(3),
            name: "TestCA".into(),
            entity: EntityId(11),
            ocsp_hosts: vec![dn("ocsp.testca.com")],
            crl_hosts: vec![dn("crl.testca.com")],
            cert_lifetime: 90 * 86_400,
        }
    }

    #[test]
    fn issuance_fills_endpoints_and_validity() {
        let cert = ca().make_certificate(
            1,
            dn("example.com"),
            vec![dn("*.example.com")],
            SimTime(1_000),
            false,
        );
        assert_eq!(cert.issuer, CaId(3));
        assert_eq!(
            cert.san[0],
            dn("example.com"),
            "subject is prepended to SAN"
        );
        assert!(cert.covers(&dn("shop.example.com")));
        assert_eq!(cert.ocsp_urls[0].host, dn("ocsp.testca.com"));
        assert_eq!(cert.crl_dps[0].path, "/testca.crl");
        assert_eq!(cert.not_after, SimTime(1_000 + 90 * 86_400));
    }

    #[test]
    fn subject_not_duplicated_in_san() {
        let cert = ca().make_certificate(
            2,
            dn("example.com"),
            vec![dn("example.com"), dn("www.example.com")],
            SimTime(0),
            true,
        );
        assert_eq!(
            cert.san.iter().filter(|d| **d == dn("example.com")).count(),
            1
        );
        assert!(cert.must_staple);
    }
}
