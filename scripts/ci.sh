#!/usr/bin/env bash
# Tier-1 verification, fully offline. Usage: scripts/ci.sh [--bench]
#
#   --bench   additionally run every bench target and emit the
#             BENCH_<target>.json trajectory files at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== webdeps-chaos --smoke (incident replays + invariant campaign) =="
cargo run -q --release --offline -p webdeps-chaos -- --smoke

echo "== webdeps-lint (static-analysis pass) =="
cargo run -q --release --offline -p webdeps-lint -- --root . --json-out LINT_REPORT.json
ls -l LINT_REPORT.json

echo "== cargo fmt --check =="
cargo fmt --check

if [[ "${1:-}" == "--bench" ]]; then
    echo "== cargo bench (std harness, JSON trajectory) =="
    cargo bench --offline --workspace
    ls -l BENCH_*.json
fi

echo "CI OK"
