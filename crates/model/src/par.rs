//! Deterministic parallel fan-out.
//!
//! Every parallel path in the workspace — the measurement crawl, the
//! analysis-layer rankings and sweeps, the chaos campaign's
//! availability probes, the lint driver — shares this one helper and
//! therefore one contract: **output is byte-identical at any worker
//! count**, including one. The recipe is the only scheme that makes
//! that trivially auditable:
//!
//! * the item list is split into at most `jobs` *contiguous, statically
//!   sized* chunks (`len.div_ceil(jobs)` items each, in input order);
//! * each `std::thread::scope` worker owns one chunk and **returns**
//!   its results — workers never write through shared state, so there
//!   is no accumulator whose fill order could leak scheduling;
//! * the parent merges the returned chunks **after join, in chunk
//!   order**, which is exactly the order a serial loop would have
//!   produced.
//!
//! Worker-count policy is likewise centralized: [`resolve_jobs`] is the
//! single knob (explicit value > `WEBDEPS_JOBS` env > detected
//! parallelism, capped at [`MAX_AUTO_JOBS`]) shared by measure, core,
//! chaos, and lint, replacing the per-crate policies that used to
//! disagree. Because every caller is deterministic at any worker
//! count, the knob tunes *speed only* — it can never change results.

use std::thread;

/// Cap on the auto-detected worker count. Explicit requests (a nonzero
/// argument or `WEBDEPS_JOBS`) are honored beyond it; the cap only
/// stops `available_parallelism` from spawning hundreds of workers on
/// large machines where memory bandwidth saturates far earlier.
pub const MAX_AUTO_JOBS: usize = 32;

/// Resolves a requested worker count to an effective one.
///
/// * `requested > 0` — honored as-is (the caller made a choice);
/// * `requested == 0` — auto: the `WEBDEPS_JOBS` environment variable
///   when set to a positive integer (`0` or garbage falls through),
///   otherwise [`std::thread::available_parallelism`] capped at
///   [`MAX_AUTO_JOBS`].
pub fn resolve_jobs(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    // lint:allow(env-rand) — WEBDEPS_JOBS is the documented operator
    // knob for worker count; every fan_out caller is byte-identical at
    // any job count, so the environment can tune speed but never results.
    let env = std::env::var("WEBDEPS_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok());
    match env {
        Some(n) if n > 0 => n,
        _ => thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(MAX_AUTO_JOBS),
    }
}

/// [`resolve_jobs`] clamped to the work available: never more than one
/// worker per item, never less than one.
pub fn effective_jobs(requested: usize, nitems: usize) -> usize {
    resolve_jobs(requested).clamp(1, nitems.max(1))
}

/// Runs `f` once per contiguous chunk of `items` across at most `jobs`
/// scoped-thread workers (`0` = auto, see [`resolve_jobs`]) and
/// concatenates the returned vectors in chunk order.
///
/// `f` sees each chunk exactly once and may return any number of
/// results per chunk; per-item mappings should return one result per
/// item (or use [`fan_out`]), per-chunk aggregations a single element.
/// With one effective worker `f` runs on the calling thread over the
/// whole slice — the serial path is literally the parallel path with
/// one chunk, so the two cannot diverge.
///
/// A panicking worker is re-raised on the calling thread via
/// [`std::panic::resume_unwind`] after all workers joined. When several
/// workers panic, the payload of the *first chunk in input order* is the
/// one re-raised — so the surfaced error is deterministic at any worker
/// count (the serial path would have hit that item first, too).
pub fn fan_out_chunked<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> Vec<R> + Sync,
{
    let jobs = effective_jobs(jobs, items.len());
    if jobs <= 1 {
        return f(items);
    }
    let chunk = items.len().div_ceil(jobs);
    thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| {
                let fr = &f;
                s.spawn(move || fr(part))
            })
            .collect();
        let mut merged = Vec::with_capacity(items.len());
        let mut panicked = None;
        for h in handles {
            match h.join() {
                Ok(part) => merged.extend(part),
                // Handles are joined in chunk order; keep the first
                // payload so later panics cannot mask the one a serial
                // run would have surfaced.
                Err(payload) => {
                    if panicked.is_none() {
                        panicked = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = panicked {
            std::panic::resume_unwind(payload);
        }
        merged
    })
}

/// Runs `f` over every item of `items` across at most `jobs`
/// scoped-thread workers (`0` = auto) and returns the results in input
/// order — a parallel, order-preserving `map`.
pub fn fan_out<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    fan_out_chunked(items, jobs, |part| part.iter().map(&f).collect())
}

// ---- resident worker pool ----

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// A submitted unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Rejection returned by [`WorkerPool::try_submit`] when every worker
/// queue is at capacity. Carries the closure back untouched so the
/// caller can shed load explicitly (reply `BUSY`, drop the connection,
/// retry later) instead of losing the work silently.
pub struct PoolBusy<F>(pub F);

impl<F> std::fmt::Debug for PoolBusy<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PoolBusy(..)")
    }
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

/// Recovers the guard from a poisoned mutex. Worker jobs run under
/// `catch_unwind`, so poisoning can only happen if a panic escapes the
/// pool's own bookkeeping; the queue state (a deque of boxed closures
/// and a flag) has no invariant a mid-panic writer could break.
fn lock(m: &Mutex<QueueState>) -> MutexGuard<'_, QueueState> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A resident pool of worker threads with **bounded per-worker queues**
/// and explicit load shedding — the admission-control half of a server
/// that prefers a fast `BUSY` over unbounded queue growth.
///
/// Contrast with [`fan_out`]: the fan-out helpers are for *batch*
/// parallelism (split a known item list, join, merge) and guarantee
/// deterministic output order. The pool is for *open-ended* work
/// arriving over time — connections, requests — where the scheduling
/// order is inherently external and the contract is instead about
/// robustness:
///
/// * [`WorkerPool::try_submit`] never blocks: each worker's queue is
///   capped, and when all queues are full the closure is handed back
///   in [`PoolBusy`] so the caller sheds load explicitly;
/// * every job runs under [`std::panic::catch_unwind`] — a panicking
///   job bumps [`WorkerPool::panic_count`] and the worker lives on;
/// * [`WorkerPool::drain`] (and `Drop`) stops intake, runs every job
///   already queued to completion, then joins the threads — shutdown
///   never abandons accepted work.
pub struct WorkerPool {
    queues: Vec<Arc<JobQueue>>,
    handles: Vec<thread::JoinHandle<()>>,
    next: AtomicUsize,
    panics: Arc<AtomicU64>,
    executed: Arc<AtomicU64>,
    queue_cap: usize,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one), each owning a queue of
    /// at most `queue_cap` (at least one) pending jobs.
    pub fn new(workers: usize, queue_cap: usize) -> Self {
        let workers = workers.max(1);
        let queue_cap = queue_cap.max(1);
        let panics = Arc::new(AtomicU64::new(0));
        let executed = Arc::new(AtomicU64::new(0));
        let mut queues = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let queue = Arc::new(JobQueue {
                state: Mutex::new(QueueState {
                    jobs: VecDeque::with_capacity(queue_cap),
                    shutdown: false,
                }),
                ready: Condvar::new(),
            });
            let worker_queue = Arc::clone(&queue);
            let worker_panics = Arc::clone(&panics);
            let worker_executed = Arc::clone(&executed);
            handles.push(thread::spawn(move || {
                worker_loop(worker_queue, worker_panics, worker_executed)
            }));
            queues.push(queue);
        }
        WorkerPool {
            queues,
            handles,
            next: AtomicUsize::new(0),
            panics,
            executed,
            queue_cap,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Per-worker queue capacity.
    pub fn queue_cap(&self) -> usize {
        self.queue_cap
    }

    /// Offers a job to the pool without blocking. Queues are probed
    /// round-robin starting at a rotating index; the first worker with
    /// headroom takes the job and its index is returned. When every
    /// queue is full (or shutting down) the closure comes back in
    /// `Err(PoolBusy)` for the caller to shed explicitly.
    #[must_use]
    pub fn try_submit<F>(&self, f: F) -> Result<usize, PoolBusy<F>>
    where
        F: FnOnce() + Send + 'static,
    {
        let n = self.queues.len();
        let start = self.next.fetch_add(1, Ordering::Relaxed) % n;
        for i in 0..n {
            let w = (start + i) % n;
            let queue = &self.queues[w];
            let mut state = lock(&queue.state);
            if state.shutdown || state.jobs.len() >= self.queue_cap {
                continue;
            }
            state.jobs.push_back(Box::new(f));
            drop(state);
            queue.ready.notify_one();
            return Ok(w);
        }
        Err(PoolBusy(f))
    }

    /// Jobs currently queued (not yet started) per worker, in worker
    /// order — the backpressure signal a `/stats` endpoint reports.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.queues
            .iter()
            .map(|q| lock(&q.state).jobs.len())
            .collect()
    }

    /// A cloneable, read-only view of the pool's queues and health
    /// counters. The pool itself must stay owned by whoever drains it;
    /// the probe lets other threads (e.g. a `/stats` handler running
    /// *inside* a pool worker) observe depth and panic counts without
    /// holding the pool.
    pub fn probe(&self) -> PoolProbe {
        PoolProbe {
            queues: self.queues.clone(),
            panics: Arc::clone(&self.panics),
            executed: Arc::clone(&self.executed),
        }
    }

    /// Jobs whose execution panicked (and were contained).
    pub fn panic_count(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Jobs run to completion (including contained panics).
    pub fn executed_count(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stops intake, runs all queued jobs, joins
    /// every worker. Dropping the pool does the same.
    pub fn drain(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        for queue in &self.queues {
            lock(&queue.state).shutdown = true;
            queue.ready.notify_all();
        }
        for handle in self.handles.drain(..) {
            match handle.join() {
                Ok(()) => {}
                // Worker bodies only panic outside catch_unwind for
                // pool bugs; count it rather than hiding it.
                Err(_) => {
                    self.panics.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

/// Read-only observer handle over a [`WorkerPool`] (see
/// [`WorkerPool::probe`]). Remains valid after the pool drains — depths
/// then read as zero.
#[derive(Clone)]
pub struct PoolProbe {
    queues: Vec<Arc<JobQueue>>,
    panics: Arc<AtomicU64>,
    executed: Arc<AtomicU64>,
}

impl PoolProbe {
    /// Jobs queued per worker, in worker order.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.queues
            .iter()
            .map(|q| lock(&q.state).jobs.len())
            .collect()
    }

    /// Jobs whose execution panicked (and were contained).
    pub fn panic_count(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Jobs run to completion (including contained panics).
    pub fn executed_count(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }
}

fn worker_loop(queue: Arc<JobQueue>, panics: Arc<AtomicU64>, executed: Arc<AtomicU64>) {
    loop {
        let job = {
            let mut state = lock(&queue.state);
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                state = queue
                    .ready
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        let Some(job) = job else {
            return;
        };
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
            panics.fetch_add(1, Ordering::Relaxed);
        }
        executed.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_matches_serial_map_at_any_job_count() {
        let items: Vec<u64> = (0..1_003).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for jobs in [1, 2, 3, 7, 16, 64] {
            assert_eq!(fan_out(&items, jobs, |x| x * 3 + 1), expect, "jobs={jobs}");
        }
    }

    #[test]
    fn fan_out_chunked_concatenates_in_chunk_order() {
        let items: Vec<usize> = (0..100).collect();
        for jobs in [1, 3, 8] {
            let got = fan_out_chunked(&items, jobs, |part| part.to_vec());
            assert_eq!(got, items, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u32> = Vec::new();
        assert!(fan_out(&items, 8, |x| *x).is_empty());
        assert!(fan_out_chunked(&items, 8, |p| p.to_vec()).is_empty());
    }

    #[test]
    fn per_chunk_aggregation_sums_correctly() {
        let items: Vec<u64> = (1..=100).collect();
        for jobs in [1, 2, 4, 9] {
            let partials =
                fan_out_chunked(&items, jobs, |part| vec![part.iter().copied().sum::<u64>()]);
            assert!(partials.len() <= jobs.max(1));
            assert_eq!(partials.iter().sum::<u64>(), 5_050, "jobs={jobs}");
        }
    }

    #[test]
    fn effective_jobs_never_exceeds_items() {
        assert_eq!(effective_jobs(8, 3), 3);
        assert_eq!(effective_jobs(2, 100), 2);
        assert_eq!(effective_jobs(5, 0), 1);
        assert!(effective_jobs(0, 1_000) >= 1);
    }

    #[test]
    fn explicit_request_is_honored() {
        assert_eq!(resolve_jobs(7), 7);
        assert_eq!(resolve_jobs(1), 1);
        assert!(resolve_jobs(0) >= 1);
        assert!(resolve_jobs(0) <= MAX_AUTO_JOBS || resolve_jobs(0) > 0);
    }

    #[test]
    fn first_panic_in_chunk_order_wins() {
        // 40 items over 4 workers → chunks of 10. Items 5 (chunk 0) and
        // 35 (chunk 3) both panic; the surfaced payload must be chunk
        // 0's, exactly as a serial run would have reported, no matter
        // which worker thread finished (or panicked) first.
        let items: Vec<u32> = (0..40).collect();
        for _ in 0..16 {
            let result = std::panic::catch_unwind(|| {
                fan_out(&items, 4, |x| {
                    assert!(*x != 5, "first chunk failed");
                    assert!(*x != 35, "last chunk failed");
                    *x
                })
            });
            let payload = result.expect_err("a panicking worker must propagate");
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                .unwrap_or("<non-string payload>");
            assert!(
                msg.contains("first chunk failed"),
                "expected the first chunk's panic, got: {msg}"
            );
        }
    }

    #[test]
    fn worker_panic_is_propagated() {
        let items: Vec<u32> = (0..40).collect();
        let result = std::panic::catch_unwind(|| {
            fan_out(&items, 4, |x| {
                assert!(*x != 33, "boom");
                *x
            })
        });
        assert!(result.is_err());
    }

    // ---- WorkerPool ----

    #[test]
    fn pool_runs_all_accepted_jobs() {
        let pool = WorkerPool::new(4, 16);
        let sum = Arc::new(AtomicU64::new(0));
        let mut accepted = 0u64;
        for i in 1..=100u64 {
            let sum = Arc::clone(&sum);
            if pool
                .try_submit(move || {
                    sum.fetch_add(i, Ordering::Relaxed);
                })
                .is_ok()
            {
                accepted += i;
            }
        }
        pool.drain();
        assert_eq!(sum.load(Ordering::Relaxed), accepted);
        assert!(accepted > 0, "a 4×16 pool must accept some of 100 jobs");
    }

    #[test]
    fn full_queues_shed_with_pool_busy_and_return_the_job() {
        // One worker parked on a gate job + queue capacity 1: the
        // second submission queues, the third must come back.
        let pool = WorkerPool::new(1, 1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        pool.try_submit(move || {
            let (flag, cv) = &*g;
            let mut open = flag.lock().unwrap_or_else(|p| p.into_inner());
            while !*open {
                open = cv.wait(open).unwrap_or_else(|p| p.into_inner());
            }
        })
        .ok()
        .expect("first job admitted");
        // Wait until the worker has dequeued the gate job, so the next
        // submission lands in the (empty) queue rather than racing it.
        let mut spins = 0u64;
        while pool.queue_depths()[0] > 0 && spins < 100_000_000 {
            thread::yield_now();
            spins += 1;
        }
        let ran = Arc::new(AtomicU64::new(0));
        let r = Arc::clone(&ran);
        pool.try_submit(move || {
            r.fetch_add(1, Ordering::Relaxed);
        })
        .ok()
        .expect("second job queued");
        assert_eq!(pool.queue_depths(), vec![1]);

        let r = Arc::clone(&ran);
        let rejected = pool.try_submit(move || {
            r.fetch_add(100, Ordering::Relaxed);
        });
        let PoolBusy(job) = rejected.err().expect("full queue must shed");
        // The closure comes back intact — the caller can still run it.
        job();
        assert_eq!(ran.load(Ordering::Relaxed), 100);

        let (flag, cv) = &*gate;
        *flag.lock().unwrap_or_else(|p| p.into_inner()) = true;
        cv.notify_all();
        pool.drain();
        assert_eq!(ran.load(Ordering::Relaxed), 101, "queued job ran on drain");
    }

    #[test]
    fn panicking_job_is_contained() {
        let pool = WorkerPool::new(2, 8);
        pool.try_submit(|| panic!("poisoned query"))
            .ok()
            .expect("admitted");
        let ran = Arc::new(AtomicU64::new(0));
        // Submit follow-up work until one lands and runs: the pool must
        // survive the panic.
        let r = Arc::clone(&ran);
        pool.try_submit(move || {
            r.fetch_add(1, Ordering::Relaxed);
        })
        .ok()
        .expect("admitted");
        pool.drain();
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn drop_drains_queued_work() {
        let ran = Arc::new(AtomicU64::new(0));
        {
            let pool = WorkerPool::new(2, 32);
            for _ in 0..20 {
                let r = Arc::clone(&ran);
                pool.try_submit(move || {
                    r.fetch_add(1, Ordering::Relaxed);
                })
                .ok()
                .expect("admitted");
            }
        }
        assert_eq!(ran.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn counters_track_execution() {
        let pool = WorkerPool::new(2, 8);
        assert_eq!(pool.workers(), 2);
        assert_eq!(pool.queue_cap(), 8);
        pool.try_submit(|| panic!("boom")).ok().expect("admitted");
        pool.try_submit(|| {}).ok().expect("admitted");
        // Spin (bounded) until both jobs retire, then read the health
        // counters the serve daemon's /stats endpoint reports.
        let mut spins = 0u64;
        while pool.executed_count() < 2 && spins < 100_000_000 {
            thread::yield_now();
            spins += 1;
        }
        assert_eq!(pool.executed_count(), 2);
        assert_eq!(pool.panic_count(), 1);
        pool.drain();
    }
}
