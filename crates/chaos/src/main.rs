//! `webdeps-chaos` — replay incidents and run chaos campaigns.
//!
//! ```text
//! webdeps-chaos --replay dyn|globalsign [--seed S] [--sites N]
//! webdeps-chaos --campaign [--seed S] [--schedules N] [--sites N]
//! webdeps-chaos --replay-schedule --seed S [--sites N]
//! webdeps-chaos --smoke
//! ```
//!
//! `--replay` prints the incident's per-tick availability curve; the
//! output is byte-identical for identical arguments. `--campaign` runs
//! a randomized invariant campaign and exits non-zero on any violation.
//! `--replay-schedule` replays one campaign schedule by its seed — the
//! exact command a campaign violation prints as its repro line.
//! `--smoke` is the CI entry point: a small campaign plus truncated
//! replays of both canonical incidents.

use std::process::ExitCode;
use webdeps_chaos::{
    check_schedule, dyn_two_wave, globalsign_stale_week, replay, run_campaign, CampaignConfig,
    Incident,
};
use webdeps_worldgen::incidents::{dyn_incident_world, globalsign_incident_world};
use webdeps_worldgen::World;

struct Args {
    replay: Option<String>,
    campaign: bool,
    replay_schedule: bool,
    smoke: bool,
    seed: u64,
    sites: usize,
    schedules: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        replay: None,
        campaign: false,
        replay_schedule: false,
        smoke: false,
        seed: 42,
        sites: 1_500,
        schedules: 8,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--replay" => args.replay = Some(it.next().ok_or("--replay needs dyn|globalsign")?),
            "--campaign" => args.campaign = true,
            "--replay-schedule" => args.replay_schedule = true,
            "--smoke" => args.smoke = true,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad --seed {v:?}"))?;
            }
            "--sites" => {
                let v = it.next().ok_or("--sites needs a value")?;
                args.sites = v.parse().map_err(|_| format!("bad --sites {v:?}"))?;
            }
            "--schedules" => {
                let v = it.next().ok_or("--schedules needs a value")?;
                args.schedules = v.parse().map_err(|_| format!("bad --schedules {v:?}"))?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: webdeps-chaos --replay dyn|globalsign [--seed S] [--sites N] | \
                     --campaign [--seed S] [--schedules N] [--sites N] | \
                     --replay-schedule --seed S [--sites N] | --smoke"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if args.replay.is_none() && !args.campaign && !args.replay_schedule && !args.smoke {
        return Err(
            "pick one of --replay, --campaign, --replay-schedule, --smoke (try --help)".into(),
        );
    }
    Ok(args)
}

/// World seed for fixture worlds: fixed so `--seed` varies only the
/// fault schedule, keeping curves comparable across seeds.
const WORLD_SEED: u64 = 71;

fn build_incident(which: &str, seed: u64, sites: usize) -> Result<(World, Incident), String> {
    match which {
        "dyn" => {
            let world = dyn_incident_world(WORLD_SEED, sites);
            let incident = dyn_two_wave(&world, seed).ok_or("2016 world unexpectedly lacks Dyn")?;
            Ok((world, incident))
        }
        "globalsign" => {
            let world = globalsign_incident_world(WORLD_SEED, sites);
            let incident =
                globalsign_stale_week(&world).ok_or("2020 world unexpectedly lacks GlobalSign")?;
            Ok((world, incident))
        }
        other => Err(format!("unknown incident {other:?} (dyn|globalsign)")),
    }
}

fn run_replay(which: &str, seed: u64, sites: usize) -> Result<(), String> {
    let (world, incident) = build_incident(which, seed, sites)?;
    let result = replay(&world, &incident);
    print!("{}", result.render());
    Ok(())
}

fn run_campaign_cmd(seed: u64, schedules: usize, sites: usize) -> Result<(), String> {
    let world = World::generate(webdeps_worldgen::WorldConfig::small(WORLD_SEED));
    let config = CampaignConfig {
        seed,
        schedules,
        probe_sites: sites.min(200),
        ..CampaignConfig::default()
    };
    let report = run_campaign(&world, &config);
    print!("{}", report.render());
    if report.passed() {
        Ok(())
    } else {
        Err(format!(
            "{} invariant violation(s)",
            report.violations.len()
        ))
    }
}

fn run_smoke() -> Result<(), String> {
    for which in ["dyn", "globalsign"] {
        let (world, mut incident) = build_incident(which, 42, 400)?;
        incident.options.max_sites = 150;
        let result = replay(&world, &incident);
        print!("{}", result.render());
        if result.samples.is_empty() {
            return Err(format!("{which} replay produced no samples"));
        }
        let max = result
            .samples
            .iter()
            .map(|s| s.availability())
            .fold(0.0, f64::max);
        // The GlobalSign fault lands at t=0, so the dip may start at the
        // first sample; "some tick is worse than the best tick" is the
        // shape-independent sanity check.
        if result.min_availability() >= max {
            return Err(format!("{which} replay shows no availability dip"));
        }
    }
    let world = World::generate(webdeps_worldgen::WorldConfig::small(WORLD_SEED));
    let report = run_campaign(&world, &CampaignConfig::smoke(42));
    print!("{}", report.render());
    if !report.passed() {
        return Err(format!(
            "{} invariant violation(s)",
            report.violations.len()
        ));
    }
    Ok(())
}

/// Replays one campaign schedule by seed: the repro path printed by a
/// failing campaign. Exit code mirrors the campaign: non-zero iff the
/// replayed schedule still violates monotonicity.
fn run_replay_schedule(seed: u64, sites: usize) -> Result<(), String> {
    let world = World::generate(webdeps_worldgen::WorldConfig::small(WORLD_SEED));
    let probe_sites = sites.min(200);
    let (checks, violations) = check_schedule(&world, seed, 3, probe_sites, 0);
    println!(
        "schedule replay (seed {seed}): {checks} monotonicity checks, {} violation(s)",
        violations.len()
    );
    for v in &violations {
        println!(
            "VIOLATION [{}] (seed {}): {}\n  repro: {}",
            v.invariant,
            v.seed,
            v.detail,
            v.repro_command(probe_sites)
        );
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(format!("{} invariant violation(s)", violations.len()))
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = if args.smoke {
        run_smoke()
    } else if let Some(which) = &args.replay {
        run_replay(which, args.seed, args.sites)
    } else if args.replay_schedule {
        run_replay_schedule(args.seed, args.sites)
    } else {
        run_campaign_cmd(args.seed, args.schedules, args.sites)
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
