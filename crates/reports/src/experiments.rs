//! Experiment registry.

use crate::table::TextTable;
use crate::workspace::Workspace;
use crate::{figures, incidents, tables};

/// The rendered output of one experiment.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id, e.g. `"table3"`.
    pub id: String,
    /// Human title including the paper reference.
    pub title: String,
    /// Rendered tables.
    pub tables: Vec<TextTable>,
    /// Paper-vs-measured commentary lines.
    pub notes: Vec<String>,
}

impl Report {
    /// Starts a report.
    #[must_use]
    pub fn new(id: &str, title: &str) -> Report {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            tables: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a table.
    #[must_use]
    pub fn table(mut self, t: TextTable) -> Report {
        self.tables.push(t);
        self
    }

    /// Adds a note line.
    #[must_use]
    pub fn note(mut self, n: impl Into<String>) -> Report {
        self.notes.push(n.into());
        self
    }

    /// Renders the full report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("=== {} — {} ===\n\n", self.id, self.title));
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  * {n}\n"));
        }
        out
    }
}

/// All experiment ids, in paper order.
pub fn all_experiment_ids() -> Vec<&'static str> {
    vec![
        "table1",
        "table2",
        "figure2",
        "table3",
        "figure3",
        "table4",
        "figure4",
        "table5",
        "figure5",
        "figure6",
        "table6",
        "figure7",
        "table7",
        "figure8",
        "table8",
        "figure9",
        "table9",
        "table10",
        "table11",
        "validation",
        "amplification",
        "incidents",
    ]
}

/// Runs one experiment by id.
pub fn run_experiment(ws: &Workspace, id: &str) -> Option<Report> {
    Some(match id {
        "table1" => tables::table1(ws),
        "table2" => tables::table2(ws),
        "table3" => tables::table3(ws),
        "table4" => tables::table4(ws),
        "table5" => tables::table5(ws),
        "table6" => tables::table6(ws),
        "table7" => tables::table7(ws),
        "table8" => tables::table8(ws),
        "table9" => tables::table9(ws),
        "table10" => tables::table10(ws),
        "table11" => tables::table11(ws),
        "validation" => tables::validation(ws),
        "figure2" => figures::figure2(ws),
        "figure3" => figures::figure3(ws),
        "figure4" => figures::figure4(ws),
        "figure5" => figures::figure5(ws),
        "figure6" => figures::figure6(ws),
        "figure7" => figures::figure7(ws),
        "figure8" => figures::figure8(ws),
        "figure9" => figures::figure9(ws),
        "amplification" => figures::amplification(ws),
        "incidents" => incidents::incidents(ws),
        _ => return None,
    })
}
