//! Cross-worker-count determinism properties for every parallel stage
//! built on the shared fan-out (`webdeps_model::par`).
//!
//! The workspace contract is that worker count is a *speed* knob, never
//! a *results* knob: chunked fan-outs merge shard results in shard
//! order, so datasets, rankings, sweeps, and campaign reports must be
//! byte-identical at any `jobs`/`threads` value. These properties pin
//! that contract for:
//!
//! * the crawl/observation stage (`measure_world_with`),
//! * provider rankings and the per-site critical-dependency sweep
//!   (memoized reachability fanned per provider),
//! * schedule-aware outage sweeps (`simulate_outage_at_with_jobs`),
//! * chaos campaigns (`CampaignConfig::jobs`) and incident replay.
//!
//! Each parallel result is additionally cross-checked against an
//! independent naive reference (`score_bfs`) where one exists, so a
//! bug that made *every* worker count agree on a wrong answer would
//! still fail here.

use std::collections::HashMap;
use std::sync::OnceLock;
use webdeps::chaos::campaign::random_schedule;
use webdeps::chaos::{dyn_two_wave, replay, run_campaign, CampaignConfig};
use webdeps::core::{
    coverage_curve, coverage_curve_columnar, simulate_outage_at_with_jobs,
    simulate_outage_with_jobs, DepGraph, MetricOptions, Metrics, NodeRef,
};
use webdeps::dns::SimTime;
use webdeps::measure::pipeline::{measure_world_columnar_with, measure_world_with, MeasureConfig};
use webdeps::measure::{ColumnarDataset, MeasurementDataset};
use webdeps::model::{ServiceKind, SiteId};
use webdeps::worldgen::{SnapshotYear, World, WorldConfig};
use webdeps_testkit::{check_with, gen, tk_assert, Config};

/// A small world for the crawl-stage property: measured repeatedly, so
/// it stays well under the campaign/analysis world below.
fn crawl_world() -> &'static World {
    static W: OnceLock<World> = OnceLock::new();
    W.get_or_init(|| {
        World::generate(WorldConfig {
            seed: 58,
            n_sites: 400,
            year: SnapshotYear::Y2020,
        })
    })
}

/// The analysis world and its measured dataset, shared across the
/// ranking/sweep/outage properties.
fn analysis_world() -> &'static World {
    static W: OnceLock<World> = OnceLock::new();
    W.get_or_init(|| {
        World::generate(WorldConfig {
            seed: 58,
            n_sites: 900,
            year: SnapshotYear::Y2020,
        })
    })
}

fn analysis_dataset() -> &'static MeasurementDataset {
    static D: OnceLock<MeasurementDataset> = OnceLock::new();
    D.get_or_init(|| {
        let world = analysis_world();
        measure_world_with(world, MeasureConfig::for_world(world))
    })
}

fn analysis_graph() -> &'static DepGraph {
    static G: OnceLock<DepGraph> = OnceLock::new();
    G.get_or_init(|| DepGraph::from_dataset(analysis_dataset()))
}

/// The option sets the paper's tables actually use, as a seed-indexed
/// pool for the properties below.
fn option_pool() -> Vec<MetricOptions> {
    vec![
        MetricOptions::full(),
        MetricOptions::direct_only(),
        MetricOptions::only(ServiceKind::Ca, ServiceKind::Dns),
    ]
}

/// Sharded world generation: site synthesis fans out across shards
/// with predicted ids/IPs/serials, so a generated world must be
/// byte-identical at 1, 2, and 8 shards — same registries and zone
/// counts, and (the strong check) an identical measured dataset, since
/// measurement reads every wire-visible artifact the shards built:
/// zones, SOAs, CNAME chains, certificates, pages.
#[test]
fn worldgen_identical_at_any_job_count() {
    let make = |jobs: usize| {
        World::generate_with_jobs(
            WorldConfig {
                seed: 77,
                n_sites: 500,
                year: SnapshotYear::Y2020,
            },
            jobs,
        )
    };
    let measure = |world: &World| {
        let config = MeasureConfig {
            threads: 1,
            ..MeasureConfig::for_world(world)
        };
        format!("{:?}", measure_world_with(world, config))
    };
    let serial = make(1);
    let serial_ds = measure(&serial);
    for jobs in [2usize, 8] {
        let sharded = make(jobs);
        assert_eq!(
            serial.entities.len(),
            sharded.entities.len(),
            "entity count diverged at jobs={jobs}"
        );
        assert_eq!(
            serial.dns.zone_count(),
            sharded.dns.zone_count(),
            "zone count diverged at jobs={jobs}"
        );
        assert_eq!(
            serial.web.vhost_count(),
            sharded.web.vhost_count(),
            "vhost count diverged at jobs={jobs}"
        );
        assert_eq!(
            serial_ds,
            measure(&sharded),
            "measured dataset diverged at jobs={jobs}"
        );
    }
}

/// Crawl + observation: the sharded pipeline must produce a dataset
/// whose *debug rendering* — every site, provider, and classification,
/// in order — is identical at 1, 2, and 8 workers, across varying
/// site caps (caps move the shard boundaries).
#[test]
fn measurement_dataset_identical_at_any_thread_count() {
    let world = crawl_world();
    check_with(
        &Config {
            cases: 4,
            ..Config::default()
        },
        "measurement_dataset_identical_at_any_thread_count",
        &gen::u64_any(),
        |&seed| {
            let cap = 120 + (seed % 160) as usize;
            let config = |threads: usize| MeasureConfig {
                max_sites: Some(cap),
                threads,
                ..MeasureConfig::for_world(world)
            };
            let serial = format!("{:?}", measure_world_with(world, config(1)));
            for threads in [2usize, 8] {
                let sharded = format!("{:?}", measure_world_with(world, config(threads)));
                tk_assert!(
                    serial == sharded,
                    "dataset diverged at threads={threads} with cap={cap}"
                );
            }
            Ok(())
        },
    );
}

/// The streamed columnar pipeline never materializes rows, yet must
/// equal the row pipeline converted columnar — same interner contents,
/// same packed states, same CSR columns — at every worker count.
#[test]
fn columnar_dataset_identical_at_any_thread_count_and_matches_rows() {
    let world = crawl_world();
    let config = |threads: usize| MeasureConfig {
        max_sites: Some(250),
        threads,
        ..MeasureConfig::for_world(world)
    };
    let reference = ColumnarDataset::from_rows(&measure_world_with(world, config(1)));
    for threads in [1usize, 2, 8] {
        let streamed = measure_world_columnar_with(world, config(threads));
        assert_eq!(
            streamed, reference,
            "columnar dataset diverged at threads={threads}"
        );
    }
}

/// The columnar graph build equals the row build at any jobs value,
/// and every ranking derived from it — every service kind, every
/// option set, 1 or 8 workers — is byte-identical to the row path.
#[test]
fn columnar_graph_and_rankings_match_row_path() {
    let cds = ColumnarDataset::from_rows(analysis_dataset());
    let row_graph = analysis_graph();
    for jobs in [1usize, 8] {
        let col_graph = DepGraph::from_columnar_with_jobs(&cds, jobs);
        assert_eq!(
            &col_graph, row_graph,
            "columnar graph diverged at jobs={jobs}"
        );
    }
    let col_graph = DepGraph::from_columnar(&cds);
    let row_metrics = Metrics::new(row_graph);
    let col_metrics = Metrics::new(&col_graph);
    for opts in option_pool() {
        for kind in [ServiceKind::Dns, ServiceKind::Cdn, ServiceKind::Ca] {
            let row = row_metrics.ranking_with_jobs(kind, &opts, 1);
            for jobs in [1usize, 8] {
                assert_eq!(
                    col_metrics.ranking_with_jobs(kind, &opts, jobs),
                    row,
                    "columnar ranking for {kind:?} diverged at jobs={jobs}"
                );
            }
        }
    }
}

/// Bitset-based columnar consumer sets produce the exact coverage
/// curve the row path's hash-set unions produce.
#[test]
fn columnar_coverage_matches_rows() {
    let ds = analysis_dataset();
    let cds = ColumnarDataset::from_rows(ds);
    for kind in [
        ServiceKind::Dns,
        ServiceKind::Cdn,
        ServiceKind::Ca,
        ServiceKind::Cloud,
    ] {
        assert_eq!(
            coverage_curve_columnar(&cds, kind),
            coverage_curve(ds, kind),
            "columnar coverage for {kind:?} diverged from rows"
        );
    }
}

/// Impact predicted from the columnar-built graph is confirmed by the
/// behavioral outage simulation: every site the columnar graph marks
/// critically dependent actually breaks when the provider fails.
#[test]
fn columnar_graph_impact_is_confirmed_by_outage_simulation() {
    let world = analysis_world();
    let ds = analysis_dataset();
    let cds = ColumnarDataset::from_rows(ds);
    let graph = DepGraph::from_columnar(&cds);
    let metrics = Metrics::new(&graph);
    let provider_key = "domaincontrol.com";
    let node = graph
        .provider(provider_key, ServiceKind::Dns)
        .expect("observed provider");
    let predicted = metrics.dependent_sites(node, true, &MetricOptions::direct_only());
    let result = simulate_outage_with_jobs(world, &[provider_key], false, 4)
        .expect("provider is in the world catalog");
    let simulated: std::collections::HashSet<_> = result.affected.iter().copied().collect();
    for site in &predicted {
        assert!(
            simulated.contains(site),
            "site {site} predicted critical by the columnar graph but survived"
        );
    }
    assert!(
        simulated.len() <= predicted.len() + ds.sites.len() / 10,
        "simulated {} vs predicted {}",
        simulated.len(),
        predicted.len()
    );
}

/// Rankings are identical at every worker count *and* agree with the
/// naive per-provider reverse-BFS reference — so the memoized
/// reachability index and the per-provider fan-out can both be wrong
/// only by agreeing with `score_bfs`.
#[test]
fn ranking_identical_across_jobs_and_matches_bfs() {
    let graph = analysis_graph();
    let metrics = Metrics::new(graph);
    let opts_pool = option_pool();
    check_with(
        &Config {
            cases: 24,
            ..Config::default()
        },
        "ranking_identical_across_jobs_and_matches_bfs",
        &gen::u64_any(),
        |&seed| {
            let kind = [ServiceKind::Dns, ServiceKind::Cdn, ServiceKind::Ca][(seed % 3) as usize];
            let opts = &opts_pool[(seed / 3 % 3) as usize];
            let serial = metrics.ranking_with_jobs(kind, opts, 1);
            for jobs in [2usize, 8] {
                let fanned = metrics.ranking_with_jobs(kind, opts, jobs);
                tk_assert!(
                    serial == fanned,
                    "ranking for {kind:?} diverged at jobs={jobs}"
                );
            }
            // Spot-check scores against the naive engine (the full
            // population is covered by the reach-index unit tests).
            for score in serial.iter().take(12) {
                let id = graph
                    .find(&NodeRef::Provider(score.key.clone(), kind))
                    .ok_or_else(|| format!("ranked provider {} not in graph", score.key))?;
                tk_assert!(
                    score.impact == metrics.score_bfs(id, true, opts).len(),
                    "impact for {} disagrees with score_bfs",
                    score.key
                );
                tk_assert!(
                    score.concentration == metrics.score_bfs(id, false, opts).len(),
                    "concentration for {} disagrees with score_bfs",
                    score.key
                );
            }
            Ok(())
        },
    );
}

/// The per-site critical-dependency sweep is identical at every worker
/// count and equals a provider-by-provider naive accumulation.
#[test]
fn critical_deps_per_site_identical_and_matches_naive() {
    let graph = analysis_graph();
    let metrics = Metrics::new(graph);
    let opts = MetricOptions::full();
    let serial = metrics.critical_deps_per_site_with_jobs(&opts, 1);
    for jobs in [2usize, 8] {
        assert_eq!(
            serial,
            metrics.critical_deps_per_site_with_jobs(&opts, jobs),
            "critical_deps_per_site diverged at jobs={jobs}"
        );
    }
    let mut naive: HashMap<SiteId, usize> = HashMap::new();
    for kind in [ServiceKind::Dns, ServiceKind::Cdn, ServiceKind::Ca] {
        for provider in graph.providers_of(kind) {
            for site in metrics.score_bfs(provider, true, &opts) {
                *naive.entry(site).or_insert(0) += 1;
            }
        }
    }
    assert_eq!(serial, naive, "sweep disagrees with naive accumulation");
}

/// Schedule-aware outage sweeps: the sharded probe sweep returns the
/// same affected-site list (same order, same contents) at 1, 2, and 5
/// workers, for random schedules sampled at random instants.
#[test]
fn outage_at_identical_across_jobs() {
    let world = analysis_world();
    check_with(
        &Config {
            cases: 12,
            ..Config::default()
        },
        "outage_at_identical_across_jobs",
        &gen::u64_any(),
        |&seed| {
            let schedule = random_schedule(world, seed);
            let at = SimTime(seed % 100_000);
            let probe = |jobs: usize| {
                format!(
                    "{:?}",
                    simulate_outage_at_with_jobs(world, &schedule, at, false, 200, jobs)
                )
            };
            let serial = probe(1);
            for jobs in [2usize, 5] {
                tk_assert!(
                    serial == probe(jobs),
                    "outage sweep diverged at jobs={jobs}, t={at}"
                );
            }
            Ok(())
        },
    );
}

/// The schedule-free outage entry point shares the same probe sweep;
/// pin it too, under both revocation policies.
#[test]
fn outage_identical_across_jobs() {
    let world = analysis_world();
    for hard_fail in [false, true] {
        let serial = format!(
            "{:?}",
            simulate_outage_with_jobs(world, &["Cloudflare"], hard_fail, 1)
        );
        let fanned = format!(
            "{:?}",
            simulate_outage_with_jobs(world, &["Cloudflare"], hard_fail, 4)
        );
        assert_eq!(serial, fanned, "outage diverged (hard_fail={hard_fail})");
    }
}

/// A full chaos campaign renders byte-identically at 1 and 3 workers:
/// the monotonicity and redundancy passes fan out, but their reports
/// merge in schedule/site order.
#[test]
fn campaign_render_identical_across_jobs() {
    let world = crawl_world();
    let run = |jobs: usize| {
        run_campaign(
            world,
            &CampaignConfig {
                jobs,
                ..CampaignConfig::smoke(42)
            },
        )
        .render()
    };
    assert_eq!(run(1), run(3), "campaign report depends on worker count");
}

/// Incident replay is serial *by design* (the persistent client's
/// cache carry-over is the phenomenon being replayed); pin that its
/// rendering is reproducible run-to-run so a future parallelization
/// cannot slip in silently.
#[test]
fn replay_render_is_reproducible() {
    let world = crawl_world();
    let incident = dyn_two_wave(world, 42).expect("small world has a rankable DNS provider");
    let first = replay(world, &incident).render();
    let second = replay(world, &incident).render();
    assert_eq!(first, second, "replay rendering is not reproducible");
}

/// Incremental recompute must not be a results knob either: after a
/// seeded stream of churn deltas, the patched [`MutableReach`] pair
/// (impact + concentration) scores every provider byte-identically to
/// rankings computed from a freshly rebuilt graph — and those fresh
/// rankings are themselves byte-identical at 1, 2, and 8 workers. Runs
/// 64 independent delta streams.
#[test]
fn churned_mutable_reach_matches_fresh_rankings_at_any_jobs() {
    use webdeps::core::{Churn, EdgeKind, GraphBuilder, MutableReach, ProviderRef};

    const KINDS: [ServiceKind; 3] = [ServiceKind::Dns, ServiceKind::Cdn, ServiceKind::Ca];

    // Mirror state: providers are (key, kind); edges are index triples.
    struct Mirror {
        sites: u32,
        providers: Vec<(String, ServiceKind)>,
        site_edges: Vec<(u32, usize, bool)>,
        prov_edges: Vec<(usize, usize, bool)>,
    }

    impl Mirror {
        fn build(&self) -> DepGraph {
            let mut b = GraphBuilder::new();
            for s in 0..self.sites {
                b.intern_site(SiteId(s));
            }
            for (key, kind) in &self.providers {
                b.intern_provider(key, *kind);
            }
            let mut g = b;
            for &(site, p, critical) in &self.site_edges {
                let from = g.intern_site(SiteId(site));
                let (key, kind) = &self.providers[p];
                let to = g.intern_provider(key, *kind);
                g.add_edge(
                    from,
                    to,
                    EdgeKind {
                        service: *kind,
                        critical,
                    },
                );
            }
            for &(f, t, critical) in &self.prov_edges {
                let (fk, fkind) = &self.providers[f];
                let (tk, tkind) = &self.providers[t];
                let from = g.intern_provider(fk, *fkind);
                let to = g.intern_provider(tk, *tkind);
                g.add_edge(
                    from,
                    to,
                    EdgeKind {
                        service: *tkind,
                        critical,
                    },
                );
            }
            g.build()
        }
    }

    check_with(
        &Config {
            cases: 64,
            ..Config::default()
        },
        "churned_mutable_reach_matches_fresh_rankings_at_any_jobs",
        &gen::u64_any(),
        |&seed| {
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let opts = MetricOptions::full();
            let mut mirror = Mirror {
                sites: 20 + (next() % 20) as u32,
                providers: Vec::new(),
                site_edges: Vec::new(),
                prov_edges: Vec::new(),
            };
            for kind in KINDS {
                for i in 0..(2 + next() % 2) {
                    mirror
                        .providers
                        .push((format!("{kind:?}{i}.example").to_lowercase(), kind));
                }
            }
            let n_prov = mirror.providers.len();
            for _ in 0..(10 + next() % 24) {
                mirror.site_edges.push((
                    (next() % mirror.sites as u64) as u32,
                    (next() % n_prov as u64) as usize,
                    next() % 2 == 0,
                ));
            }
            for _ in 0..(next() % 6) {
                let f = (next() % n_prov as u64) as usize;
                let t = (next() % n_prov as u64) as usize;
                if f != t {
                    mirror.prov_edges.push((f, t, next() % 2 == 0));
                }
            }

            let initial = mirror.build();
            let mut impact = MutableReach::from_graph(&initial, true, &opts);
            let mut conc = MutableReach::from_graph(&initial, false, &opts);

            let pref = |mirror: &Mirror, p: usize| {
                let (key, kind) = &mirror.providers[p];
                ProviderRef::new(key.clone(), *kind)
            };
            for _ in 0..12 {
                let delta = match next() % 4 {
                    0 => {
                        let site = (next() % mirror.sites as u64) as u32;
                        let p = (next() % n_prov as u64) as usize;
                        let critical = next() % 2 == 0;
                        mirror.site_edges.push((site, p, critical));
                        Churn::AddSiteEdge {
                            site: SiteId(site),
                            provider: pref(&mirror, p),
                            critical,
                        }
                    }
                    1 if !mirror.site_edges.is_empty() => {
                        let i = (next() % mirror.site_edges.len() as u64) as usize;
                        let (site, p, critical) = mirror.site_edges.swap_remove(i);
                        Churn::RemoveSiteEdge {
                            site: SiteId(site),
                            provider: pref(&mirror, p),
                            critical,
                        }
                    }
                    2 => {
                        let f = (next() % n_prov as u64) as usize;
                        let t = (next() % n_prov as u64) as usize;
                        if f == t {
                            continue;
                        }
                        let critical = next() % 2 == 0;
                        mirror.prov_edges.push((f, t, critical));
                        Churn::AddProviderEdge {
                            from: pref(&mirror, f),
                            to: pref(&mirror, t),
                            critical,
                        }
                    }
                    _ if !mirror.prov_edges.is_empty() => {
                        let i = (next() % mirror.prov_edges.len() as u64) as usize;
                        let (f, t, critical) = mirror.prov_edges.swap_remove(i);
                        Churn::RemoveProviderEdge {
                            from: pref(&mirror, f),
                            to: pref(&mirror, t),
                            critical,
                        }
                    }
                    _ => continue,
                };
                if let Err(e) = impact.apply(&delta) {
                    return Err(format!("impact rejected a mirrored delta: {e}"));
                }
                if let Err(e) = conc.apply(&delta) {
                    return Err(format!("concentration rejected a mirrored delta: {e}"));
                }
            }

            let churned = mirror.build();
            let metrics = Metrics::new(&churned);
            for kind in KINDS {
                let baseline = metrics.ranking_with_jobs(kind, &opts, 1);
                for jobs in [2usize, 8] {
                    let fanned = metrics.ranking_with_jobs(kind, &opts, jobs);
                    tk_assert!(
                        fanned == baseline,
                        "fresh ranking for {kind:?} diverged at jobs={jobs}"
                    );
                }
                for score in &baseline {
                    let patched_impact = impact.dependent_count(score.key.as_str(), kind);
                    let patched_conc = conc.dependent_count(score.key.as_str(), kind);
                    tk_assert!(
                        patched_impact == score.impact,
                        "impact mismatch for {} ({kind:?}): patched {patched_impact} vs fresh {}",
                        score.key.as_str(),
                        score.impact
                    );
                    tk_assert!(
                        patched_conc == score.concentration,
                        "concentration mismatch for {} ({kind:?}): patched {patched_conc} vs fresh {}",
                        score.key.as_str(),
                        score.concentration
                    );
                }
            }
            Ok(())
        },
    );
}
