//! Graphviz (DOT) export of the dependency graph.
//!
//! Figure 5 of the paper is a node-link rendering of the website ↔
//! provider bipartite graph with node size proportional to indegree.
//! [`to_dot`] emits the same picture for external renderers: provider
//! nodes sized by direct consumer count, a bounded sample of site nodes,
//! and all provider → provider (inter-service) edges.

use crate::graph::{DepGraph, NodeId, NodeKind};
use std::collections::HashMap;
use webdeps_model::ServiceKind;

/// Options for the DOT rendering.
#[derive(Debug, Clone, Copy)]
pub struct DotOptions {
    /// How many providers (per service kind, by consumer count) to show.
    pub top_providers: usize,
    /// How many site nodes to sample (sites beyond this are aggregated
    /// into the provider labels).
    pub max_sites: usize,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            top_providers: 8,
            max_sites: 120,
        }
    }
}

fn color_of(kind: ServiceKind) -> &'static str {
    match kind {
        ServiceKind::Dns => "#4c72b0",
        ServiceKind::Cdn => "#dd8452",
        ServiceKind::Ca => "#55a868",
        ServiceKind::Cloud => "#8172b3",
    }
}

/// Renders the graph (or the part of it worth looking at) as DOT.
pub fn to_dot(graph: &DepGraph, opts: &DotOptions) -> String {
    // Rank providers by direct consumer count.
    let mut consumer_counts: HashMap<NodeId, usize> = HashMap::new();
    for kind in [ServiceKind::Dns, ServiceKind::Cdn, ServiceKind::Ca] {
        for p in graph.providers_of(kind) {
            consumer_counts.insert(p, graph.consumers_of(p).count());
        }
    }
    let mut shown_providers: Vec<NodeId> = Vec::new();
    for kind in [ServiceKind::Dns, ServiceKind::Cdn, ServiceKind::Ca] {
        let mut of_kind: Vec<NodeId> = graph.providers_of(kind).collect();
        of_kind.sort_by_key(|p| std::cmp::Reverse(consumer_counts[p]));
        shown_providers.extend(of_kind.into_iter().take(opts.top_providers));
    }
    let shown: std::collections::HashSet<NodeId> = shown_providers.iter().copied().collect();

    let mut out = String::from("digraph webdeps {\n");
    out.push_str("  graph [overlap=false, splines=true, bgcolor=\"white\"];\n");
    out.push_str("  node [fontname=\"Helvetica\"];\n");

    // Provider nodes, sized by direct consumer count.
    let max_count = shown_providers
        .iter()
        .map(|p| consumer_counts[p])
        .max()
        .unwrap_or(1)
        .max(1);
    for &p in &shown_providers {
        let NodeKind::Provider(key, kind) = graph.node(p) else {
            continue;
        };
        let count = consumer_counts[&p];
        let size = 0.4 + 1.6 * (count as f64 / max_count as f64);
        out.push_str(&format!(
            "  \"p{}\" [label=\"{}\\n{} sites\", shape=circle, style=filled, \
             fillcolor=\"{}\", fontcolor=white, width={:.2}, fixedsize=true];\n",
            p.0,
            graph.name(key),
            count,
            color_of(kind),
            size
        ));
    }

    // A sample of site nodes with their edges into shown providers.
    let mut site_edges = 0usize;
    let mut sites_drawn = 0usize;
    'outer: for &p in &shown_providers {
        for (consumer, kind) in graph.consumers_of(p) {
            if let NodeKind::Site(site) = graph.node(consumer) {
                if sites_drawn >= opts.max_sites {
                    break 'outer;
                }
                out.push_str(&format!(
                    "  \"s{}\" [label=\"\", shape=point, width=0.05, color=\"#999999\"];\n",
                    site.0
                ));
                out.push_str(&format!(
                    "  \"s{}\" -> \"p{}\" [color=\"#bbbbbb\", arrowsize=0.3{}];\n",
                    site.0,
                    p.0,
                    if kind.critical { ", penwidth=1.2" } else { "" }
                ));
                sites_drawn += 1;
                site_edges += 1;
            }
        }
    }

    // Inter-service edges between shown providers.
    for &p in &shown_providers {
        for (target, kind) in graph.deps_of(p) {
            if !shown.contains(&target) {
                continue;
            }
            out.push_str(&format!(
                "  \"p{}\" -> \"p{}\" [color=\"{}\", penwidth={}, label=\"{}\"];\n",
                p.0,
                target.0,
                color_of(kind.service),
                if kind.critical { 2.0 } else { 1.0 },
                kind.service
            ));
        }
    }

    out.push_str(&format!("  // {site_edges} site edges sampled\n"));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use webdeps_measure::measure_world;
    use webdeps_worldgen::{World, WorldConfig};

    #[test]
    fn dot_output_is_well_formed() {
        let world = World::generate(WorldConfig::small(19));
        let ds = measure_world(&world);
        let graph = DepGraph::from_dataset(&ds);
        let dot = to_dot(&graph, &DotOptions::default());
        assert!(dot.starts_with("digraph webdeps {"));
        assert!(dot.trim_end().ends_with('}'));
        // The headline providers appear (top-8 per kind includes the
        // majors at any scale).
        assert!(dot.contains("digicert.com"), "{dot}");
        assert!(dot.contains("cloudflare.com"));
        // All three service kinds are represented (via their colors).
        for color in ["#4c72b0", "#dd8452", "#55a868"] {
            assert!(dot.contains(color), "missing {color}");
        }
        // Inter-service edges with service labels.
        assert!(dot.contains("label=\"DNS\""));
        // Sites are sampled, not exhaustive.
        let site_nodes = dot.matches("shape=point").count();
        assert!(site_nodes > 0 && site_nodes <= DotOptions::default().max_sites);
        // Balanced braces (cheap structural check).
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn options_bound_the_output() {
        let world = World::generate(WorldConfig::small(19));
        let ds = measure_world(&world);
        let graph = DepGraph::from_dataset(&ds);
        let small = to_dot(
            &graph,
            &DotOptions {
                top_providers: 2,
                max_sites: 5,
            },
        );
        let big = to_dot(
            &graph,
            &DotOptions {
                top_providers: 10,
                max_sites: 100,
            },
        );
        assert!(small.len() < big.len());
        assert!(small.matches("shape=point").count() <= 5);
    }
}
