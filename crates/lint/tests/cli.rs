//! End-to-end CLI tests: run the compiled `webdeps-lint` binary
//! against the committed fixture workspaces and assert on exit codes
//! and report contents.

use std::process::{Command, Output};

const BAD: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/bad");
const CLEAN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/clean");

/// Every rule the bad fixture trips: the token/manifest rules, the
/// five dataflow rules, the three interprocedural reachability rules,
/// and the five concurrency rules.
const ALL_RULES: &[&str] = &[
    "panic",
    "wall-clock",
    "env-rand",
    "hash-iter",
    "layering",
    "extern-dep",
    "dbg",
    "todo",
    "allow-syntax",
    "result-dropped",
    "seed-flow",
    "float-ord",
    "must-use-api",
    "thread-capture",
    "panic-reachable",
    "taint-escape",
    "seed-flow-transitive",
    "lock-order-cycle",
    "blocking-while-locked",
    "guard-across-fanout",
    "lock-poison-unwrap",
    "atomic-ordering-mixed",
];

/// Runs the binary cache-free (tests must not write caches into the
/// committed fixture trees, nor race each other on a shared cache).
fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_webdeps-lint"))
        .arg("--no-cache")
        .args(args)
        .output()
        .expect("spawn webdeps-lint")
}

#[test]
fn bad_fixture_fails_and_names_every_rule() {
    let out = run(&["--root", BAD, "--json"]);
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let json = String::from_utf8(out.stdout).expect("utf8");
    for rule in ALL_RULES {
        assert!(
            json.contains(&format!("\"rule\": \"{rule}\"")),
            "fixture must trip rule {rule}; report:\n{json}"
        );
    }
    // The reasonless allow still suppresses (and is reported), but its
    // missing reason is an allow-syntax violation.
    assert!(json.contains("\"suppressed\": 1"), "report:\n{json}");
}

#[test]
fn clean_fixture_passes_and_counts_its_suppression() {
    let out = run(&["--root", CLEAN, "--json"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = String::from_utf8(out.stdout).expect("utf8");
    assert!(json.contains("\"violations\": 0"), "report:\n{json}");
    assert!(json.contains("\"suppressed\": 1"), "report:\n{json}");
    assert!(
        json.contains("fixture invariant: callers always pass non-empty slices"),
        "suppression reason must be attributed; report:\n{json}"
    );
}

#[test]
fn multi_line_allow_reason_is_captured_in_full() {
    // Regression: a reason wrapping onto following comment-only lines
    // used to be truncated at the first line.
    let out = run(&["--root", CLEAN, "--json"]);
    assert_eq!(out.status.code(), Some(0));
    let json = String::from_utf8(out.stdout).expect("utf8");
    assert!(
        json.contains("non-empty slices, so taking the head cannot fail"),
        "continuation lines must join the reason; report:\n{json}"
    );
}

#[test]
fn suppressions_flag_lists_reasons_in_human_output() {
    let out = run(&["--root", CLEAN, "--suppressions"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(
        text.contains("fixture invariant"),
        "human output must show the reason:\n{text}"
    );
}

#[test]
fn allow_flags_can_silence_the_bad_fixture() {
    let mut args = vec!["--root", BAD];
    for r in ALL_RULES {
        args.push("--allow");
        args.push(r);
    }
    let out = run(&args);
    assert_eq!(
        out.status.code(),
        Some(0),
        "disabling every rule must make the bad fixture pass; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn warn_rules_gate_only_under_deny_warnings() {
    // Disable everything except must-use-api (warn by default): the
    // remaining violations are warnings, so the plain run passes …
    let mut args = vec!["--root", BAD];
    for r in ALL_RULES.iter().filter(|r| **r != "must-use-api") {
        args.push("--allow");
        args.push(r);
    }
    let out = run(&args);
    assert_eq!(
        out.status.code(),
        Some(0),
        "warn-severity findings alone must not fail; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // … and --deny-warnings turns the same findings into failures.
    args.push("--deny-warnings");
    let out = run(&args);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn parallel_report_is_byte_identical_to_serial() {
    let serial = run(&["--root", BAD, "--json", "--jobs", "1"]);
    for jobs in ["2", "8"] {
        let parallel = run(&["--root", BAD, "--json", "--jobs", jobs]);
        assert_eq!(serial.status.code(), parallel.status.code());
        assert_eq!(
            serial.stdout, parallel.stdout,
            "--jobs {jobs} must not change the report"
        );
    }
}

#[test]
fn interprocedural_rules_cite_source_and_witness_chain() {
    let out = run(&["--root", BAD, "--json"]);
    let json = String::from_utf8(out.stdout).expect("utf8");
    for witness in [
        "via head -> hidden_panic",
        "via stamp -> now_tag",
        "via draw -> mint",
    ] {
        assert!(
            json.contains(witness),
            "interproc diagnostics must carry the call chain {witness:?}; report:\n{json}"
        );
    }
}

#[test]
fn lock_order_cycle_reports_a_deterministic_witness_chain() {
    // The bad fixture's `Pair::forward`/`Pair::backward` take `a` and
    // `b` in opposite orders through private helpers; the diagnostic
    // must spell out the full cycle with per-hop provenance, byte for
    // byte, on every run.
    let out = run(&["--root", BAD, "--json"]);
    let json = String::from_utf8(out.stdout).expect("utf8");
    let witness = "potential deadlock: lock-order cycle `Pair.a` -> `Pair.b` -> `Pair.a`: \
                   `Pair.a` held in `Pair::forward` (crates/web/src/lib.rs:128) -> \
                   calls `Pair::grab_b` -> acquires `Pair.b`; \
                   `Pair.b` held in `Pair::backward` (crates/web/src/lib.rs:133) -> \
                   calls `Pair::grab_a` -> acquires `Pair.a`; \
                   acquire locks in one global order or justify with lint:allow(lock-order-cycle)";
    assert!(
        json.contains(witness),
        "lock-order-cycle must carry the exact witness chain; report:\n{json}"
    );
}

#[test]
fn concurrency_rules_cite_guards_and_blocking_sites() {
    let out = run(&["--root", BAD, "--json"]);
    let json = String::from_utf8(out.stdout).expect("utf8");
    for needle in [
        // Direct blocking under a live guard.
        "`thread::sleep` blocks while the guard on `Mutex<u64>` (taken at line 138) is live",
        // Call-mediated blocking: the sleep hides in a helper.
        "call to `naps` can reach `thread::sleep` in `naps` (crates/web/src/lib.rs:144) \
         while the guard on `Mutex<u64>` (taken at line 148) is live",
        // A guard held across the parallel fan-out entry point.
        "is live across the parallel fan-out call at line 159",
        // Poisoned-lock unwrap names the recovery idiom.
        ".lock().unwrap() panics on a poisoned lock",
        // Mixed atomic orderings cite both sites.
        "atomic field `TICKS` is accessed with mixed orderings: \
         `Relaxed` (crates/web/src/lib.rs:170) vs `SeqCst` here",
    ] {
        assert!(
            json.contains(needle),
            "concurrency diagnostics must contain {needle:?}; report:\n{json}"
        );
    }
}

#[test]
fn justified_site_does_not_propagate_to_callers() {
    // The clean fixture's `head` calls `first`, whose panic site
    // carries a justified allow directive — the justification
    // discharges the hazard for every caller.
    let out = run(&["--root", CLEAN, "--json"]);
    let json = String::from_utf8(out.stdout).expect("utf8");
    assert!(
        !json.contains("\"rule\": \"panic-reachable\""),
        "justified panic sites must not taint callers; report:\n{json}"
    );
}

#[test]
fn warm_cache_replays_and_report_is_unchanged() {
    let cache =
        std::env::temp_dir().join(format!("webdeps-lint-cache-{}.json", std::process::id()));
    let cache_s = cache.to_str().expect("utf8 path");
    let runner = |args: &[&str]| {
        // Bypass the cache-free `run` helper: this test owns its cache.
        Command::new(env!("CARGO_BIN_EXE_webdeps-lint"))
            .args(args)
            .output()
            .expect("spawn webdeps-lint")
    };
    let cold = runner(&["--root", CLEAN, "--json", "--cache-file", cache_s]);
    let warm = runner(&["--root", CLEAN, "--json", "--cache-file", cache_s]);
    std::fs::remove_file(&cache).ok();
    assert_eq!(cold.status.code(), Some(0));
    assert_eq!(warm.status.code(), Some(0));
    let warm_err = String::from_utf8_lossy(&warm.stderr).to_string();
    assert!(
        warm_err.contains("analyzed 0 file(s)"),
        "warm run must replay every file from cache: {warm_err}"
    );
    assert_eq!(
        cold.stdout, warm.stdout,
        "cache replay must not change the report"
    );
}

#[test]
fn json_out_writes_the_report_to_disk() {
    let path = std::env::temp_dir().join(format!("webdeps-lint-cli-{}.json", std::process::id()));
    let out = run(&[
        "--root",
        CLEAN,
        "--json-out",
        path.to_str().expect("utf8 path"),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let written = std::fs::read_to_string(&path).expect("json-out file");
    assert!(written.contains("\"schema\": \"webdeps-lint/4\""));
    std::fs::remove_file(&path).ok();
}

#[test]
fn unknown_rule_and_unknown_flag_are_usage_errors() {
    let out = run(&["--allow", "no-such-rule"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn list_rules_prints_the_catalog() {
    let out = run(&["--list-rules"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).expect("utf8");
    for rule in ALL_RULES {
        assert!(text.contains(rule), "catalog must list {rule}:\n{text}");
    }
}

#[test]
fn explain_covers_the_full_rule_registry() {
    // Every rule --list-rules names must have a complete --explain
    // entry: severity tag, a rationale, an example, and allow syntax.
    let listing = run(&["--list-rules"]);
    let listed: Vec<String> = String::from_utf8(listing.stdout)
        .expect("utf8")
        .lines()
        .filter_map(|l| l.split_whitespace().next().map(str::to_string))
        .collect();
    assert_eq!(
        listed.len(),
        ALL_RULES.len(),
        "registry drifted: {listed:?}"
    );
    for rule in &listed {
        let out = run(&["--explain", rule]);
        assert_eq!(out.status.code(), Some(0), "--explain {rule} must succeed");
        let text = String::from_utf8(out.stdout).expect("utf8");
        for section in ["Why:", "Example (flagged):", "Justified sites:"] {
            assert!(
                text.contains(section),
                "--explain {rule} missing {section:?}:\n{text}"
            );
        }
        assert!(
            text.contains("[deny]") || text.contains("[warn]"),
            "--explain {rule} missing severity:\n{text}"
        );
    }
}

#[test]
fn explain_unknown_rule_is_a_usage_error() {
    let out = run(&["--explain", "no-such-rule"]);
    assert_eq!(out.status.code(), Some(2));
}
