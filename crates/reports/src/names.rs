//! Cosmetic mapping from wire identities to display names.
//!
//! The measurement pipeline knows providers only by their observed
//! infrastructure domains; reports print the familiar names next to
//! them so they can be compared with the paper's figures.

/// (wire identity, display name) pairs.
const PRETTY: &[(&str, &str)] = &[
    ("cloudflare.com", "Cloudflare"),
    ("cloudflare.net", "Cloudflare CDN"),
    ("awsdns.net", "AWS Route 53"),
    ("domaincontrol.com", "GoDaddy"),
    ("dnsmadeeasy.com", "DNSMadeEasy"),
    ("dynect.net", "Dyn"),
    ("nsone.net", "NS1"),
    ("ultradns.net", "UltraDNS"),
    ("akam.net", "Akamai Edge DNS"),
    ("googledomains.com", "Google Cloud DNS"),
    ("azure-dns.com", "Azure DNS"),
    ("alibabadns.com", "Alibaba DNS"),
    ("comodo-dns.net", "Comodo DNS"),
    ("akamaiedge.net", "Akamai"),
    ("cloudfront.net", "CloudFront"),
    ("incapdns.net", "Incapsula"),
    ("fastly.net", "Fastly"),
    ("stackpathdns.com", "StackPath"),
    ("edgecastcdn.net", "EdgeCast"),
    ("llnwd.net", "Limelight"),
    ("azureedge.net", "Azure CDN"),
    ("digicert.com", "DigiCert"),
    ("letsencrypt.org", "Let's Encrypt"),
    ("sectigo.com", "Sectigo"),
    ("globalsign.com", "GlobalSign"),
    ("amazontrust.com", "Amazon Trust"),
    ("godaddy-ca.com", "GoDaddy CA"),
    ("entrust.net", "Entrust"),
    ("symantec-ca.com", "Symantec"),
    ("geotrust-ca.com", "GeoTrust"),
    ("comodo-ca.com", "Comodo"),
    ("registrar-servers.com", "Namecheap DNS"),
    ("digitalocean.com", "DigitalOcean DNS"),
    ("he.net", "Hurricane Electric"),
    ("wixdns.net", "Wix DNS"),
    ("linode.com", "Linode DNS"),
    ("ovh.net", "OVH DNS"),
    ("ui-dns.com", "IONOS DNS"),
    ("gandi.net", "Gandi DNS"),
    ("thawte-ca.com", "Thawte"),
    ("rapidssl-ca.com", "RapidSSL"),
    ("certum.pl", "Certum"),
    ("trustasia.com", "TrustAsia"),
    ("b-cdn.net", "BunnyCDN"),
    ("kxcdn.com", "KeyCDN"),
    ("cdn77.org", "CDN77"),
];

/// Display name for a wire identity (falls back to the identity).
pub fn pretty(key: &str) -> &str {
    PRETTY
        .iter()
        .find(|(domain, _)| *domain == key)
        .map(|(_, name)| *name)
        .unwrap_or(key)
}

/// Display with the wire identity attached when they differ.
pub fn pretty_full(key: &str) -> String {
    let name = pretty(key);
    if name == key {
        key.to_string()
    } else {
        format!("{name} ({key})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_and_unknown_names() {
        assert_eq!(pretty("dnsmadeeasy.com"), "DNSMadeEasy");
        assert_eq!(pretty("unknown-thing.net"), "unknown-thing.net");
        assert_eq!(pretty_full("dynect.net"), "Dyn (dynect.net)");
        assert_eq!(pretty_full("unknown-thing.net"), "unknown-thing.net");
    }
}
