//! Seeded chaos campaigns.
//!
//! A campaign generates randomized [`FaultSchedule`]s against a world's
//! DNS provider population and checks two invariants the simulator must
//! uphold under *any* fault mix:
//!
//! * **Monotonicity** — adding a fault phase to a schedule never
//!   *increases* availability. Checked cache-free (via
//!   [`webdeps_core::outage::simulate_outage_at`]) because client-side
//!   caching genuinely breaks monotonicity: an earlier fault can leave
//!   a site with a fresher cached answer that later rides out a second
//!   outage.
//! * **Redundancy** — a site whose DNS sits on two or more *independent*
//!   entities (or on a private deployment plus a third party) survives
//!   any single-entity DNS outage. This is the paper's core mitigation
//!   claim, promoted to an executable property.
//!
//! Everything is derived from one seed, so a reported violation comes
//! with the exact schedule seed that reproduces it.

use webdeps_core::outage::{probe_site, simulate_outage_at_with_jobs};
use webdeps_dns::fault::Degradation;
use webdeps_dns::{FaultPhase, FaultPlan, FaultSchedule, FaultTarget, SimTime};
use webdeps_model::rng::DetRng;
use webdeps_model::{fan_out_chunked, EntityId};
use webdeps_worldgen::World;

/// How much ground a campaign covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Master seed; every schedule seed derives from it.
    pub seed: u64,
    /// Randomized schedules to generate and check for monotonicity.
    pub schedules: usize,
    /// Sites probed per availability sweep (`0` probes everything;
    /// sweeps are cache-free full fetches, so keep this modest).
    pub probe_sites: usize,
    /// Instants sampled per schedule pair.
    pub samples_per_schedule: usize,
    /// Worker count for availability sweeps and the redundancy pass,
    /// resolved through the workspace-wide knob
    /// ([`webdeps_model::par::resolve_jobs`]): `0` = auto. Campaign
    /// reports are byte-identical at any worker count.
    pub jobs: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 42,
            schedules: 12,
            probe_sites: 80,
            samples_per_schedule: 3,
            jobs: 0,
        }
    }
}

impl CampaignConfig {
    /// A small configuration suitable for CI smoke runs.
    pub fn smoke(seed: u64) -> Self {
        CampaignConfig {
            seed,
            schedules: 4,
            probe_sites: 40,
            samples_per_schedule: 2,
            jobs: 0,
        }
    }
}

/// One invariant violation, with enough context to reproduce it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant failed (`"monotonicity"` or `"redundancy"`).
    pub invariant: &'static str,
    /// The schedule seed (monotonicity) or campaign seed (redundancy)
    /// that reproduces the failure.
    pub seed: u64,
    /// Human-readable description of the failing case.
    pub detail: String,
}

impl Violation {
    /// A copy-pasteable `webdeps-chaos` invocation that replays this
    /// violation in isolation. Monotonicity violations replay a single
    /// schedule by its seed; redundancy violations replay the sweep
    /// alone (`--schedules 0`) under the campaign seed.
    pub fn repro_command(&self, probe_sites: usize) -> String {
        match self.invariant {
            "monotonicity" => format!(
                "webdeps-chaos --replay-schedule --seed {} --sites {probe_sites}",
                self.seed
            ),
            _ => format!(
                "webdeps-chaos --campaign --seed {} --schedules 0 --sites {probe_sites}",
                self.seed
            ),
        }
    }
}

/// Outcome of a campaign run.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Master seed the campaign ran under.
    pub seed: u64,
    /// Randomized schedules checked for monotonicity.
    pub schedules_checked: usize,
    /// (schedule, instant) availability comparisons performed.
    pub monotonicity_checks: usize,
    /// (site, failed-entity) survival probes performed.
    pub redundancy_checks: usize,
    /// Invariant violations found (empty on a healthy simulator).
    pub violations: Vec<Violation>,
    /// Sites probed per sweep — recorded so violation repro commands
    /// carry the exact probe budget the failing run used.
    pub probe_sites: usize,
}

impl CampaignReport {
    /// Whether every check held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Deterministic one-screen summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "chaos campaign (seed {}): {} schedules, {} monotonicity checks, {} redundancy checks\n",
            self.seed, self.schedules_checked, self.monotonicity_checks, self.redundancy_checks
        ));
        if self.passed() {
            out.push_str("all invariants held\n");
        } else {
            for v in &self.violations {
                out.push_str(&format!(
                    "VIOLATION [{}] (seed {}): {}\n  repro: {}\n",
                    v.invariant,
                    v.seed,
                    v.detail,
                    v.repro_command(self.probe_sites)
                ));
            }
        }
        out
    }
}

/// The DNS provider entities of a world, sorted and deduplicated —
/// the target population for randomized DNS-layer faults.
pub fn dns_provider_entities(world: &World) -> Vec<EntityId> {
    let mut out: Vec<EntityId> = world
        .truth
        .sites
        .iter()
        .flat_map(|s| s.dns.providers.iter())
        .filter_map(|p| world.provider_entity(p))
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// The campaign's fault horizon: schedules place phases inside the
/// first six simulated hours.
const HORIZON_SECS: u64 = 21_600;

/// Generates a randomized fault schedule over `world`'s DNS providers.
/// Fully determined by `seed`: 1–3 phases, each hitting one provider
/// entity with a random window and degradation mode.
pub fn random_schedule(world: &World, seed: u64) -> FaultSchedule {
    let entities = dns_provider_entities(world);
    // lint:allow(seed-flow) — schedule generation is a stream root: the
    // schedule's identity *is* its seed, so the stream is minted here.
    let mut rng = DetRng::new(seed).fork("chaos-schedule");
    let mut schedule = FaultSchedule::seeded(seed);
    if entities.is_empty() {
        return schedule;
    }
    let n_phases = 1 + rng.below(3);
    for _ in 0..n_phases {
        schedule.push_phase(random_phase(&entities, &mut rng));
    }
    schedule
}

fn random_phase(entities: &[EntityId], rng: &mut DetRng) -> FaultPhase {
    let target = *rng.pick(entities);
    let start = (rng.below(10) as u64) * 1_800;
    let duration = (1 + rng.below(6)) as u64 * 1_800;
    let mode = match rng.below(4) {
        0 => Degradation::Down,
        1 => Degradation::Loss {
            probability: 0.3 + 0.65 * rng.unit(),
        },
        2 => Degradation::Latency {
            added_ms: 500 + rng.below(2_501) as u32,
        },
        _ => {
            let period = 600 + rng.below(3_001) as u64;
            Degradation::Flapping {
                period_secs: period,
                down_secs: 1 + rng.below(period as usize) as u64,
            }
        }
    };
    FaultPhase {
        target: FaultTarget::Entity(target),
        start: SimTime(start),
        end: SimTime(start + duration),
        mode,
    }
}

/// Checks monotonicity for one schedule: extending `base` with one more
/// phase must not raise the up-count at any sampled instant. Returns
/// the comparisons performed and any violations. Draws (the extra
/// phase and the sampled instants) come from `rng`, so the caller's
/// stream — ultimately the campaign seed — fully determines the check.
pub fn check_monotonicity(
    world: &World,
    base: &FaultSchedule,
    rng: &mut DetRng,
    samples: usize,
    probe_sites: usize,
) -> (usize, Vec<Violation>) {
    check_monotonicity_with_jobs(world, base, rng, samples, probe_sites, 0)
}

/// [`check_monotonicity`] with an explicit worker count for the
/// per-instant availability sweeps (`0` = auto). The sampled instants
/// are drawn from `rng` *before* any probing, so the stream — and
/// therefore the check — is untouched by the worker count.
pub fn check_monotonicity_with_jobs(
    world: &World,
    base: &FaultSchedule,
    rng: &mut DetRng,
    samples: usize,
    probe_sites: usize,
    jobs: usize,
) -> (usize, Vec<Violation>) {
    let entities = dns_provider_entities(world);
    if entities.is_empty() {
        return (0, Vec::new());
    }
    let extra = random_phase(&entities, rng);
    let extended = base.clone().with_phase(extra);

    let mut violations = Vec::new();
    let mut checks = 0;
    for i in 0..samples.max(1) {
        // Sample instants spread over the horizon, jittered so phase
        // boundaries get hit across the campaign.
        let t = SimTime(rng.below(HORIZON_SECS as usize + 3_600) as u64 + (i as u64));
        let base_up = up_count(world, base, t, probe_sites, jobs);
        let ext_up = up_count(world, &extended, t, probe_sites, jobs);
        checks += 1;
        if ext_up > base_up {
            violations.push(Violation {
                invariant: "monotonicity",
                seed: base.seed(),
                detail: format!(
                    "at t+{}s the extended schedule has {ext_up} sites up vs {base_up} under the base",
                    t.seconds()
                ),
            });
        }
    }
    (checks, violations)
}

fn up_count(
    world: &World,
    schedule: &FaultSchedule,
    at: SimTime,
    probe_sites: usize,
    jobs: usize,
) -> usize {
    let r = simulate_outage_at_with_jobs(world, schedule, at, false, probe_sites, jobs);
    r.total - r.affected.len()
}

/// Checks redundancy: every site with two or more independent DNS
/// provider entities (or a private deployment alongside a third party)
/// must survive each single-entity outage among its own providers.
/// Survival is probed on the site apex over HTTP, cache-free, so the
/// check isolates the DNS layer from CDN and CA chains.
pub fn check_redundancy(world: &World, seed: u64, max_sites: usize) -> (usize, Vec<Violation>) {
    check_redundancy_with_jobs(world, seed, max_sites, 0)
}

/// [`check_redundancy`] with an explicit worker count (`0` = auto).
/// Candidate sites are collected serially (so `max_sites` caps the
/// same population at any worker count), then the per-candidate
/// single-entity outage probes fan across workers and merge in
/// candidate order.
pub fn check_redundancy_with_jobs(
    world: &World,
    seed: u64,
    max_sites: usize,
    jobs: usize,
) -> (usize, Vec<Violation>) {
    // Serial candidate collection: redundant-DNS sites with their
    // deduplicated provider entities, capped exactly as a serial sweep
    // would cap them.
    let mut candidates: Vec<(&webdeps_worldgen::SiteTruth, Vec<EntityId>)> = Vec::new();
    for truth in &world.truth.sites {
        if !truth.dns.state.is_redundant() {
            continue;
        }
        let mut provider_entities: Vec<EntityId> = truth
            .dns
            .providers
            .iter()
            .filter_map(|p| world.provider_entity(p))
            .collect();
        provider_entities.sort_unstable();
        provider_entities.dedup();
        // MultiThird sites need two *distinct* third-party entities to
        // count as independent; PrivatePlusThird sites keep their own
        // private deployment as the second leg.
        let private_leg = truth.dns.state == webdeps_worldgen::profiles::DepState::PrivatePlusThird;
        if !private_leg && provider_entities.len() < 2 {
            continue;
        }
        if max_sites > 0 && candidates.len() >= max_sites {
            break;
        }
        candidates.push((truth, provider_entities));
    }

    // Parallel survival probes, merged in candidate order.
    let per_candidate = fan_out_chunked(&candidates, jobs, |shard| {
        shard
            .iter()
            .map(|(truth, provider_entities)| {
                let mut checks = 0;
                let mut violations = Vec::new();
                for &entity in provider_entities {
                    let mut client = world.client();
                    client.set_faults(FaultPlan::healthy().fail_entity(entity));
                    client.resolver_mut().disable_cache();
                    checks += 1;
                    let apex = std::slice::from_ref(&truth.domain);
                    if !probe_site(&mut client, apex, false) {
                        violations.push(Violation {
                            invariant: "redundancy",
                            seed,
                            detail: format!(
                                "{} has redundant DNS but failed when entity {:?} went down",
                                truth.domain, entity
                            ),
                        });
                    }
                }
                (checks, violations)
            })
            .collect()
    });
    let mut checks = 0;
    let mut violations = Vec::new();
    for (c, v) in per_candidate {
        checks += c;
        violations.extend(v);
    }
    (checks, violations)
}

/// Runs the monotonicity check for one schedule, fully determined by
/// the schedule seed alone: both the schedule *and* the sampling
/// stream derive from it, so the `--replay-schedule` repro command a
/// violation prints replays this exact check — same schedule, same
/// sampled instants — with nothing else from the campaign.
pub fn check_schedule(
    world: &World,
    schedule_seed: u64,
    samples: usize,
    probe_sites: usize,
    jobs: usize,
) -> (usize, Vec<Violation>) {
    let base = random_schedule(world, schedule_seed);
    // lint:allow(seed-flow) — the sampling stream is rooted in the
    // schedule seed on purpose: one u64 must replay one violation.
    let mut rng = DetRng::new(schedule_seed).fork("chaos-monotonicity");
    check_monotonicity_with_jobs(world, &base, &mut rng, samples, probe_sites, jobs)
}

/// Runs a full campaign: `config.schedules` randomized monotonicity
/// checks plus one redundancy sweep. Deterministic in `config`.
pub fn run_campaign(world: &World, config: &CampaignConfig) -> CampaignReport {
    let mut report = CampaignReport {
        seed: config.seed,
        schedules_checked: 0,
        monotonicity_checks: 0,
        redundancy_checks: 0,
        violations: Vec::new(),
        probe_sites: config.probe_sites,
    };
    // lint:allow(seed-flow) — the campaign entry point mints the master
    // stream from the configured seed; every draw below forks from it.
    let mut master = DetRng::new(config.seed).fork("chaos-campaign");
    for _ in 0..config.schedules {
        let schedule_seed = master.next_u64();
        let (checks, violations) = check_schedule(
            world,
            schedule_seed,
            config.samples_per_schedule,
            config.probe_sites,
            config.jobs,
        );
        report.schedules_checked += 1;
        report.monotonicity_checks += checks;
        report.violations.extend(violations);
    }
    let (checks, violations) =
        check_redundancy_with_jobs(world, config.seed, config.probe_sites, config.jobs);
    report.redundancy_checks += checks;
    report.violations.extend(violations);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;
    use webdeps_worldgen::WorldConfig;

    fn world() -> &'static World {
        static W: OnceLock<World> = OnceLock::new();
        W.get_or_init(|| World::generate(WorldConfig::small(71)))
    }

    #[test]
    fn random_schedules_are_seed_deterministic_and_nonempty() {
        let w = world();
        let a = random_schedule(w, 7);
        let b = random_schedule(w, 7);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "same seed, same schedule"
        );
        assert!(!a.is_empty());
        assert!((1..=3).contains(&a.phases().len()));
        let c = random_schedule(w, 8);
        assert_ne!(
            format!("{a:?}"),
            format!("{c:?}"),
            "different seeds should differ"
        );
    }

    #[test]
    fn smoke_campaign_holds_both_invariants() {
        let report = run_campaign(world(), &CampaignConfig::smoke(42));
        assert!(
            report.passed(),
            "invariant violations:\n{}",
            report.render()
        );
        assert!(report.monotonicity_checks > 0);
        assert!(report.redundancy_checks > 0);
        assert!(report.render().contains("all invariants held"));
    }

    #[test]
    fn redundancy_sweep_finds_redundant_sites() {
        let (checks, violations) = check_redundancy(world(), 1, 0);
        assert!(checks >= 2, "world must contain redundant-DNS sites");
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn violations_render_copy_pasteable_repro_commands() {
        let report = CampaignReport {
            seed: 42,
            schedules_checked: 1,
            monotonicity_checks: 1,
            redundancy_checks: 1,
            violations: vec![
                Violation {
                    invariant: "monotonicity",
                    seed: 987,
                    detail: "extended schedule had more sites up".to_string(),
                },
                Violation {
                    invariant: "redundancy",
                    seed: 42,
                    detail: "redundant site went down".to_string(),
                },
            ],
            probe_sites: 40,
        };
        let text = report.render();
        assert!(
            text.contains("repro: webdeps-chaos --replay-schedule --seed 987 --sites 40"),
            "{text}"
        );
        assert!(
            text.contains("repro: webdeps-chaos --campaign --seed 42 --schedules 0 --sites 40"),
            "{text}"
        );
    }

    #[test]
    fn schedule_replay_reproduces_the_campaign_check() {
        // The repro path must re-derive schedule + sampling stream from
        // the seed alone: two runs are byte-identical, and the campaign's
        // own first schedule matches a standalone replay of its seed.
        let w = world();
        let mut master = DetRng::new(42).fork("chaos-campaign");
        let first_seed = master.next_u64();
        let (a_checks, a_viol) = check_schedule(w, first_seed, 2, 40, 0);
        let (b_checks, b_viol) = check_schedule(w, first_seed, 2, 40, 0);
        assert_eq!(a_checks, b_checks);
        assert_eq!(format!("{a_viol:?}"), format!("{b_viol:?}"));
    }
}
