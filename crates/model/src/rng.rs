//! Deterministic randomness for the synthetic world.
//!
//! Every stochastic decision in `webdeps` flows through [`DetRng`], a
//! facade over the vendored xoshiro256++ generator (see [`crate::prng`])
//! with *labelled forking*: `rng.fork("dns")` derives
//! an independent stream from the parent seed and a stable string hash.
//! Forking makes generation order-independent — adding a new subsystem
//! draw cannot perturb the draws of existing subsystems — which keeps the
//! 2016 and 2020 paired snapshots perfectly aligned site by site.

use crate::prng::Xoshiro256pp;

/// Stable 64-bit FNV-1a hash (independent of `std`'s randomized hasher).
pub fn stable_hash(data: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Deterministic, forkable random number generator.
///
/// ```
/// use webdeps_model::DetRng;
/// let root = DetRng::new(42);
/// let mut a = root.fork("dns");
/// let mut b = root.fork("dns");
/// assert_eq!(a.next_u64(), b.next_u64(), "same label, same stream");
/// assert_ne!(root.fork("dns").next_u64(), root.fork("cdn").next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    seed: u64,
    rng: Xoshiro256pp,
}

impl DetRng {
    /// Creates a generator from a world seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            seed,
            rng: Xoshiro256pp::seed_from_u64(seed),
        }
    }

    /// Derives an independent stream for a named subsystem. Forks with
    /// the same `(seed, label)` always produce identical streams.
    pub fn fork(&self, label: &str) -> DetRng {
        let child = self.seed ^ stable_hash(label).rotate_left(17);
        DetRng::new(child.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5851_f42d_4c95_7f2d)
    }

    /// Derives an independent per-item stream, e.g. one per site.
    /// Equivalent to `fork(&format!("{label}/{index}"))` — the hash is
    /// fed incrementally so the per-item hot path never allocates.
    pub fn fork_indexed(&self, label: &str, index: usize) -> DetRng {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = stable_hash(label);
        hash = (hash ^ u64::from(b'/')).wrapping_mul(FNV_PRIME);
        // Decimal digits of `index`, most significant first, exactly as
        // the formatted string would present them.
        let mut digits = [0u8; 20];
        let mut n = index;
        let mut len = 0;
        loop {
            digits[len] = b'0' + (n % 10) as u8;
            len += 1;
            n /= 10;
            if n == 0 {
                break;
            }
        }
        for d in digits[..len].iter().rev() {
            hash = (hash ^ u64::from(*d)).wrapping_mul(FNV_PRIME);
        }
        let child = self.seed ^ hash.rotate_left(17);
        DetRng::new(child.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5851_f42d_4c95_7f2d)
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.next_unit()
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0) is meaningless");
        self.rng.next_below(bound as u64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Picks an index according to non-negative `weights`. Returns `None`
    /// when all weights are zero or the slice is empty.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.unit() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|&w| w > 0.0)
    }

    /// Picks a reference from a slice uniformly. Panics on empty input.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (k clamped to n),
    /// returned in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: only the first k positions are needed.
        for i in 0..k {
            let j = self.range(i, n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_and_stable() {
        let root = DetRng::new(7);
        let mut f1 = root.fork("dns");
        let mut f2 = root.fork("dns");
        let mut g = root.fork("cdn");
        let s1: Vec<u64> = (0..8).map(|_| f1.next_u64()).collect();
        let s2: Vec<u64> = (0..8).map(|_| f2.next_u64()).collect();
        let s3: Vec<u64> = (0..8).map(|_| g.next_u64()).collect();
        assert_eq!(s1, s2, "same label must reproduce");
        assert_ne!(s1, s3, "different labels must diverge");
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn weighted_index_respects_zero_weights() {
        let mut r = DetRng::new(3);
        for _ in 0..100 {
            let i = r.weighted_index(&[0.0, 2.0, 0.0]).unwrap();
            assert_eq!(i, 1);
        }
        assert_eq!(r.weighted_index(&[0.0, 0.0]), None);
        assert_eq!(r.weighted_index(&[]), None);
    }

    #[test]
    fn weighted_index_distribution_roughly_matches() {
        let mut r = DetRng::new(11);
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[r.weighted_index(&[1.0, 3.0]).unwrap()] += 1;
        }
        let share = counts[1] as f64 / 10_000.0;
        assert!((share - 0.75).abs() < 0.03, "got {share}");
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut r = DetRng::new(5);
        let s = r.sample_indices(50, 10);
        assert_eq!(s.len(), 10);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "indices must be distinct");
        assert!(sorted.iter().all(|&i| i < 50));
        // k > n clamps.
        assert_eq!(r.sample_indices(3, 10).len(), 3);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(9);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_indexed_matches_formatted_fork() {
        let root = DetRng::new(42);
        for index in [0usize, 1, 7, 9, 10, 99, 1_000_000, usize::MAX] {
            let mut fast = root.fork_indexed("site", index);
            let mut slow = root.fork(&format!("site/{index}"));
            for _ in 0..4 {
                assert_eq!(fast.next_u64(), slow.next_u64(), "index {index}");
            }
        }
    }

    #[test]
    fn stable_hash_is_stable() {
        // Pinned value: must never change across releases (seeds depend on it).
        assert_eq!(stable_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(stable_hash("dns"), stable_hash("dns"));
        assert_ne!(stable_hash("dns"), stable_hash("cdn"));
    }
}
