//! Million-site columnar-core benchmarks.
//!
//! `measure_world/100k` runs in the CI bench smoke; `measure_world/1M`
//! is opt-in behind `WEBDEPS_BENCH_1M=1` (it needs minutes of wall
//! time and ~10 GB of RSS for the generated world).
//!
//! Besides timing, this target *asserts* the columnar memory budget
//! documented in README.md: the analysis arenas (columnar dataset +
//! CSR graph) must stay within [`ARENA_BYTES_PER_SITE`] and the whole
//! core working set (arenas + both reachability indexes) within
//! [`CORE_BYTES_PER_SITE`], at every benched scale.
//!
//! After the timed benches, one extra generate+measure run executes
//! with `webdeps_model::timing` enabled; the drained per-phase wall
//! times land as `metrics` entries (`…/phase/gen/sites` etc.) so the
//! JSON trajectory shows *where* the time goes, not just the total.
//! With `WEBDEPS_BENCH_ALLOC=1` the counting global allocator also
//! reports allocation calls and requested bytes for the same run.

use std::hint::black_box;
use webdeps_bench::harness::Harness;
use webdeps_core::{DepGraph, MetricOptions, Metrics, ReachIndex};
use webdeps_measure::measure_world_columnar;
use webdeps_model::{timing, ServiceKind};
use webdeps_worldgen::{SnapshotYear, World, WorldConfig};

#[path = "support/alloc_probe.rs"]
mod alloc_probe;

#[global_allocator]
static ALLOC: alloc_probe::CountingAlloc = alloc_probe::CountingAlloc;

/// Budget for the columnar dataset plus the CSR dependency graph.
/// Measured: 92 B/site at 100k sites, 82 B/site at 1M sites.
const ARENA_BYTES_PER_SITE: usize = 128;

/// Budget for the full core working set: arenas plus the two
/// reachability indexes. The reach indexes are per-provider site
/// bitsets, so they grow with the provider tail: measured 203 B/site
/// at 100k and 745 B/site at 1M.
const CORE_BYTES_PER_SITE: usize = 832;

fn bench_scale(h: &mut Harness, label: &str, n: usize) {
    let mut group = h.benchmark_group(&format!("measure_world/{label}"));
    group.sample_size(2);

    let config = WorldConfig {
        seed: 7,
        n_sites: n,
        year: SnapshotYear::Y2020,
    };
    group.bench_function("generate", |b| {
        b.iter(|| black_box(World::generate(config)));
    });
    let world = World::generate(config);

    group.bench_function("measure_columnar", |b| {
        b.iter(|| black_box(measure_world_columnar(&world)));
    });
    let cds = measure_world_columnar(&world);

    group.bench_function("graph_from_columnar", |b| {
        b.iter(|| black_box(DepGraph::from_columnar(&cds)));
    });
    let graph = DepGraph::from_columnar(&cds);

    let opts = MetricOptions::full();
    group.bench_function("reach_build", |b| {
        b.iter(|| black_box(ReachIndex::build(&graph, false, &opts)));
    });
    group.bench_function("rank_dns", |b| {
        let metrics = Metrics::new(&graph);
        b.iter(|| black_box(metrics.ranking(ServiceKind::Dns, &opts)));
    });
    group.finish();

    // Memory budget (untimed): the documented ceilings from README.md.
    let full = ReachIndex::build(&graph, false, &opts);
    let crit = ReachIndex::build(&graph, true, &opts);
    let arena = cds.heap_bytes() + graph.heap_bytes();
    let core = arena + full.heap_bytes() + crit.heap_bytes();
    eprintln!(
        "  measure_world/{label}: arenas {:.1} B/site (budget {ARENA_BYTES_PER_SITE}), \
         core {:.1} B/site (budget {CORE_BYTES_PER_SITE})",
        arena as f64 / n as f64,
        core as f64 / n as f64,
    );
    assert!(
        arena <= ARENA_BYTES_PER_SITE * n,
        "columnar arenas blew the budget: {arena} B for {n} sites \
         (> {ARENA_BYTES_PER_SITE} B/site)"
    );
    assert!(
        core <= CORE_BYTES_PER_SITE * n,
        "core working set blew the budget: {core} B for {n} sites \
         (> {CORE_BYTES_PER_SITE} B/site)"
    );

    // Release the benchmark's working set before the instrumented run
    // below regenerates the world (at 1M the two worlds would not fit
    // side by side in RSS).
    drop(full);
    drop(crit);
    drop(graph);
    drop(cds);
    drop(world);

    // Per-phase observability: one instrumented generate+measure run.
    // Timing scopes are off during the timed samples above (the guard
    // is a relaxed load when disabled), so the medians stay clean.
    let metric_group = format!("measure_world/{label}/phase");
    let _ = timing::drain();
    timing::enable();
    alloc_probe::start();
    let world = World::generate(config);
    let cds = measure_world_columnar(&world);
    let traffic = alloc_probe::stop();
    timing::disable();
    drop((cds, world));
    for sample in timing::drain() {
        h.record_metric(
            &metric_group,
            sample.label,
            sample.elapsed.as_secs_f64() * 1_000.0,
            "ms",
        );
    }
    match traffic {
        Some((allocs, bytes)) => {
            h.record_metric(&metric_group, "alloc/calls", allocs as f64, "count");
            h.record_metric(&metric_group, "alloc/bytes", bytes as f64, "B");
        }
        None => eprintln!(
            "  measure_world/{label}: alloc metrics skipped \
             (set WEBDEPS_BENCH_ALLOC=1 to record)"
        ),
    }
}

fn main() {
    let mut h = Harness::new("measure_world");
    bench_scale(&mut h, "100k", 100_000);
    if std::env::var("WEBDEPS_BENCH_1M").is_ok_and(|v| v == "1") {
        bench_scale(&mut h, "1M", 1_000_000);
    } else {
        eprintln!("measure_world/1M skipped (set WEBDEPS_BENCH_1M=1 to run)");
    }
    h.finish();
}
