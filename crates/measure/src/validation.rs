//! Heuristic validation against ground truth (§3's manual check).
//!
//! The only module allowed to read the world's answer key. It samples
//! sites, re-derives each strategy's verdict for every observed pair,
//! and scores it against the [`webdeps_model::EntityRegistry`] — the
//! synthetic stand-in for the authors' manual verification of 100
//! random sites. Reported per strategy: *accuracy* over decided pairs
//! and *coverage* (share of pairs decided at all), reproducing the
//! 100 / 97 / 56 (DNS), 100 / 96 / 94 (CA), and 100 / 97 / 83 (CDN)
//! comparisons.

use crate::classify::{classify, Classification, ClassifierKind, Evidence};
use crate::dns;
use std::collections::HashMap;
use webdeps_dns::Dig;
use webdeps_model::{DetRng, DomainName};
use webdeps_web::Crawler;
use webdeps_worldgen::World;

/// Accuracy of one strategy on one pair population.
#[derive(Debug, Clone, Copy)]
pub struct StrategyAccuracy {
    /// The strategy scored.
    pub strategy: ClassifierKind,
    /// Correct decisions / decided pairs.
    pub accuracy: f64,
    /// Decided pairs / all pairs.
    pub coverage: f64,
    /// Total pairs examined.
    pub pairs: usize,
}

/// Validation results for all three services.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// (site, nameserver) pair scoring.
    pub dns: Vec<StrategyAccuracy>,
    /// (site, CA endpoint) pair scoring.
    pub ca: Vec<StrategyAccuracy>,
    /// (site, CDN CNAME) pair scoring.
    pub cdn: Vec<StrategyAccuracy>,
    /// Number of sites sampled.
    pub sample_size: usize,
}

impl ValidationReport {
    /// Accuracy row for a strategy in one service table.
    pub fn row(rows: &[StrategyAccuracy], strategy: ClassifierKind) -> Option<StrategyAccuracy> {
        rows.iter().copied().find(|r| r.strategy == strategy)
    }
}

struct Tally {
    correct: usize,
    decided: usize,
    total: usize,
}

impl Tally {
    fn new() -> Self {
        Tally {
            correct: 0,
            decided: 0,
            total: 0,
        }
    }

    fn record(&mut self, verdict: Classification, truth_third: bool) {
        self.total += 1;
        match verdict {
            Classification::Unknown => {}
            Classification::ThirdParty => {
                self.decided += 1;
                if truth_third {
                    self.correct += 1;
                }
            }
            Classification::Private => {
                self.decided += 1;
                if !truth_third {
                    self.correct += 1;
                }
            }
        }
    }

    fn into_row(self, strategy: ClassifierKind) -> StrategyAccuracy {
        StrategyAccuracy {
            strategy,
            accuracy: if self.decided == 0 {
                1.0
            } else {
                self.correct as f64 / self.decided as f64
            },
            coverage: if self.total == 0 {
                0.0
            } else {
                self.decided as f64 / self.total as f64
            },
            pairs: self.total,
        }
    }
}

/// Ground truth for one (site, candidate host) pair: is the candidate a
/// third party? `None` when ownership of the candidate is unknown to
/// the registry (shouldn't happen in generated worlds).
fn truth_third(world: &World, site: &DomainName, candidate: &DomainName) -> Option<bool> {
    world.entities.same_owner(site, candidate).map(|same| !same)
}

/// Validates all strategies on a random sample of `sample_size` sites
/// (the paper used 100).
pub fn validate_world(world: &World, sample_size: usize, seed: u64) -> ValidationReport {
    let listings = world.listings();
    // lint:allow(seed-flow) — validation is a sampling root: the audit
    // sample is defined by its own seed, domain-separated from world
    // streams by the constant, so the stream is minted here.
    let mut rng = DetRng::new(seed ^ 0x7A11DA7E);
    let indices = rng.sample_indices(listings.len(), sample_size);

    let mut client = world.client();
    let mut dns_tallies: HashMap<ClassifierKind, Tally> = ClassifierKind::ALL
        .iter()
        .map(|&k| (k, Tally::new()))
        .collect();
    let mut ca_tallies: HashMap<ClassifierKind, Tally> = ClassifierKind::ALL
        .iter()
        .map(|&k| (k, Tally::new()))
        .collect();
    let mut cdn_tallies: HashMap<ClassifierKind, Tally> = ClassifierKind::ALL
        .iter()
        .map(|&k| (k, Tally::new()))
        .collect();

    // Validation reuses the site-level concentration signal; build it
    // from the full population like the pipeline does.
    let resolver = client.resolver_mut();
    let observations: Vec<Option<dns::DnsObservation>> = listings
        .iter()
        .map(|l| dns::observe_site(resolver, &l.domain))
        .collect();
    let concentration = dns::ns_concentration(&observations, &world.psl);
    let threshold = world.config.concentration_threshold();

    for &i in &indices {
        let listing = &listings[i];
        let report = Crawler::crawl(
            &mut client,
            &listing.domain,
            &listing.document_hosts,
            listing.https,
        );
        let san = report.certificate.as_ref().map(|c| c.san.clone());

        // DNS pairs.
        if let Some(obs) = &observations[i] {
            for (host, ns_soa) in obs.ns_hosts.iter().zip(&obs.ns_soas) {
                let Some(truth) = truth_third(world, &listing.domain, host) else {
                    continue;
                };
                let conc = world
                    .psl
                    .registrable_domain(host)
                    .and_then(|r| concentration.get(&r).copied())
                    .unwrap_or(0);
                let ev = Evidence {
                    site: &listing.domain,
                    candidate: host,
                    san: san.as_deref(),
                    site_soa: obs.site_soa.as_ref(),
                    candidate_soa: ns_soa.as_ref(),
                    concentration: Some(conc),
                    threshold,
                };
                for kind in ClassifierKind::ALL {
                    let verdict = classify(kind, &ev, &world.psl);
                    dns_tallies
                        .entry(kind)
                        .or_insert_with(Tally::new)
                        .record(verdict, truth);
                }
            }
        }

        // CA pair.
        if let Some(cert) = &report.certificate {
            if let Some(ca_host) = cert.ocsp_urls.first().map(|e| &e.host) {
                if let Some(truth) = truth_third(world, &listing.domain, ca_host) {
                    let resolver = client.resolver_mut();
                    let site_soa = Dig::new(resolver).soa_of(&listing.domain).ok();
                    let ca_soa = Dig::new(resolver).soa_of(ca_host).ok();
                    let ev = Evidence {
                        site: &listing.domain,
                        candidate: ca_host,
                        san: san.as_deref(),
                        site_soa: site_soa.as_ref(),
                        candidate_soa: ca_soa.as_ref(),
                        concentration: None,
                        threshold: usize::MAX,
                    };
                    for kind in ClassifierKind::ALL {
                        let verdict = classify(kind, &ev, &world.psl);
                        ca_tallies
                            .entry(kind)
                            .or_insert_with(Tally::new)
                            .record(verdict, truth);
                    }
                }
            }
        }

        // CDN pairs: classify the CNAME witness of each internal host.
        for host in report.hostnames() {
            if !crate::cdn::is_internal(&listing.domain, &host, san.as_deref(), &world.psl) {
                continue;
            }
            let Some(chain) = report.chain_of(&host) else {
                continue;
            };
            let Some((_, _, witness)) = world.cname_map.classify_chain_detailed(chain.iter())
            else {
                continue;
            };
            let Some(truth) = truth_third(world, &listing.domain, witness) else {
                continue;
            };
            let resolver = client.resolver_mut();
            let site_soa = Dig::new(resolver).soa_of(&listing.domain).ok();
            let witness_soa = Dig::new(resolver).soa_of(witness).ok();
            let ev = Evidence {
                site: &listing.domain,
                candidate: witness,
                san: san.as_deref(),
                site_soa: site_soa.as_ref(),
                candidate_soa: witness_soa.as_ref(),
                concentration: None,
                threshold: usize::MAX,
            };
            for kind in ClassifierKind::ALL {
                let verdict = classify(kind, &ev, &world.psl);
                cdn_tallies
                    .entry(kind)
                    .or_insert_with(Tally::new)
                    .record(verdict, truth);
            }
        }
    }

    let collect = |mut tallies: HashMap<ClassifierKind, Tally>| {
        ClassifierKind::ALL
            .iter()
            .map(|&k| tallies.remove(&k).unwrap_or_else(Tally::new).into_row(k))
            .collect::<Vec<_>>()
    };
    ValidationReport {
        dns: collect(dns_tallies),
        ca: collect(ca_tallies),
        cdn: collect(cdn_tallies),
        sample_size: indices.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webdeps_worldgen::WorldConfig;

    #[test]
    fn combined_heuristic_beats_both_strawmen() {
        let world = World::generate(WorldConfig::small(99));
        let report = validate_world(&world, 150, 1);
        assert_eq!(report.sample_size, 150);

        let combined = ValidationReport::row(&report.dns, ClassifierKind::Combined).unwrap();
        let tld = ValidationReport::row(&report.dns, ClassifierKind::TldOnly).unwrap();
        let soa = ValidationReport::row(&report.dns, ClassifierKind::SoaOnly).unwrap();
        assert!(combined.accuracy > 0.99, "combined {:?}", combined);
        assert!(
            tld.accuracy > 0.90 && tld.accuracy < 1.0,
            "TLD strawman {:?}",
            tld
        );
        assert!(
            soa.accuracy < 0.75,
            "SOA strawman should be poor: {:?}",
            soa
        );
        assert!(combined.accuracy > tld.accuracy && combined.accuracy > soa.accuracy);
        assert!(combined.coverage < 1.0, "micro-tail pairs stay undecided");

        let combined_ca = ValidationReport::row(&report.ca, ClassifierKind::Combined).unwrap();
        assert!(combined_ca.accuracy > 0.99, "CA combined {:?}", combined_ca);
        let combined_cdn = ValidationReport::row(&report.cdn, ClassifierKind::Combined).unwrap();
        assert!(
            combined_cdn.accuracy > 0.97,
            "CDN combined {:?}",
            combined_cdn
        );
    }
}
