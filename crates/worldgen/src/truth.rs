//! Ground truth.
//!
//! A [`SiteTruth`] is both the *plan* the world builder materializes into
//! zones/certs/pages and the *answer key* the validation harness scores
//! the measurement heuristics against. The measurement pipeline itself
//! must never read these — it sees only the wire.

use crate::profiles::{CaProfile, CdnProfile, DepState};
use webdeps_model::{DomainName, Rank, SiteId};

/// Ground-truth DNS assignment of one site.
#[derive(Debug, Clone)]
pub struct DnsAssignment {
    /// Dependency state.
    pub state: DepState,
    /// Third-party provider names used (catalog names), empty for
    /// private sites.
    pub providers: Vec<String>,
    /// Whether the zone's SOA carries the provider's MNAME/RNAME
    /// (provider-managed) instead of the site's own.
    pub provider_soa: bool,
    /// Whether the site's *private* nameservers live under a separate
    /// alias domain owned by the same entity (the youtube/google-style
    /// TLD-strawman false positive).
    pub alias_ns: bool,
}

/// Ground-truth CDN assignment of one site.
#[derive(Debug, Clone)]
pub struct CdnAssignment {
    /// Dependency state.
    pub state: CdnProfile,
    /// CDN names used (catalog names for third-party; the conglomerate's
    /// private CDN name for [`CdnProfile::Private`]).
    pub cdns: Vec<String>,
}

/// Ground-truth CA assignment of one site.
#[derive(Debug, Clone)]
pub struct CaAssignment {
    /// Dependency state.
    pub state: CaProfile,
    /// Issuing CA name (catalog name, or the conglomerate's private CA).
    pub ca: Option<String>,
}

/// Complete ground truth for one website in one snapshot.
#[derive(Debug, Clone)]
pub struct SiteTruth {
    /// Stable universe index (identity across snapshots).
    pub universe: usize,
    /// Identifier within this snapshot's world.
    pub id: SiteId,
    /// Rank in this snapshot's list.
    pub rank: Rank,
    /// Registrable domain.
    pub domain: DomainName,
    /// Conglomerate membership (index into
    /// [`crate::providers::CONGLOMERATES`]), when the site belongs to a
    /// multi-property organization.
    pub conglomerate: Option<usize>,
    /// DNS assignment.
    pub dns: DnsAssignment,
    /// CDN assignment.
    pub cdn: CdnAssignment,
    /// CA assignment.
    pub ca: CaAssignment,
}

impl SiteTruth {
    /// Whether the site serves HTTPS in this snapshot.
    pub fn https(&self) -> bool {
        self.ca.state.is_https()
    }

    /// The document hosts a browser would discover, in priority order.
    pub fn document_hosts(&self) -> Vec<DomainName> {
        match self.cdn.state {
            CdnProfile::None => vec![self.domain.clone()],
            CdnProfile::Private | CdnProfile::SingleThird => {
                // lint:allow(panic) — "www" is a valid DNS label by construction
                vec![self.domain.child("www").expect("valid label")]
            }
            CdnProfile::Multi => vec![
                // lint:allow(panic) — "www" and "www2" are valid DNS labels by construction
                self.domain.child("www").expect("valid label"),
                self.domain.child("www2").expect("valid label"),
            ],
        }
    }
}

/// One row of the public site list (the Alexa-equivalent input to the
/// measurement pipeline — wire-discoverable information only).
#[derive(Debug, Clone)]
pub struct SiteListing {
    /// Site identifier.
    pub id: SiteId,
    /// Popularity rank.
    pub rank: Rank,
    /// Registrable domain.
    pub domain: DomainName,
    /// Document endpoints, in the order a browser would discover them.
    pub document_hosts: Vec<DomainName>,
    /// Whether the site answers on HTTPS.
    pub https: bool,
}

/// Full answer key for a generated world.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Per-site truths, indexed by [`SiteId`].
    pub sites: Vec<SiteTruth>,
}

impl GroundTruth {
    /// Truth for one site.
    pub fn site(&self, id: SiteId) -> &SiteTruth {
        &self.sites[id.index()]
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the world is empty.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The public site list (what the measurement pipeline is given).
    pub fn listings(&self) -> Vec<SiteListing> {
        self.sites
            .iter()
            .map(|s| SiteListing {
                id: s.id,
                rank: s.rank,
                domain: s.domain.clone(),
                document_hosts: s.document_hosts(),
                https: s.https(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webdeps_model::name::dn;

    fn truth(cdn_state: CdnProfile, ca_state: CaProfile) -> SiteTruth {
        SiteTruth {
            universe: 0,
            id: SiteId(0),
            rank: Rank(1),
            domain: dn("site-0.com"),
            conglomerate: None,
            dns: DnsAssignment {
                state: DepState::SingleThird,
                providers: vec!["Cloudflare".into()],
                provider_soa: true,
                alias_ns: false,
            },
            cdn: CdnAssignment {
                state: cdn_state,
                cdns: vec![],
            },
            ca: CaAssignment {
                state: ca_state,
                ca: None,
            },
        }
    }

    #[test]
    fn document_hosts_follow_cdn_state() {
        assert_eq!(
            truth(CdnProfile::None, CaProfile::NoHttps).document_hosts(),
            vec![dn("site-0.com")]
        );
        assert_eq!(
            truth(CdnProfile::SingleThird, CaProfile::NoHttps).document_hosts(),
            vec![dn("www.site-0.com")]
        );
        assert_eq!(
            truth(CdnProfile::Multi, CaProfile::NoHttps).document_hosts(),
            vec![dn("www.site-0.com"), dn("www2.site-0.com")]
        );
    }

    #[test]
    fn listings_expose_only_public_facts() {
        let gt = GroundTruth {
            sites: vec![truth(CdnProfile::None, CaProfile::ThirdNoStaple)],
        };
        let ls = gt.listings();
        assert_eq!(ls.len(), 1);
        assert!(ls[0].https);
        assert_eq!(ls[0].domain, dn("site-0.com"));
        assert!(!gt.is_empty());
        assert_eq!(gt.len(), 1);
    }
}
