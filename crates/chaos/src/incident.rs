//! Scripted incident timelines.
//!
//! An [`Incident`] is everything the replay engine needs: a DNS-layer
//! [`FaultSchedule`], a list of scripted PKI state changes
//! ([`PkiPhase`]), and the probing options. The two constructors here
//! encode the paper's §2 incidents as data; tests and the CLI replay
//! them, and new what-ifs are just new `Incident` values.

use crate::replay::ReplayOptions;
use webdeps_dns::fault::Degradation;
use webdeps_dns::{FaultSchedule, SimTime};
use webdeps_model::CaId;
use webdeps_tls::OcspFault;
use webdeps_worldgen::World;

/// A scripted change of a CA's OCSP state at a point in the timeline:
/// `Some(fault)` injects, `None` clears (the CA "fixes it").
#[derive(Debug, Clone)]
pub struct PkiPhase {
    /// When the change takes effect (inclusive).
    pub from: SimTime,
    /// The affected CA (pre-resolved so replays cannot fail mid-run).
    pub ca: CaId,
    /// The fault to install, or `None` to restore correct behavior.
    pub fault: Option<OcspFault>,
}

/// A complete scripted incident.
#[derive(Debug, Clone)]
pub struct Incident {
    /// Short identifier (used in report tables and CLI output).
    pub name: String,
    /// One-line description of what is being replayed.
    pub description: String,
    /// DNS-layer fault timeline.
    pub schedule: FaultSchedule,
    /// PKI state changes, in ascending `from` order.
    pub pki_phases: Vec<PkiPhase>,
    /// How the replay engine probes the population.
    pub options: ReplayOptions,
}

/// Mirai-Dyn, October 21 2016: two attack waves against Dyn's
/// authoritative fleet with a recovery gap between them.
///
/// Wave one is *partial* — heavy packet loss that client retries
/// sometimes punch through (the real morning wave degraded rather than
/// silenced Dyn) — wave two is a hard outage. DNS caching stays on, so
/// availability lags the fault edges by up to one TTL, exactly as
/// measured during the incident. Returns `None` when the world has no
/// Dyn (the 2016 snapshot always does).
pub fn dyn_two_wave(world: &World, seed: u64) -> Option<Incident> {
    let dyn_entity = world.provider_entity("Dyn")?;
    let schedule = FaultSchedule::seeded(seed)
        // Wave 1 (hours 2–4): 95 % per-attempt loss. With default
        // retries (3 rounds × 2 Dyn servers) roughly a quarter of
        // queries still land.
        .fail_entity_during(
            dyn_entity,
            SimTime(7_200),
            SimTime(14_400),
            Degradation::Loss { probability: 0.95 },
        )
        // Recovery gap (hours 4–6): mitigation holds, traffic drains.
        // Wave 2 (hours 6–9): the second, harder wave.
        .fail_entity_during(
            dyn_entity,
            SimTime(21_600),
            SimTime(32_400),
            Degradation::Down,
        );
    Some(Incident {
        name: "dyn".to_string(),
        description: "Mirai-Dyn 2016: two-wave attack on Dyn's authoritative DNS".to_string(),
        schedule,
        pki_phases: Vec::new(),
        options: ReplayOptions {
            tick_secs: 1_800,
            horizon_secs: 39_600,
            hard_fail: false,
            probe_caching: true,
            serve_stale: false,
            max_sites: 0,
        },
    })
}

/// GlobalSign, October 13 2016: a cross-certificate revocation error
/// makes the CA's OCSP responders mark perfectly good certificates
/// revoked. The misconfiguration is fixed after one day — but clients
/// cache OCSP responses for their full validity window, so hard-fail
/// clients keep rejecting non-stapling sites for nearly a week after
/// the fix ("persisted for over a week"). Returns `None` when the world
/// has no GlobalSign CA.
pub fn globalsign_stale_week(world: &World) -> Option<Incident> {
    let ca = world.pki.ca_by_name("GlobalSign")?.id;
    Some(Incident {
        name: "globalsign".to_string(),
        description: "GlobalSign 2016: stale revocation cached long past the server-side fix"
            .to_string(),
        schedule: FaultSchedule::empty(),
        pki_phases: vec![
            PkiPhase {
                from: SimTime::ZERO,
                ca,
                fault: Some(OcspFault::MarksEverythingRevoked),
            },
            PkiPhase {
                from: SimTime(86_400),
                ca,
                fault: None,
            },
        ],
        options: ReplayOptions {
            tick_secs: 43_200,
            horizon_secs: 864_000,
            hard_fail: true,
            probe_caching: true,
            serve_stale: false,
            max_sites: 0,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use webdeps_worldgen::incidents::{dyn_incident_world, globalsign_incident_world};

    #[test]
    fn canonical_incidents_construct_on_their_fixture_worlds() {
        let dyn_world = dyn_incident_world(71, 300);
        let incident = dyn_two_wave(&dyn_world, 42).expect("2016 world has Dyn");
        assert_eq!(incident.schedule.phases().len(), 2);
        assert_eq!(incident.schedule.last_end(), SimTime(32_400));
        assert!(
            incident.options.horizon_secs > 32_400,
            "replay sees recovery"
        );

        let gs_world = globalsign_incident_world(71, 300);
        let incident = globalsign_stale_week(&gs_world).expect("world has GlobalSign");
        assert!(incident.schedule.is_empty(), "a pure PKI incident");
        assert_eq!(incident.pki_phases.len(), 2);
        assert!(incident.options.hard_fail);
    }
}
