//! OCSP responses and responder failure modes.

use webdeps_dns::SimTime;

/// Revocation status of a certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CertStatus {
    /// Not revoked.
    Good,
    /// Revoked by the issuer.
    Revoked,
    /// The responder does not know the certificate.
    Unknown,
}

/// A signed OCSP response (modulo the crypto, which the analysis never
/// inspects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OcspResponse {
    /// Serial of the certificate the response covers.
    pub serial: u64,
    /// Asserted status.
    pub status: CertStatus,
    /// Production time.
    pub produced_at: SimTime,
    /// End of the response's validity window — clients may cache the
    /// response until then, which is why the GlobalSign misconfiguration
    /// outlived its server-side fix by days.
    pub next_update: SimTime,
}

impl OcspResponse {
    /// Whether the response is still usable at `now`.
    pub fn fresh_at(&self, now: SimTime) -> bool {
        now < self.next_update
    }
}

/// Injected responder misbehavior, per CA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OcspFault {
    /// The GlobalSign-2016 failure: the responder answers, but marks
    /// *every* certificate revoked.
    MarksEverythingRevoked,
    /// The responder is unreachable (DDoS on the CA infrastructure).
    Unreachable,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freshness_window() {
        let r = OcspResponse {
            serial: 1,
            status: CertStatus::Good,
            produced_at: SimTime(0),
            next_update: SimTime(3600),
        };
        assert!(r.fresh_at(SimTime(0)));
        assert!(r.fresh_at(SimTime(3599)));
        assert!(!r.fresh_at(SimTime(3600)));
    }
}
