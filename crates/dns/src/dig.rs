//! `dig`-style measurement queries.
//!
//! The paper's scripts drive `dig` three ways: `dig NS <site>` to list a
//! site's advertised nameservers, `dig SOA <host>` to find the authority
//! of a name (falling back to the SOA in the authority section of a
//! negative answer), and repeated `dig CNAME` to uncover the alias chain
//! a CDN on-ramp creates. [`Dig`] packages those flows over a
//! [`Resolver`].

use crate::record::{RecordType, Soa};
use crate::resolver::{ResolveError, Resolver};
use webdeps_model::DomainName;

/// Upper bound on manually chased CNAME chains.
const MAX_CHAIN: usize = 8;

/// Measurement-oriented query facade.
pub struct Dig<'a, 'n> {
    resolver: &'a mut Resolver<'n>,
}

impl<'a, 'n> Dig<'a, 'n> {
    /// Wraps a resolver.
    pub fn new(resolver: &'a mut Resolver<'n>) -> Self {
        Dig { resolver }
    }

    /// `dig NS <name>`: the advertised nameserver set of `name`'s zone.
    /// Returns an empty vector when the name exists without NS records.
    #[must_use]
    pub fn ns(&mut self, name: &DomainName) -> Result<Vec<DomainName>, ResolveError> {
        match self.resolver.resolve_with(name, RecordType::Ns, |res| {
            res.answers
                .iter()
                .filter_map(|rr| rr.data.as_ns().cloned())
                .collect()
        }) {
            Ok(hosts) => Ok(hosts),
            Err(ResolveError::NoData { .. }) => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    /// `dig SOA <name>` with the standard fallback: when the name is not
    /// a zone apex (NODATA) or does not exist (NXDOMAIN), the SOA of the
    /// enclosing zone arrives in the authority section — which is what
    /// the paper's heuristics compare.
    #[must_use]
    pub fn soa_of(&mut self, name: &DomainName) -> Result<Soa, ResolveError> {
        match self.resolver.resolve_with(name, RecordType::Soa, |res| {
            res.answers.iter().find_map(|rr| rr.data.as_soa().cloned())
        }) {
            Ok(Some(soa)) => Ok(soa),
            Ok(None) => Err(ResolveError::NoData {
                name: name.clone(),
                soa: Soa::standard(name.clone(), name.clone(), 0),
            }),
            Err(ResolveError::NoData { soa, .. }) | Err(ResolveError::NxDomain { soa, .. }) => {
                Ok(soa)
            }
            Err(e) => Err(e),
        }
    }

    /// Repeated `dig CNAME`: the full alias chain starting at `host`
    /// (empty when the host is not an alias). Chains longer than the
    /// chase limit error out like a looping resolver would.
    #[must_use]
    pub fn cname_chain(&mut self, host: &DomainName) -> Result<Vec<DomainName>, ResolveError> {
        let mut chain = Vec::new();
        let mut current = host.clone();
        for _ in 0..MAX_CHAIN {
            match self
                .resolver
                .resolve_with(&current, RecordType::Cname, |res| {
                    res.answers
                        .iter()
                        .find_map(|rr| rr.data.as_cname().cloned())
                }) {
                Ok(target) => {
                    let Some(target) = target else {
                        return Ok(chain);
                    };
                    if chain.contains(&target) || target == *host {
                        return Err(ResolveError::ChainTooLong { name: target });
                    }
                    chain.push(target.clone());
                    current = target;
                }
                // End of chain: the final name has no CNAME.
                Err(ResolveError::NoData { .. }) | Err(ResolveError::NxDomain { .. }) => {
                    return Ok(chain)
                }
                Err(e) => return Err(e),
            }
        }
        Err(ResolveError::ChainTooLong { name: current })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::DnsNetwork;
    use crate::record::RecordData;
    use crate::zone::Zone;
    use std::net::Ipv4Addr;
    use webdeps_model::name::dn;
    use webdeps_model::EntityId;

    fn network() -> DnsNetwork {
        let mut b = DnsNetwork::builder();
        let s0 = b.add_server(
            dn("ns1.provider.net"),
            Ipv4Addr::new(192, 0, 2, 1),
            EntityId(0),
        );

        let mut site = Zone::new(
            dn("shop.com"),
            Soa::standard(dn("ns1.provider.net"), dn("hostmaster.provider.net"), 3),
        );
        site.add(dn("shop.com"), RecordData::Ns(dn("ns1.provider.net")));
        site.add(dn("shop.com"), RecordData::Ns(dn("ns2.provider.net")));
        site.add(
            dn("static.shop.com"),
            RecordData::Cname(dn("cust-9.edge.cdnco.net")),
        );
        b.add_zone(site, vec![s0]);

        let mut provider = Zone::new(
            dn("provider.net"),
            Soa::standard(dn("ns1.provider.net"), dn("hostmaster.provider.net"), 9),
        );
        provider.add(dn("provider.net"), RecordData::Ns(dn("ns1.provider.net")));
        provider.add(
            dn("ns1.provider.net"),
            RecordData::A(Ipv4Addr::new(192, 0, 2, 1)),
        );
        b.add_zone(provider, vec![s0]);

        let mut cdn = Zone::new(
            dn("cdnco.net"),
            Soa::standard(dn("ns1.cdnco.net"), dn("ops.cdnco.net"), 7),
        );
        cdn.add(
            dn("cust-9.edge.cdnco.net"),
            RecordData::Cname(dn("pop-3.cdnco.net")),
        );
        cdn.add(
            dn("pop-3.cdnco.net"),
            RecordData::A(Ipv4Addr::new(203, 0, 113, 9)),
        );
        b.add_zone(cdn, vec![s0]);

        b.build()
    }

    #[test]
    fn dig_ns_lists_advertised_servers() {
        let net = network();
        let mut r = Resolver::new(&net);
        let ns = Dig::new(&mut r).ns(&dn("shop.com")).unwrap();
        assert_eq!(ns, vec![dn("ns1.provider.net"), dn("ns2.provider.net")]);
    }

    #[test]
    fn dig_ns_on_plain_host_is_empty() {
        let net = network();
        let mut r = Resolver::new(&net);
        assert_eq!(
            Dig::new(&mut r).ns(&dn("static.shop.com")).unwrap(),
            Vec::<DomainName>::new()
        );
    }

    #[test]
    fn soa_of_apex_and_of_inner_host_match() {
        let net = network();
        let mut r = Resolver::new(&net);
        let mut dig = Dig::new(&mut r);
        let apex = dig.soa_of(&dn("provider.net")).unwrap();
        let inner = dig.soa_of(&dn("ns1.provider.net")).unwrap();
        let missing = dig.soa_of(&dn("nope.provider.net")).unwrap();
        assert_eq!(
            apex, inner,
            "authority-section fallback must find the same SOA"
        );
        assert_eq!(apex, missing);
        assert_eq!(apex.rname, dn("hostmaster.provider.net"));
    }

    #[test]
    fn soa_differs_across_authorities() {
        let net = network();
        let mut r = Resolver::new(&net);
        let mut dig = Dig::new(&mut r);
        let site = dig.soa_of(&dn("shop.com")).unwrap();
        let cdn = dig.soa_of(&dn("pop-3.cdnco.net")).unwrap();
        assert_ne!(site, cdn);
    }

    #[test]
    fn cname_chain_is_chased_to_the_end() {
        let net = network();
        let mut r = Resolver::new(&net);
        let chain = Dig::new(&mut r)
            .cname_chain(&dn("static.shop.com"))
            .unwrap();
        assert_eq!(
            chain,
            vec![dn("cust-9.edge.cdnco.net"), dn("pop-3.cdnco.net")]
        );
        // A terminal host has an empty chain.
        let chain = Dig::new(&mut r)
            .cname_chain(&dn("pop-3.cdnco.net"))
            .unwrap();
        assert!(chain.is_empty());
    }

    #[test]
    fn cname_chain_surfaces_outages() {
        let net = network();
        let mut r = Resolver::new(&net);
        r.disable_cache();
        r.set_faults(crate::fault::FaultPlan::healthy().fail_entity(EntityId(0)));
        assert!(Dig::new(&mut r)
            .cname_chain(&dn("static.shop.com"))
            .is_err());
    }
}
