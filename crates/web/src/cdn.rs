//! Content delivery networks.

use std::collections::BTreeMap;
use webdeps_model::{CdnId, DomainName, EntityId};

/// One CDN: an entity operating edge infrastructure that customers point
/// their hostnames at via CNAME on-ramps.
#[derive(Debug, Clone)]
pub struct Cdn {
    /// Identifier within the directory.
    pub id: CdnId,
    /// Display name, e.g. `"Akamai"`.
    pub name: String,
    /// Owning organization.
    pub entity: EntityId,
    /// Domains under which customer CNAMEs live, e.g.
    /// `akamaiedge.net` — a CNAME chain containing a host under one of
    /// these identifies the CDN.
    pub cname_suffixes: Vec<DomainName>,
    /// Whether the provider advertises itself as a CDN. The paper only
    /// treats providers that do as CDNs; hosting companies with
    /// CDN-shaped CNAMEs are excluded by this flag.
    pub advertises_as_cdn: bool,
}

impl Cdn {
    /// Whether `host` is a customer on-ramp or edge host of this CDN.
    pub fn matches_host(&self, host: &DomainName) -> bool {
        self.cname_suffixes
            .iter()
            .any(|s| host.is_equal_or_subdomain_of(s))
    }
}

/// Registry of all CDNs in a world.
#[derive(Debug, Clone, Default)]
pub struct CdnDirectory {
    cdns: Vec<Cdn>,
    by_name: BTreeMap<String, CdnId>,
}

impl CdnDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a CDN.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        entity: EntityId,
        cname_suffixes: Vec<DomainName>,
        advertises_as_cdn: bool,
    ) -> CdnId {
        let name = name.into();
        let id = CdnId::from_index(self.cdns.len());
        let prev = self.by_name.insert(name.clone(), id);
        assert!(prev.is_none(), "CDN {name} registered twice");
        self.cdns.push(Cdn {
            id,
            name,
            entity,
            cname_suffixes,
            advertises_as_cdn,
        });
        id
    }

    /// Looks up a CDN by id.
    pub fn get(&self, id: CdnId) -> &Cdn {
        &self.cdns[id.index()]
    }

    /// Looks up a CDN by display name.
    pub fn by_name(&self, name: &str) -> Option<&Cdn> {
        self.by_name.get(name).map(|&id| self.get(id))
    }

    /// All CDNs.
    pub fn iter(&self) -> impl Iterator<Item = &Cdn> {
        self.cdns.iter()
    }

    /// Number of registered CDNs.
    pub fn len(&self) -> usize {
        self.cdns.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.cdns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webdeps_model::name::dn;

    #[test]
    fn registration_and_lookup() {
        let mut dir = CdnDirectory::new();
        let ak = dir.register("Akamai", EntityId(1), vec![dn("akamaiedge.net")], true);
        assert_eq!(dir.get(ak).name, "Akamai");
        assert_eq!(dir.by_name("Akamai").unwrap().id, ak);
        assert!(dir.by_name("Nope").is_none());
        assert_eq!(dir.len(), 1);
        assert!(!dir.is_empty());
    }

    #[test]
    fn host_matching_uses_suffixes() {
        let mut dir = CdnDirectory::new();
        let ak = dir.register(
            "Akamai",
            EntityId(1),
            vec![dn("akamaiedge.net"), dn("akamai.net")],
            true,
        );
        let cdn = dir.get(ak);
        assert!(cdn.matches_host(&dn("e1234.a.akamaiedge.net")));
        assert!(cdn.matches_host(&dn("a1.g.akamai.net")));
        assert!(!cdn.matches_host(&dn("notakamai.net")));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_name_panics() {
        let mut dir = CdnDirectory::new();
        dir.register("X", EntityId(0), vec![dn("x.net")], true);
        dir.register("X", EntityId(1), vec![dn("y.net")], true);
    }
}
