//! Website → CDN measurement (§3.3).
//!
//! From a crawl report: identify *internal* resources (registrable-
//! domain match or SAN evidence — the yimg/yahoo case), follow their
//! CNAME chains, match against the self-populated CNAME-to-CDN map, and
//! classify each detected (site, CDN) pair as private or third-party.
//! External resources (fonts, ads, widgets) are deliberately ignored no
//! matter how CDN-flavoured their chains look.

use crate::classify::{san_covers, Classification, ClassifierKind, ClassifyCache, Evidence};
use crate::dataset::{ProviderKey, SiteCdnMeasurement};
use std::collections::HashMap;
use webdeps_dns::{Dig, Resolver};
use webdeps_model::{DomainName, PublicSuffixList};
use webdeps_web::{CnameToCdnMap, CrawlReport};
use webdeps_worldgen::profiles::CdnProfile;

/// Whether a page resource host is *internal* to the site: same
/// registrable domain, or covered by the site certificate's SAN list.
pub fn is_internal(
    site: &DomainName,
    host: &DomainName,
    san: Option<&[DomainName]>,
    psl: &PublicSuffixList,
) -> bool {
    if psl.same_registrable_domain(site, host) {
        return true;
    }
    if let Some(san) = san {
        if san_covers(san, host, psl) {
            return true;
        }
    }
    false
}

/// Classifies a crawled site's CDN usage.
pub fn classify_site(
    report: &CrawlReport,
    cname_map: &CnameToCdnMap,
    resolver: &mut Resolver<'_>,
    psl: &PublicSuffixList,
) -> SiteCdnMeasurement {
    classify_site_cached(report, cname_map, resolver, psl, &mut ClassifyCache::new())
}

/// [`classify_site`] with a caller-owned registrable-domain memo (the
/// per-shard hot path); results are independent of cache state.
pub fn classify_site_cached(
    report: &CrawlReport,
    cname_map: &CnameToCdnMap,
    resolver: &mut Resolver<'_>,
    psl: &PublicSuffixList,
    cache: &mut ClassifyCache,
) -> SiteCdnMeasurement {
    let san = report.certificate.as_ref().map(|c| c.san.as_slice());
    let site_soa = Dig::new(resolver).soa_of(&report.site).ok();

    // Distinct (cdn key) → (classification, witness cname).
    let mut detected: HashMap<ProviderKey, Classification> = HashMap::new();
    let mut order: Vec<ProviderKey> = Vec::new();

    for host in report.hostnames() {
        let internal = cache.same_registrable_domain(&report.site, &host, psl)
            || san.is_some_and(|san| cache.san_covers(san, &host, psl));
        if !internal {
            continue;
        }
        let Some(chain) = report.chain_of(&host) else {
            continue;
        };
        let Some((suffix, _, witness)) = cname_map.classify_chain_detailed(chain.iter()) else {
            continue;
        };
        let key = cache.provider_key(suffix, psl);

        let witness_soa = Dig::new(resolver).soa_of(witness).ok();
        let ev = Evidence {
            site: &report.site,
            candidate: witness,
            san,
            site_soa: site_soa.as_ref(),
            candidate_soa: witness_soa.as_ref(),
            concentration: None,
            threshold: usize::MAX,
        };
        let class = cache.classify(ClassifierKind::Combined, &ev, psl);
        match detected.entry(key.clone()) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(class);
                order.push(key);
            }
            std::collections::hash_map::Entry::Occupied(mut o) => {
                // Private evidence for any witness identifies the owner.
                if class == Classification::Private {
                    o.insert(class);
                }
            }
        }
    }

    let cdns: Vec<(ProviderKey, Classification)> = order
        .into_iter()
        .map(|k| (k.clone(), detected[&k]))
        .collect();

    let state = if cdns.is_empty() {
        Some(CdnProfile::None)
    } else if cdns.iter().any(|(_, c)| *c == Classification::Unknown) {
        None
    } else {
        let third = cdns
            .iter()
            .filter(|(_, c)| *c == Classification::ThirdParty)
            .count();
        Some(match third {
            0 => CdnProfile::Private,
            1 => CdnProfile::SingleThird,
            _ => CdnProfile::Multi,
        })
    };

    SiteCdnMeasurement { cdns, state }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webdeps_model::name::dn;
    use webdeps_web::Crawler;
    use webdeps_worldgen::{World, WorldConfig};

    #[test]
    fn internal_detection_rules() {
        let psl = PublicSuffixList::builtin();
        let site = dn("shop.com");
        assert!(is_internal(&site, &dn("static.shop.com"), None, &psl));
        assert!(!is_internal(&site, &dn("static.fontserve.com"), None, &psl));
        let san = vec![dn("shop.com"), dn("*.shopimg.net")];
        assert!(is_internal(&site, &dn("a.shopimg.net"), Some(&san), &psl));
        assert!(!is_internal(&site, &dn("a.shopimg.net"), None, &psl));
    }

    fn measure(world: &World, idx: usize) -> SiteCdnMeasurement {
        let listing = &world.listings()[idx];
        let mut client = world.client();
        let report = Crawler::crawl(
            &mut client,
            &listing.domain,
            &listing.document_hosts,
            listing.https,
        );
        let mut resolver = world.resolver();
        classify_site(&report, &world.cname_map, &mut resolver, &world.psl)
    }

    #[test]
    fn single_cdn_site_detected_as_critical() {
        let world = World::generate(WorldConfig::small(51));
        let idx = world
            .truth
            .sites
            .iter()
            .position(|s| s.cdn.state == CdnProfile::SingleThird && s.https())
            .expect("world has single-CDN sites");
        let m = measure(&world, idx);
        assert_eq!(m.state, Some(CdnProfile::SingleThird), "cdns: {:?}", m.cdns);
        assert_eq!(m.cdns.len(), 1);
    }

    #[test]
    fn multi_cdn_site_detected_as_redundant() {
        let world = World::generate(WorldConfig::small(51));
        let idx = world
            .truth
            .sites
            .iter()
            .position(|s| s.cdn.state == CdnProfile::Multi && s.https())
            .expect("world has multi-CDN sites");
        let m = measure(&world, idx);
        assert_eq!(m.state, Some(CdnProfile::Multi), "cdns: {:?}", m.cdns);
        assert!(m.cdns.len() >= 2);
    }

    #[test]
    fn no_cdn_site_not_polluted_by_external_resources() {
        let world = World::generate(WorldConfig::small(51));
        // Every generated page references external content hosts that sit
        // on CDNs; none of them may produce a (site, CDN) pair.
        let idx = world
            .truth
            .sites
            .iter()
            .position(|s| s.cdn.state == CdnProfile::None && s.https())
            .expect("world has CDN-free sites");
        let m = measure(&world, idx);
        assert_eq!(m.state, Some(CdnProfile::None));
        assert!(m.cdns.is_empty());
    }

    #[test]
    fn private_cdn_recognized_via_san() {
        let world = World::generate(WorldConfig::small(51));
        let idx = world
            .truth
            .sites
            .iter()
            .position(|s| s.cdn.state == CdnProfile::Private && s.https());
        let Some(idx) = idx else {
            // Small worlds may not draw a private-CDN site; skip silently
            // (covered at pipeline scale).
            return;
        };
        let m = measure(&world, idx);
        assert_eq!(m.state, Some(CdnProfile::Private), "cdns: {:?}", m.cdns);
    }
}
