//! Incident fixture worlds.
//!
//! Canned [`World`] configurations for the paper's §2 incident replays,
//! so the chaos engine, the report generator, and the test suite all
//! replay against the *same* snapshot shapes: the Mirai-Dyn attack hit
//! the December 2016 web (Fastly's DNS still rode Dyn exclusively), the
//! GlobalSign OCSP error is replayed against the HTTPS-heavy 2020 web.

use crate::build::World;
use crate::config::{SnapshotYear, WorldConfig};

/// The world the Mirai-Dyn attack hit: a 2016 snapshot, where Dyn is a
/// major provider and Fastly's DNS depends on it exclusively.
pub fn dyn_incident_world(seed: u64, n_sites: usize) -> World {
    World::generate(WorldConfig {
        seed,
        n_sites,
        year: SnapshotYear::Y2016,
    })
}

/// The world the GlobalSign OCSP misconfiguration hit, approximated by
/// the 2020 snapshot (higher HTTPS adoption makes the CA dependency
/// bite harder; the incident mechanics are year-independent).
pub fn globalsign_incident_world(seed: u64, n_sites: usize) -> World {
    World::generate(WorldConfig {
        seed,
        n_sites,
        year: SnapshotYear::Y2020,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_have_the_incident_preconditions() {
        let dyn_world = dyn_incident_world(71, 500);
        assert_eq!(dyn_world.config.year, SnapshotYear::Y2016);
        assert!(
            dyn_world.provider_entity("Dyn").is_some(),
            "the Dyn replay needs Dyn in the catalog"
        );

        let gs_world = globalsign_incident_world(71, 500);
        assert_eq!(gs_world.config.year, SnapshotYear::Y2020);
        assert!(
            gs_world.pki.ca_by_name("GlobalSign").is_some(),
            "the GlobalSign replay needs the CA"
        );
    }
}
