//! Integration tests for the parallel incremental driver: cache
//! replay, content-hash invalidation, signature-table invalidation,
//! and jobs-count determinism — all against a throwaway workspace
//! built in a temp directory.

use std::fs;
use std::path::PathBuf;
use webdeps_lint::{drive, Config, DriveOptions};

const ROOT_MANIFEST: &str = "[workspace]\nmembers = [\"crates/a\", \"crates/b\"]\n";

const LIB_A: &str = "\
//! Fixture crate a.

/// Doubles a value.
pub fn double(x: u32) -> u32 {
    x * 2
}
";

const LIB_B: &str = "\
//! Fixture crate b.

/// Triples a value.
pub fn triple(x: u32) -> u32 {
    x * 3
}
";

/// Body-only edit: same signatures, different content hash.
const LIB_B_EDITED: &str = "\
//! Fixture crate b.

/// Quadruples a value.
pub fn triple(x: u32) -> u32 {
    x * 4
}
";

/// Signature edit: adds a `Result`-returning fn, changing the
/// workspace signature table every other file's rules depend on.
const LIB_B_WITH_RESULT: &str = "\
//! Fixture crate b.

/// Triples a value.
pub fn triple(x: u32) -> u32 {
    x * 3
}

/// Fallible conversion.
#[must_use]
pub fn parse_positive(x: i64) -> Result<u32, String> {
    u32::try_from(x).map_err(|_| \"negative\".to_string())
}
";

/// Crate a discarding crate b's `Result` — the cross-file case only
/// the workspace signature table can catch.
const LIB_A_DROPS: &str = "\
//! Fixture crate a.

/// Doubles a value.
pub fn double(x: u32) -> u32 {
    let _ = parse_positive(9);
    x * 2
}
";

fn crate_manifest(name: &str) -> String {
    format!("[package]\nname = \"{name}\"\nversion = \"0.1.0\"\nedition = \"2021\"\n")
}

fn mk_workspace(tag: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("webdeps-lint-driver-{}-{tag}", std::process::id()));
    fs::remove_dir_all(&root).ok();
    for c in ["a", "b"] {
        fs::create_dir_all(root.join(format!("crates/{c}/src"))).expect("mkdir");
        fs::write(
            root.join(format!("crates/{c}/Cargo.toml")),
            crate_manifest(c),
        )
        .expect("write manifest");
    }
    fs::write(root.join("Cargo.toml"), ROOT_MANIFEST).expect("write root manifest");
    fs::write(root.join("crates/a/src/lib.rs"), LIB_A).expect("write a");
    fs::write(root.join("crates/b/src/lib.rs"), LIB_B).expect("write b");
    root
}

#[test]
fn incremental_cache_replays_and_invalidates() {
    let root = mk_workspace("incremental");
    let cfg = Config::default();
    let opts = DriveOptions {
        jobs: 1,
        cache_path: Some(root.join("cache.json")),
        baseline_path: None,
    };

    // Cold: everything analyzed.
    let cold = drive(&root, &cfg, &opts).expect("cold drive");
    assert_eq!((cold.analyzed, cold.cached), (5, 0)); // 3 manifests + 2 sources
    assert!(cold.report.is_clean(), "{}", cold.report.render_json());

    // Warm: everything replayed, report byte-identical.
    let warm = drive(&root, &cfg, &opts).expect("warm drive");
    assert_eq!((warm.analyzed, warm.cached), (0, 5));
    assert_eq!(cold.report.render_json(), warm.report.render_json());

    // Body-only edit: only the touched file re-analyzes.
    fs::write(root.join("crates/b/src/lib.rs"), LIB_B_EDITED).expect("edit b");
    let touched = drive(&root, &cfg, &opts).expect("touched drive");
    assert_eq!((touched.analyzed, touched.cached), (1, 4));

    // Signature edit: the sig table changes, so *every* file's rule
    // outcome is stale even where content hashes still match.
    fs::write(root.join("crates/b/src/lib.rs"), LIB_B_WITH_RESULT).expect("sig edit b");
    let sig = drive(&root, &cfg, &opts).expect("sig drive");
    assert_eq!((sig.analyzed, sig.cached), (5, 0));

    // And the new steady state replays fully again.
    let warm2 = drive(&root, &cfg, &opts).expect("warm2 drive");
    assert_eq!((warm2.analyzed, warm2.cached), (0, 5));

    // Cross-file dataflow through the cache: a discards b's Result.
    fs::write(root.join("crates/a/src/lib.rs"), LIB_A_DROPS).expect("edit a");
    let dropped = drive(&root, &cfg, &opts).expect("dropped drive");
    assert_eq!((dropped.analyzed, dropped.cached), (1, 4));
    assert!(
        dropped
            .report
            .violations
            .iter()
            .any(|v| v.rule == "result-dropped" && v.file == "crates/a/src/lib.rs"),
        "{}",
        dropped.report.render_json()
    );

    fs::remove_dir_all(&root).ok();
}

#[test]
fn jobs_count_never_changes_the_report() {
    let root = mk_workspace("jobs");
    let cfg = Config::default();
    let mk = |jobs| DriveOptions {
        jobs,
        cache_path: None,
        baseline_path: None,
    };
    let serial = drive(&root, &cfg, &mk(1)).expect("serial drive");
    let wide = drive(&root, &cfg, &mk(4)).expect("parallel drive");
    let auto = drive(&root, &cfg, &mk(0)).expect("auto drive");
    assert_eq!(serial.report.render_json(), wide.report.render_json());
    assert_eq!(serial.report.render_json(), auto.report.render_json());
    fs::remove_dir_all(&root).ok();
}

#[test]
fn real_workspace_lints_without_error() {
    // The repo's own sources are the largest parser corpus available:
    // the full pass must succeed (no panics, no I/O errors) and scan
    // a non-trivial number of files.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = webdeps_lint::lint_workspace(&root, &Config::default()).expect("workspace lint");
    assert!(
        report.files_scanned > 50,
        "scanned {}",
        report.files_scanned
    );
}
