//! Chaos-engine benchmarks: per-tick availability sweeps of the
//! incident-replay engine at population scale, plus the campaign's
//! randomized schedule generator.

use std::hint::black_box;
use webdeps_bench::harness::Harness;
use webdeps_chaos::{campaign, dyn_two_wave, replay, ReplayOptions};
use webdeps_core::outage::probe_site;
use webdeps_dns::fault::Degradation;
use webdeps_dns::{FaultSchedule, SimTime};
use webdeps_worldgen::incidents::dyn_incident_world;

/// One tick of the replay engine probes every listed site; 10 000 sites
/// is the scale the sweep benchmark times.
const SWEEP_SITES: usize = 10_000;

fn chaos_benches(h: &mut Harness) {
    let world = dyn_incident_world(42, SWEEP_SITES);
    let listings = world.listings();

    let mut group = h.benchmark_group("chaos/tick");
    group.sample_size(10);

    // The hot loop: one full per-tick availability sweep over 10k sites
    // with an active entity fault, cache-warm (the replay steady state).
    group.bench_function("per_tick_sweep_10k_sites", |b| {
        let dyn_entity = world.provider_entity("Dyn").expect("2016 world has Dyn");
        let schedule = FaultSchedule::seeded(42).fail_entity_during(
            dyn_entity,
            SimTime(0),
            SimTime(u64::MAX),
            Degradation::Loss { probability: 0.5 },
        );
        let mut client = world.client();
        client.set_schedule(schedule);
        b.iter(|| {
            let mut up = 0usize;
            for l in &listings {
                if probe_site(&mut client, &l.document_hosts, l.https) {
                    up += 1;
                }
            }
            black_box(up)
        });
    });
    group.finish();

    let mut group = h.benchmark_group("chaos/replay");
    group.sample_size(10);

    // A truncated Dyn replay end to end (every tick, 1k-site probe).
    group.bench_function("dyn_two_wave_1k_sites", |b| {
        let mut incident = dyn_two_wave(&world, 42).expect("2016 world has Dyn");
        incident.options = ReplayOptions {
            max_sites: 1_000,
            ..incident.options
        };
        b.iter(|| black_box(replay(&world, &incident).min_availability()));
    });

    group.bench_function("random_schedule_generation", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(campaign::random_schedule(&world, seed))
        });
    });
    group.finish();
}

fn main() {
    let mut h = Harness::new("chaos");
    chaos_benches(&mut h);
    h.finish();
}
