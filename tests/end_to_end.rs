//! End-to-end integration: generate → measure → analyze, checking the
//! paper's eleven observations at test scale (shape, not absolute
//! numbers — the small world is top-band heavy).

use std::sync::OnceLock;
use webdeps::core::{
    ca_figure, cdn_figure, dns_figure, providers_for_coverage, DepGraph, MetricOptions, Metrics,
};
use webdeps::measure::{measure_world, MeasurementDataset};
use webdeps::model::ServiceKind;
use webdeps::worldgen::WorldPair;

struct Ctx {
    pair: WorldPair,
    ds16: MeasurementDataset,
    ds20: MeasurementDataset,
}

fn ctx() -> &'static Ctx {
    static CTX: OnceLock<Ctx> = OnceLock::new();
    CTX.get_or_init(|| {
        let pair = WorldPair::generate(1234, 3_000);
        let ds16 = measure_world(&pair.y2016);
        let ds20 = measure_world(&pair.y2020);
        Ctx { pair, ds16, ds20 }
    })
}

/// Observation 1: DNS third-party and critical dependencies are higher
/// for less popular websites.
#[test]
fn obs1_dns_dependency_grows_down_the_ranking() {
    let fig = dns_figure(&ctx().ds20);
    assert!(fig[0].third_party < fig[3].third_party);
    assert!(fig[0].critical < fig[3].critical);
}

/// Observation 3: of CDN users, popular sites are less critically
/// dependent (more redundancy at the top).
#[test]
fn obs3_cdn_criticality_grows_down_the_ranking() {
    let fig = cdn_figure(&ctx().ds20);
    assert!(fig[0].critical_of_users < fig[3].critical_of_users);
    assert!(
        fig[3].third_party_of_users > 90.0,
        "nearly all CDN use is third-party"
    );
}

/// Observation 5: stapling is low everywhere; critical CA dependency is
/// slightly lower at the top.
#[test]
fn obs5_stapling_low_everywhere() {
    let fig = ca_figure(&ctx().ds20);
    for row in &fig {
        assert!(row.stapled_of_https < 35.0, "{row:?}");
    }
    assert!(
        fig[0].https > fig[3].https,
        "HTTPS adoption is higher at the top"
    );
}

/// Observation 7: a handful of providers critically serve most sites.
#[test]
fn obs7_single_points_of_failure_exist() {
    let ds = &ctx().ds20;
    let graph = DepGraph::from_dataset(ds);
    let metrics = Metrics::new(&graph);
    let n = ds.sites.len() as f64;
    let opts = MetricOptions::direct_only();
    for kind in [ServiceKind::Dns, ServiceKind::Ca] {
        let ranking = metrics.ranking(kind, &opts);
        let top3: usize = ranking.iter().take(3).map(|s| s.impact).sum();
        assert!(
            top3 as f64 / n > 0.25,
            "{kind}: top-3 impact should cover a large share, got {top3}"
        );
    }
}

/// Observation 8: DNS and CA concentration increased 2016 → 2020.
#[test]
fn obs8_concentration_increased_for_dns_and_ca() {
    let c = ctx();
    let dns16 = providers_for_coverage(&c.ds16, ServiceKind::Dns, 0.8);
    let dns20 = providers_for_coverage(&c.ds20, ServiceKind::Dns, 0.8);
    assert!(
        dns20 < dns16,
        "fewer DNS providers needed for 80% in 2020: {dns16} → {dns20}"
    );
    let ca16 = providers_for_coverage(&c.ds16, ServiceKind::Ca, 0.8);
    let ca20 = providers_for_coverage(&c.ds20, ServiceKind::Ca, 0.8);
    assert!(ca20 <= ca16, "CA consolidation: {ca16} → {ca20}");
}

/// Observations 9/10: indirect dependencies amplify top-provider impact.
#[test]
fn obs9_10_indirect_amplification() {
    let ds = &ctx().ds20;
    let graph = DepGraph::from_dataset(ds);
    let metrics = Metrics::new(&graph);

    let dnsme = graph
        .provider("dnsmadeeasy.com", ServiceKind::Dns)
        .expect("observed");
    let direct = metrics.impact(dnsme, &MetricOptions::direct_only());
    let with_ca = metrics.impact(
        dnsme,
        &MetricOptions::only(ServiceKind::Ca, ServiceKind::Dns),
    );
    assert!(
        with_ca > 5 * direct.max(1),
        "DNSMadeEasy: {direct} → {with_ca}"
    );

    let incapsula = graph
        .provider("incapdns.net", ServiceKind::Cdn)
        .expect("observed");
    let direct = metrics.impact(incapsula, &MetricOptions::direct_only());
    let with_ca = metrics.impact(
        incapsula,
        &MetricOptions::only(ServiceKind::Ca, ServiceKind::Cdn),
    );
    assert!(
        with_ca > 3 * direct.max(1),
        "Incapsula: {direct} → {with_ca}"
    );
}

/// Observation 11: the CDN→DNS hop barely moves major DNS providers.
#[test]
fn obs11_cdn_dns_hop_changes_little() {
    let ds = &ctx().ds20;
    let graph = DepGraph::from_dataset(ds);
    let metrics = Metrics::new(&graph);
    let n = ds.sites.len() as f64;
    let ranking = metrics.ranking(ServiceKind::Dns, &MetricOptions::direct_only());
    let mut gain = 0usize;
    for score in ranking.iter().take(5) {
        let node = graph
            .provider(score.key.as_str(), ServiceKind::Dns)
            .unwrap();
        gain += metrics.impact(
            node,
            &MetricOptions::only(ServiceKind::Cdn, ServiceKind::Dns),
        ) - score.impact;
    }
    assert!(
        (gain as f64) / n < 0.05,
        "top-5 DNS gained {gain} sites via CDN hop"
    );
}

/// The 89% headline: almost everyone critically depends on *some*
/// third-party service.
#[test]
fn headline_critical_dependency_share() {
    let ds = &ctx().ds20;
    let n = ds.sites.len();
    let critical = ds
        .sites
        .iter()
        .filter(|s| {
            s.dns.state.is_some_and(|st| st.is_critical())
                || s.cdn.state.is_some_and(|st| st.is_critical())
                || s.ca.state.is_some_and(|st| st.is_critical())
        })
        .count();
    let share = critical as f64 / n as f64;
    assert!(
        share > 0.6,
        "critical share {share} (paper: 0.89 at 100K scale)"
    );
}

/// Dead sites from the 2016 list really are gone in 2020.
#[test]
fn dead_sites_unresolvable_in_2020() {
    let c = ctx();
    let domains20: std::collections::HashSet<&str> =
        c.ds20.sites.iter().map(|s| s.domain.as_str()).collect();
    let mut resolver = c.pair.y2020.resolver();
    let mut dead_checked = 0;
    for s in &c.ds16.sites {
        if !domains20.contains(s.domain.as_str()) {
            assert!(
                resolver
                    .resolve(&s.domain, webdeps::dns::RecordType::A)
                    .is_err(),
                "{} should not resolve in 2020",
                s.domain
            );
            dead_checked += 1;
            if dead_checked >= 20 {
                break;
            }
        }
    }
    assert!(dead_checked > 0, "churn must exist");
}
