//! Property and unit tests for the interprocedural layer: call-graph
//! construction and taint propagation must never panic on parser-soup
//! input, must be deterministic, and must propagate hazards across
//! call chains and cycles the way the rule catalog promises.

use webdeps_lint::interproc::{self, CallGraph};
use webdeps_lint::scan::FileCtx;
use webdeps_lint::{parser, Config};
use webdeps_testkit::{check, gen};

/// Fragments biased toward what summary extraction and call resolution
/// inspect: fn decls, impl blocks, method/path/bare calls, hazard
/// sites, and interprocedural suppressions. Random concatenation
/// yields plausible-but-broken Rust.
const FRAGMENTS: &[&str] = &[
    "fn helper",
    "pub fn api",
    "impl Widget",
    "impl Trait for Widget",
    "(x: u32)",
    "(&self)",
    "-> u64",
    "{",
    "}",
    ";",
    "\n",
    "helper(x)",
    "self.refresh()",
    "Self::helper(x)",
    "Widget::new()",
    "x.unwrap()",
    "panic!(\"no\")",
    "std::time::Instant::now()",
    "SystemTime",
    "DetRng::new(7)",
    "Xoshiro256pp::seed_from_u64(",
    "let m: HashMap<u32, u32> =",
    "for k in m",
    "m.keys()",
    ".sort()",
    "v[0]",
    "let _ =",
    "#[cfg(test)]",
    "where",
    "for",
    "::",
    "<T>",
    "// lint:allow(panic-reachable) — soup reason",
    "// lint:allow(taint-escape, seed-flow-transitive) — soup reason",
];

fn soup() -> gen::Gen<String> {
    gen::vec_of(gen::usize_range(0, FRAGMENTS.len() - 1), 0, 96).map(|idxs| {
        idxs.into_iter()
            .map(|i| FRAGMENTS[i])
            .collect::<Vec<_>>()
            .join(" ")
    })
}

/// The full interprocedural pipeline over one soup file: extraction,
/// graph construction, propagation, and rule evaluation.
fn pipeline(src: &str) -> (Vec<String>, Vec<String>) {
    let cfg = Config::default();
    let ctx = FileCtx::new("crates/web/src/soup.rs", src);
    let parsed = parser::parse(&ctx.code);
    let summaries = interproc::extract(&ctx, &parsed);
    let mut allows: Vec<(String, interproc::InterprocAllow)> = summaries
        .allows
        .into_iter()
        .map(|a| ("crates/web/src/soup.rs".to_string(), a))
        .collect();
    let graph = CallGraph::build(summaries.fns);
    let (violations, suppressed) = interproc::evaluate(&graph, &cfg, &mut allows);
    (
        violations.iter().map(|v| format!("{v:?}")).collect(),
        suppressed.iter().map(|s| format!("{s:?}")).collect(),
    )
}

#[test]
fn graph_and_propagation_never_panic_on_parser_soup() {
    check("interproc_soup_never_panics", &soup(), |src| {
        let src = src.clone();
        std::panic::catch_unwind(move || pipeline(&src))
            .map_err(|_| "interproc pipeline panicked".to_string())?;
        Ok(())
    });
}

#[test]
fn graph_and_propagation_are_deterministic_on_parser_soup() {
    check("interproc_soup_deterministic", &soup(), |src| {
        if pipeline(src) != pipeline(src) {
            return Err("two pipelines over identical input disagreed".to_string());
        }
        Ok(())
    });
}

/// Lints one string as a web-crate library file (every rule in force).
fn lint(src: &str) -> webdeps_lint::Report {
    webdeps_lint::lint_source("crates/web/src/lib.rs", src, &Config::default())
}

fn rules_of(report: &webdeps_lint::Report) -> Vec<&str> {
    report.violations.iter().map(|v| v.rule.as_str()).collect()
}

#[test]
fn panic_propagates_across_a_three_hop_chain() {
    let report = lint(
        "fn sink(v: Option<u32>) -> u32 { v.unwrap() }\n\
         fn middle(v: Option<u32>) -> u32 { sink(v) }\n\
         pub fn api(v: Option<u32>) -> u32 { middle(v) }\n",
    );
    // The site itself (per-file) plus the pub API (interprocedural);
    // the private `middle` is not an API surface and stays unflagged.
    assert_eq!(rules_of(&report), ["panic", "panic-reachable"]);
    let v = &report.violations[1];
    assert!(v.message.contains("via api -> middle -> sink"), "{v:?}");
    assert_eq!(v.line, 3);
}

#[test]
fn recursion_cycles_converge_and_propagate() {
    let report = lint(
        "fn even(n: u32) -> bool { if n == 0 { true } else { odd(n - 1) } }\n\
         fn odd(n: u32) -> bool { if n == 0 { false } else { even(n - 1) } }\n\
         fn base() -> u32 { panic!(\"boom\") }\n\
         pub fn parity(n: u32) -> bool { even(base() + n) }\n",
    );
    assert!(rules_of(&report).contains(&"panic-reachable"), "{report:?}");
}

#[test]
fn method_and_assoc_calls_resolve_conservatively() {
    let report = lint(
        "pub struct W { v: Vec<u32> }\n\
         impl W {\n\
             fn raw(&self) -> u32 { self.v[0] + self.v.first().copied().unwrap() }\n\
             pub fn head(&self) -> u32 { self.raw() }\n\
         }\n\
         pub fn make() -> u32 { W::fresh().head() }\n\
         impl W {\n\
             fn fresh() -> W { W { v: Vec::new() } }\n\
         }\n",
    );
    let rules = rules_of(&report);
    // `head` reaches `raw` through a method call; `make` reaches it
    // through `W::fresh().head()`.
    assert_eq!(
        rules.iter().filter(|r| **r == "panic-reachable").count(),
        2,
        "{report:?}"
    );
}

#[test]
fn wall_clock_taint_only_flags_value_returning_apis() {
    let report = lint(
        "fn tick() -> std::time::Instant { std::time::Instant::now() }\n\
         pub fn measure() -> u64 { let t = tick(); 0 }\n\
         pub fn fire_and_forget() { let t = tick(); }\n",
    );
    let taints: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == "taint-escape")
        .collect();
    assert_eq!(taints.len(), 1, "{report:?}");
    assert_eq!(taints[0].line, 2, "only the value-returning API escapes");
}

#[test]
fn interproc_allow_on_the_api_suppresses_and_is_counted() {
    let report = lint(
        "fn mint() -> u64 { let mut r = DetRng::new(9); r.next_u64() }\n\
         // lint:allow(seed-flow-transitive) — test stream, draws never reach reports\n\
         pub fn draw() -> u64 { mint() }\n",
    );
    assert!(
        !rules_of(&report).contains(&"seed-flow-transitive"),
        "{report:?}"
    );
    assert!(
        report
            .suppressed
            .iter()
            .any(|s| s.violation.rule == "seed-flow-transitive"),
        "suppression must be recorded: {report:?}"
    );
}

#[test]
fn unused_interproc_allow_is_reported_centrally() {
    let report = lint(
        "// lint:allow(panic-reachable) — nothing here can actually panic\n\
         pub fn calm() -> u32 { 1 }\n",
    );
    assert!(
        report
            .unused_allows
            .iter()
            .any(|(f, _)| f == "crates/web/src/lib.rs"),
        "unused interproc allow must be reported: {report:?}"
    );
}
