//! Per-rule unit tests on inline source fixtures, exercised through
//! the same `lint_source` entry point the workspace driver uses.

use webdeps_lint::{lint_source, Config, Report};

fn report(path: &str, src: &str) -> Report {
    lint_source(path, src, &Config::default())
}

/// Rule names of every unsuppressed violation, in report order.
fn rules_hit(path: &str, src: &str) -> Vec<String> {
    report(path, src)
        .violations
        .iter()
        .map(|v| v.rule.clone())
        .collect()
}

// ---- panic ----

#[test]
fn panic_flags_unwrap_expect_and_panic_in_library_code() {
    let src = r#"
pub fn f(v: Option<u32>) -> u32 {
    v.unwrap()
}
pub fn g(v: Option<u32>) -> u32 {
    v.expect("set")
}
pub fn h() {
    panic!("boom");
}
"#;
    assert_eq!(
        rules_hit("crates/model/src/x.rs", src),
        vec!["panic", "panic", "panic"]
    );
}

#[test]
fn panic_reports_file_line_and_snippet() {
    let src = "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n";
    let r = report("crates/model/src/x.rs", src);
    assert_eq!(r.violations.len(), 1);
    let v = &r.violations[0];
    assert_eq!(v.file, "crates/model/src/x.rs");
    assert_eq!(v.line, 2);
    assert_eq!(v.snippet, "v.unwrap()");
}

#[test]
fn panic_ignores_cfg_test_modules_and_test_fns() {
    let src = r#"
pub fn ok() -> u32 { 1 }

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
"#;
    assert!(rules_hit("crates/model/src/x.rs", src).is_empty());
}

#[test]
fn panic_ignores_test_trees_binaries_and_bench() {
    let src = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    assert!(rules_hit("crates/model/tests/t.rs", src).is_empty());
    assert!(rules_hit("tests/t.rs", src).is_empty());
    assert!(rules_hit("crates/reports/src/bin/tool.rs", src).is_empty());
    assert!(rules_hit("crates/reports/src/main.rs", src).is_empty());
    assert!(rules_hit("crates/bench/src/lib.rs", src).is_empty());
    assert!(rules_hit("crates/model/examples/e.rs", src).is_empty());
}

#[test]
fn panic_does_not_flag_cfg_not_test_items() {
    let src = r#"
#[cfg(not(test))]
pub fn f(v: Option<u32>) -> u32 {
    v.unwrap()
}
"#;
    assert_eq!(rules_hit("crates/model/src/x.rs", src), vec!["panic"]);
}

// ---- wall-clock ----

#[test]
fn wall_clock_flags_instant_and_system_time() {
    let src = "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n";
    let hits = rules_hit("crates/measure/src/x.rs", src);
    assert!(hits.iter().all(|r| r == "wall-clock"));
    assert!(!hits.is_empty());

    let src = "pub fn now() -> std::time::SystemTime { std::time::SystemTime::now() }\n";
    assert!(!rules_hit("crates/measure/src/x.rs", src).is_empty());
}

#[test]
fn wall_clock_exempts_bench_and_simulated_clock() {
    let src = "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n";
    assert!(rules_hit("crates/bench/src/lib.rs", src).is_empty());
    assert!(rules_hit("crates/dns/src/clock.rs", src).is_empty());
}

// ---- env-rand ----

#[test]
fn env_rand_flags_env_reads_in_library_code() {
    let src = "pub fn seed() -> Option<String> { std::env::var(\"SEED\").ok() }\n";
    assert_eq!(rules_hit("crates/worldgen/src/x.rs", src), vec!["env-rand"]);
}

#[test]
fn env_rand_flags_ambient_randomness() {
    let src =
        "pub fn r() { let _s: std::collections::hash_map::RandomState = Default::default(); }\n";
    let hits = rules_hit("crates/worldgen/src/x.rs", src);
    assert!(hits.contains(&"env-rand".to_string()));
}

#[test]
fn env_rand_exempts_binaries_and_tests() {
    let src = "pub fn seed() -> Option<String> { std::env::var(\"SEED\").ok() }\n";
    assert!(rules_hit("crates/reports/src/bin/tool.rs", src).is_empty());
    assert!(rules_hit("crates/worldgen/tests/t.rs", src).is_empty());
}

// ---- hash-iter ----

#[test]
fn hash_iter_flags_unsorted_method_iteration() {
    let src = r#"
use std::collections::HashMap;
pub fn list(m: &HashMap<String, u32>) -> Vec<String> {
    let mut out = Vec::new();
    out.extend(m.keys().cloned());
    out
}
"#;
    assert_eq!(rules_hit("crates/core/src/x.rs", src), vec!["hash-iter"]);
}

#[test]
fn hash_iter_flags_for_loop_over_hash_collection() {
    let src = r#"
use std::collections::HashMap;
pub fn list(m: &HashMap<String, u32>) -> Vec<String> {
    let mut out = Vec::new();
    for k in m {
        out.push(k.0.clone());
    }
    out
}
"#;
    assert_eq!(rules_hit("crates/core/src/x.rs", src), vec!["hash-iter"]);
}

#[test]
fn hash_iter_accepts_adjacent_sort() {
    let src = r#"
use std::collections::HashMap;
pub fn list(m: &HashMap<String, u32>) -> Vec<String> {
    let mut out: Vec<String> = m.keys().cloned().collect();
    out.sort();
    out
}
"#;
    assert!(rules_hit("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn hash_iter_accepts_btree_recollect_and_reductions() {
    let src = r#"
use std::collections::{BTreeMap, HashMap};
pub fn ordered(m: &HashMap<String, u32>) -> BTreeMap<String, u32> {
    m.iter().map(|(k, v)| (k.clone(), *v)).collect::<BTreeMap<_, _>>()
}
pub fn total(m: &HashMap<String, u32>) -> u32 {
    m.values().sum()
}
"#;
    assert!(rules_hit("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn hash_iter_ignores_btree_collections() {
    let src = r#"
use std::collections::BTreeMap;
pub fn list(m: &BTreeMap<String, u32>) -> Vec<String> {
    let mut out = Vec::new();
    for k in m.keys() {
        out.push(k.clone());
    }
    out
}
"#;
    assert!(rules_hit("crates/core/src/x.rs", src).is_empty());
}

// ---- dbg / todo ----

#[test]
fn dbg_flags_debug_macros_even_in_tests() {
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        dbg!(42);
    }
}
"#;
    assert_eq!(rules_hit("crates/model/src/x.rs", src), vec!["dbg"]);
    let src = "pub fn f() { todo!() }\npub fn g() { unimplemented!() }\n";
    let hits = rules_hit("crates/model/src/x.rs", src);
    assert_eq!(hits.iter().filter(|r| *r == "dbg").count(), 2);
}

#[test]
fn todo_requires_issue_reference() {
    let src = "// TODO: make this faster\npub fn f() {}\n";
    assert_eq!(rules_hit("crates/model/src/x.rs", src), vec!["todo"]);
    let src = "// TODO(#12): make this faster\npub fn f() {}\n";
    assert!(rules_hit("crates/model/src/x.rs", src).is_empty());
    let src = "// FIXME broken on leap days\npub fn f() {}\n";
    assert_eq!(rules_hit("crates/model/src/x.rs", src), vec!["todo"]);
}

// ---- layering (source side) ----

#[test]
fn layering_flags_upward_crate_references() {
    let src = "pub fn f() { let _ = webdeps_reports::VERSION; }\n";
    assert_eq!(rules_hit("crates/model/src/x.rs", src), vec!["layering"]);
}

#[test]
fn layering_accepts_declared_edges_and_testkit_in_tests() {
    let src = "pub fn f() { let _ = webdeps_model::VERSION; }\n";
    assert!(rules_hit("crates/dns/src/x.rs", src).is_empty());
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let _ = webdeps_testkit::Config::default();
    }
}
"#;
    assert!(rules_hit("crates/dns/src/x.rs", src).is_empty());
}

#[test]
fn layering_rejects_testkit_outside_test_code() {
    let src = "pub fn f() { let _ = webdeps_testkit::Config::default(); }\n";
    assert_eq!(rules_hit("crates/dns/src/x.rs", src), vec!["layering"]);
}

// ---- suppressions ----

#[test]
fn trailing_allow_suppresses_and_is_counted() {
    let src = "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap() // lint:allow(panic) — checked by caller\n}\n";
    let r = report("crates/model/src/x.rs", src);
    assert!(r.is_clean());
    assert_eq!(r.suppressed.len(), 1);
    assert_eq!(r.suppressed[0].violation.rule, "panic");
    assert_eq!(r.suppressed[0].reason, "checked by caller");
    assert!(r.unused_allows.is_empty());
}

#[test]
fn standalone_allow_covers_next_statement() {
    let src = "pub fn f(v: Option<u32>) -> u32 {\n    // lint:allow(panic) — checked by caller\n    v.unwrap()\n}\n";
    let r = report("crates/model/src/x.rs", src);
    assert!(r.is_clean());
    assert_eq!(r.suppressed.len(), 1);
}

#[test]
fn file_level_allow_covers_whole_file() {
    let src = "// lint:allow-file(panic) — generator invariants abort loudly\npub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\npub fn g(v: Option<u32>) -> u32 {\n    v.expect(\"set\")\n}\n";
    let r = report("crates/model/src/x.rs", src);
    assert!(r.is_clean());
    assert_eq!(r.suppressed.len(), 2);
}

#[test]
fn allow_does_not_leak_to_other_rules_or_lines() {
    let src = "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap() // lint:allow(hash-iter) — wrong rule named\n}\n";
    let r = report("crates/model/src/x.rs", src);
    assert_eq!(r.violations.len(), 1);
    assert_eq!(r.violations[0].rule, "panic");
    // The directive silenced nothing.
    assert_eq!(r.unused_allows.len(), 1);
}

#[test]
fn allow_syntax_flags_unknown_rules_and_missing_reasons() {
    let src = "// lint:allow(made-up-rule) — because\npub fn f() {}\n";
    assert_eq!(
        rules_hit("crates/model/src/x.rs", src),
        vec!["allow-syntax"]
    );
    let src = "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap() // lint:allow(panic)\n}\n";
    let hits = rules_hit("crates/model/src/x.rs", src);
    assert!(hits.contains(&"allow-syntax".to_string()));
}

#[test]
fn doc_comments_never_parse_as_directives() {
    let src = "/// Suppress with `// lint:allow(panic) — reason`.\npub fn f() {}\n";
    let r = report("crates/model/src/x.rs", src);
    assert!(r.is_clean());
    assert!(r.suppressed.is_empty());
    assert!(r.unused_allows.is_empty());
}

// ---- config ----

#[test]
fn disabled_rules_do_not_fire() {
    let mut cfg = Config::default();
    cfg.disabled.insert("panic".to_string());
    let src = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    let r = lint_source("crates/model/src/x.rs", src, &cfg);
    assert!(r.is_clean());
}

#[test]
fn json_report_is_well_formed_enough_to_round_trip_counts() {
    let src = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    let r = report("crates/model/src/x.rs", src);
    let json = r.render_json();
    assert!(json.contains("\"schema\": \"webdeps-lint/4\""));
    assert!(json.contains("\"rule\": \"panic\""));
    assert!(json.contains("crates/model/src/x.rs"));
}
