//! Property tests for the recursive-descent parser and the dataflow
//! rules built on it: on *any* token soup — unbalanced braces,
//! half-written closures, stray `spawn(`/`sort_by(` calls — the full
//! lint pass must neither panic nor behave nondeterministically.

use webdeps_testkit::{check, gen};

/// Fragments biased toward the constructs the parser and dataflow
/// rules inspect: fn items, return types, let bindings, closures,
/// spawns, comparator calls, and suppression directives. Random
/// concatenation yields plausible-but-broken Rust.
const FRAGMENTS: &[&str] = &[
    "fn f",
    "pub fn g",
    "(x: u32)",
    "-> Result<u32, String>",
    "-> Report",
    "{",
    "}",
    "\n",
    ";",
    "let mut acc",
    "let _ =",
    "= Vec::new()",
    "might_fail(3);",
    "return Err(e);",
    "break",
    "match x",
    "=>",
    "#[must_use]",
    "#[cfg(test)]",
    "s.spawn(",
    "std::thread::scope(|s|",
    "move ||",
    "|a, b|",
    "||",
    "a.partial_cmp(b)",
    ".sort_by(",
    ".min_by_key(",
    "DetRng::new(7)",
    "Xoshiro256pp::seed_from_u64(",
    "BTreeMap<f64,",
    "acc.push(*x)",
    "&mut acc",
    "acc += 1",
    "for x in xs",
    "if let Some(v)",
    "?",
    "..",
    "::",
    "'a",
    "r#\"raw\"#",
    "/* nested /* comment */",
    "// lint:allow(panic) — soup reason",
    "// lint:allow(result-dropped, seed-flow)",
];

fn soup() -> gen::Gen<String> {
    gen::vec_of(gen::usize_range(0, FRAGMENTS.len() - 1), 0, 96).map(|idxs| {
        idxs.into_iter()
            .map(|i| FRAGMENTS[i])
            .collect::<Vec<_>>()
            .join(" ")
    })
}

#[test]
fn full_pass_never_panics_on_parser_soup() {
    let cfg = webdeps_lint::Config::default();
    check("parser_soup_never_panics", &soup(), move |src| {
        let src = src.clone();
        let cfg = cfg.clone();
        std::panic::catch_unwind(move || {
            // A library path: every dataflow rule is in force.
            webdeps_lint::lint_source("crates/web/src/soup.rs", &src, &cfg)
        })
        .map_err(|_| "lint_source panicked".to_string())?;
        Ok(())
    });
}

#[test]
fn full_pass_is_deterministic_on_parser_soup() {
    let cfg = webdeps_lint::Config::default();
    check("parser_soup_deterministic", &soup(), move |src| {
        let a = webdeps_lint::lint_source("crates/web/src/soup.rs", src, &cfg);
        let b = webdeps_lint::lint_source("crates/web/src/soup.rs", src, &cfg);
        if a.render_json() != b.render_json() {
            return Err("two passes over identical input disagreed".to_string());
        }
        Ok(())
    });
}
