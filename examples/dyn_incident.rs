//! Replay of the October 2016 Mirai-Dyn incident — and the 2020
//! counterfactual.
//!
//! Fails Dyn's entire server fleet in the 2016 world and counts which
//! sites actually stop resolving (including the famous collateral:
//! Fastly ran its DNS on Dyn, so Fastly customers fell too). Then runs
//! the same attack against the 2020 world, where Dyn's footprint shrank
//! and Fastly added a secondary.
//!
//! ```text
//! cargo run --release --example dyn_incident
//! ```

use webdeps::core::simulate_outage;
use webdeps::worldgen::{SnapshotYear, WorldConfig, WorldPair};

fn blast_radius(world: &webdeps::worldgen::World, label: &str) {
    let result = simulate_outage(world, &["Dyn"], false).expect("Dyn exists in both snapshots");
    println!("\n== Dyn outage, {label} ==");
    println!(
        "  affected sites: {} of {} ({:.2}%)",
        result.affected.len(),
        result.total,
        100.0 * result.affected_fraction()
    );

    // Attribution: direct Dyn customers vs Fastly collateral.
    let mut direct = 0;
    let mut via_fastly = 0;
    let mut other = 0;
    for &id in &result.affected {
        let truth = world.site(id);
        if truth.dns.providers.iter().any(|p| p == "Dyn") {
            direct += 1;
        } else if truth.cdn.cdns.iter().any(|c| c == "Fastly") {
            via_fastly += 1;
        } else {
            other += 1;
        }
    }
    println!("    direct Dyn DNS customers:    {direct}");
    println!("    collateral via Fastly CDN:   {via_fastly}");
    println!("    other paths:                 {other}");
}

fn main() {
    let (seed, n) = (2016, 10_000);
    println!("generating paired 2016/2020 worlds ({n} sites, seed {seed}) …");
    let pair = WorldPair::generate(seed, n);
    assert_eq!(pair.y2016.config.year, SnapshotYear::Y2016);

    blast_radius(&pair.y2016, "December 2016 (the incident)");
    blast_radius(&pair.y2020, "January 2020 (the counterfactual)");

    println!(
        "\nThe 2020 attack is smaller on both axes: Dyn's concentration fell from ~2% to \
         ~0.6% of sites (§4.2), and Fastly — burned once — now runs Dyn alongside a \
         private secondary (§5.3), so its customers no longer fall with Dyn."
    );

    let _ = WorldConfig::paper_2016(seed); // full-scale config, for reference
}
