//! Manifest-side checks: the crate DAG over `Cargo.toml`
//! `[dependencies]` edges, dev-only crate enforcement, and the
//! hermetic-build rule that no external dependency may appear.

use crate::config::{self, Config};
use crate::diag::{Severity, Violation};

/// One dependency entry parsed out of a manifest.
#[derive(Debug, Clone)]
struct ManifestDep {
    name: String,
    line: u32,
    section: Section,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Dependencies,
    DevDependencies,
    BuildDependencies,
    /// `[workspace.dependencies]` — a version catalog, not an edge;
    /// only hermeticity applies.
    WorkspaceDeps,
    Other,
}

/// Minimal line-oriented TOML scan: tracks `[section]` headers and
/// collects `name = …` / `name.workspace = true` keys inside
/// dependency sections. Ignores everything else.
fn parse_manifest_deps(src: &str) -> Vec<ManifestDep> {
    let mut out = Vec::new();
    let mut section = Section::Other;
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            let header = line.trim_matches(|c| c == '[' || c == ']');
            section = match header {
                "workspace.dependencies" => Section::WorkspaceDeps,
                "dependencies" => Section::Dependencies,
                "dev-dependencies" => Section::DevDependencies,
                "build-dependencies" => Section::BuildDependencies,
                h if h.starts_with("dependencies.") => Section::Dependencies,
                h if h.starts_with("dev-dependencies.") => Section::DevDependencies,
                _ => Section::Other,
            };
            // `[dependencies.foo]` style declares `foo` itself.
            if let Some(name) = header
                .strip_prefix("dependencies.")
                .or_else(|| header.strip_prefix("dev-dependencies."))
            {
                out.push(ManifestDep {
                    name: name.to_string(),
                    line: idx as u32 + 1,
                    section,
                });
            }
            continue;
        }
        if section == Section::Other || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(key) = line.split('=').next() else {
            continue;
        };
        let name = key.trim().trim_matches('"');
        // `foo.workspace = true` keys carry the crate name first.
        let name = name.split('.').next().unwrap_or(name).trim();
        if name.is_empty() {
            continue;
        }
        out.push(ManifestDep {
            name: name.to_string(),
            line: idx as u32 + 1,
            section,
        });
    }
    out
}

/// Lints one `Cargo.toml`. `crate_name` is `None` for the workspace
/// root manifest (the facade package, exempt from DAG edges but not
/// from hermeticity).
pub fn lint_manifest(
    rel_path: &str,
    src: &str,
    crate_name: Option<&str>,
    cfg: &Config,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let deps = parse_manifest_deps(src);
    let snippet = |line: u32| {
        src.lines()
            .nth((line as usize).saturating_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };
    for dep in &deps {
        if dep.section == Section::Other {
            continue;
        }
        let Some(short) = dep.name.strip_prefix("webdeps-") else {
            if cfg.enabled("extern-dep") {
                out.push(Violation {
                    rule: "extern-dep".to_string(),
                    severity: Severity::Deny,
                    file: rel_path.to_string(),
                    line: dep.line,
                    message: format!(
                        "external dependency `{}`; the workspace builds hermetically with zero external crates",
                        dep.name
                    ),
                    snippet: snippet(dep.line),
                });
            }
            continue;
        };
        if !cfg.enabled("layering") {
            continue;
        }
        if dep.section == Section::Dependencies {
            if config::DEV_ONLY_CRATES.contains(&short) {
                out.push(Violation {
                    rule: "layering".to_string(),
                    severity: Severity::Deny,
                    file: rel_path.to_string(),
                    line: dep.line,
                    message: format!(
                        "`{short}` is dev-only (leaf) and may not appear in [dependencies]"
                    ),
                    snippet: snippet(dep.line),
                });
                continue;
            }
            if let Some(name) = crate_name {
                if let Some(allowed) = config::allowed_deps(name) {
                    if !allowed.contains(short) && short != name {
                        out.push(Violation {
                            rule: "layering".to_string(),
                            severity: Severity::Deny,
                            file: rel_path.to_string(),
                            line: dep.line,
                            message: format!(
                                "crate `{name}` may not depend on `{short}` (allowed: {})",
                                allowed.iter().copied().collect::<Vec<_>>().join(", ")
                            ),
                            snippet: snippet(dep.line),
                        });
                    }
                }
            }
        }
    }
    for v in &mut out {
        v.severity = cfg.severity(&v.rule);
    }
    out
}
