//! A miniature public-suffix list.
//!
//! The paper's CDN-internal-resource heuristic consults the Mozilla
//! public-suffix list to decide where the "registrable" part of a hostname
//! begins (e.g. the registrable domain of `shop.example.co.uk` is
//! `example.co.uk`, not `co.uk`). We implement the same rule semantics —
//! normal rules, wildcard rules (`*.ck`), and exception rules
//! (`!www.ck`) — over a built-in snapshot of common suffixes that covers
//! everything the synthetic world generates.

use crate::name::DomainName;
use std::collections::BTreeSet;

/// Rule set with public-suffix semantics.
///
/// ```
/// use webdeps_model::{DomainName, PublicSuffixList};
/// let psl = PublicSuffixList::builtin();
/// let host: DomainName = "shop.example.co.uk".parse().unwrap();
/// assert_eq!(psl.registrable_domain(&host).unwrap().as_str(), "example.co.uk");
/// ```
#[derive(Debug, Clone)]
pub struct PublicSuffixList {
    /// Exact suffix rules, e.g. `com`, `co.uk`.
    rules: BTreeSet<String>,
    /// Wildcard rules stored by their base, e.g. `ck` for `*.ck`.
    wildcards: BTreeSet<String>,
    /// Exception rules, e.g. `www.ck` for `!www.ck`.
    exceptions: BTreeSet<String>,
}

/// The built-in suffix snapshot. A subset of the Mozilla list: all
/// generic TLDs the synthetic world uses plus representative
/// country-code second-level suffixes.
const BUILTIN_RULES: &[&str] = &[
    "com", "net", "org", "edu", "gov", "mil", "int", "io", "co", "ai", "app", "dev", "cloud",
    "info", "biz", "us", "uk", "co.uk", "org.uk", "ac.uk", "gov.uk", "de", "fr", "nl", "ru", "cn",
    "com.cn", "net.cn", "org.cn", "jp", "co.jp", "ne.jp", "or.jp", "kr", "co.kr", "in", "co.in",
    "br", "com.br", "au", "com.au", "net.au", "org.au", "ca", "it", "es", "se", "no", "fi", "pl",
    "cz", "ch", "at", "be", "dk", "ie", "tv", "me", "cc", "ws", "goog", "health", "hospital",
    "tech", "online", "site", "store", "xyz", "club", "top", "live", "news",
];

/// Built-in wildcard rules (`*.<base>`): every label directly under the
/// base is a public suffix.
const BUILTIN_WILDCARDS: &[&str] = &["ck", "bd"];

/// Built-in exception rules (`!<name>`): these names are registrable even
/// though a wildcard rule would otherwise make them suffixes.
const BUILTIN_EXCEPTIONS: &[&str] = &["www.ck"];

impl PublicSuffixList {
    /// Builds the built-in snapshot.
    pub fn builtin() -> Self {
        Self::from_rules(
            BUILTIN_RULES.iter().copied(),
            BUILTIN_WILDCARDS.iter().copied(),
            BUILTIN_EXCEPTIONS.iter().copied(),
        )
    }

    /// Builds a list from explicit rules (used by tests and by callers who
    /// want to extend the snapshot).
    pub fn from_rules<'a>(
        rules: impl IntoIterator<Item = &'a str>,
        wildcards: impl IntoIterator<Item = &'a str>,
        exceptions: impl IntoIterator<Item = &'a str>,
    ) -> Self {
        PublicSuffixList {
            rules: rules.into_iter().map(str::to_string).collect(),
            wildcards: wildcards.into_iter().map(str::to_string).collect(),
            exceptions: exceptions.into_iter().map(str::to_string).collect(),
        }
    }

    /// Adds an exact suffix rule.
    pub fn add_rule(&mut self, suffix: &str) {
        self.rules.insert(suffix.to_ascii_lowercase());
    }

    /// Length in labels of the public suffix of `name`, or 0 when no rule
    /// matches (per the PSL algorithm the prevailing rule is then `*`,
    /// i.e. the last label is treated as the suffix).
    ///
    /// Allocation-free: the name is stored dot-joined and lowercase, so
    /// every candidate suffix is a contiguous byte slice looked up
    /// directly in the rule sets (this runs once per hostname per
    /// classification — a first-order cost at the million-site scale).
    fn suffix_label_count(&self, name: &DomainName) -> usize {
        let s = name.as_str();
        let total = s.bytes().filter(|&b| b == b'.').count() + 1;
        let mut best = 0usize;
        let mut start = 0usize;
        for idx in 0..total {
            let candidate = &s[start..];
            let len = total - idx;
            if self.exceptions.contains(candidate) {
                // Exception rule: the matched name itself is registrable,
                // so its suffix is one label shorter.
                return len - 1;
            }
            if len > best && self.rules.contains(candidate) {
                best = len;
            }
            // Wildcard `*.base` matches names with exactly one label more
            // than the base.
            let Some(dot) = candidate.find('.') else {
                break;
            };
            start += dot + 1;
            if len > best && self.wildcards.contains(&s[start..]) {
                best = len;
            }
        }
        if best == 0 {
            1 // default rule "*"
        } else {
            best
        }
    }

    /// The effective TLD (public suffix) of `name`, e.g. `co.uk` for
    /// `example.co.uk`.
    pub fn effective_tld(&self, name: &DomainName) -> DomainName {
        name.suffix(self.suffix_label_count(name))
    }

    /// The registrable domain (public suffix plus one label), or `None`
    /// when the name *is* a public suffix. This is the paper's notion of
    /// "TLD" in its TLD-matching heuristic: two hostnames belong to the
    /// same registrant when their registrable domains are equal.
    pub fn registrable_domain(&self, name: &DomainName) -> Option<DomainName> {
        let suffix_len = self.suffix_label_count(name);
        let total = name.label_count();
        if total <= suffix_len {
            None
        } else {
            Some(name.suffix(suffix_len + 1))
        }
    }

    /// Borrowed variant of [`Self::registrable_domain`] for hot paths
    /// that only compare or hash the result: the registrable domain is
    /// always a suffix slice of the (normalized) input name.
    pub fn registrable_str<'a>(&self, name: &'a DomainName) -> Option<&'a str> {
        let suffix_len = self.suffix_label_count(name);
        if name.label_count() <= suffix_len {
            None
        } else {
            Some(name.suffix_str(suffix_len + 1))
        }
    }

    /// Whether two hostnames share a registrable domain. Names that are
    /// themselves bare public suffixes never match anything.
    pub fn same_registrable_domain(&self, a: &DomainName, b: &DomainName) -> bool {
        match (self.registrable_str(a), self.registrable_str(b)) {
            (Some(ra), Some(rb)) => ra == rb,
            _ => false,
        }
    }
}

impl Default for PublicSuffixList {
    fn default() -> Self {
        Self::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::dn;

    #[test]
    fn simple_gtld() {
        let psl = PublicSuffixList::builtin();
        assert_eq!(psl.effective_tld(&dn("www.example.com")), dn("com"));
        assert_eq!(
            psl.registrable_domain(&dn("www.example.com")).unwrap(),
            dn("example.com")
        );
    }

    #[test]
    fn multi_label_suffix() {
        let psl = PublicSuffixList::builtin();
        assert_eq!(psl.effective_tld(&dn("a.b.example.co.uk")), dn("co.uk"));
        assert_eq!(
            psl.registrable_domain(&dn("a.b.example.co.uk")).unwrap(),
            dn("example.co.uk")
        );
    }

    #[test]
    fn bare_suffix_has_no_registrable_domain() {
        let psl = PublicSuffixList::builtin();
        assert_eq!(psl.registrable_domain(&dn("co.uk")), None);
        assert_eq!(psl.registrable_domain(&dn("com")), None);
    }

    #[test]
    fn unknown_tld_falls_back_to_last_label() {
        let psl = PublicSuffixList::builtin();
        assert_eq!(psl.effective_tld(&dn("example.zz")), dn("zz"));
        assert_eq!(
            psl.registrable_domain(&dn("www.example.zz")).unwrap(),
            dn("example.zz")
        );
    }

    #[test]
    fn wildcard_and_exception_rules() {
        let psl = PublicSuffixList::builtin();
        // `*.ck` makes `anything.ck` a suffix…
        assert_eq!(psl.effective_tld(&dn("shop.foo.ck")), dn("foo.ck"));
        assert_eq!(
            psl.registrable_domain(&dn("shop.foo.ck")).unwrap(),
            dn("shop.foo.ck")
        );
        // …except `www.ck`, which is registrable.
        assert_eq!(psl.registrable_domain(&dn("www.ck")).unwrap(), dn("www.ck"));
        assert_eq!(
            psl.registrable_domain(&dn("a.www.ck")).unwrap(),
            dn("www.ck")
        );
    }

    #[test]
    fn same_registrable_domain_comparisons() {
        let psl = PublicSuffixList::builtin();
        assert!(psl.same_registrable_domain(&dn("a.example.com"), &dn("b.c.example.com")));
        assert!(!psl.same_registrable_domain(&dn("a.example.com"), &dn("a.example.net")));
        assert!(!psl.same_registrable_domain(&dn("com"), &dn("com")));
    }

    #[test]
    fn registrable_str_matches_owned_variant() {
        let psl = PublicSuffixList::builtin();
        for name in [
            "www.example.com",
            "a.b.example.co.uk",
            "co.uk",
            "com",
            "shop.foo.ck",
            "www.ck",
            "a.www.ck",
            "example.zz",
        ] {
            let n = dn(name);
            assert_eq!(
                psl.registrable_str(&n),
                psl.registrable_domain(&n)
                    .as_ref()
                    .map(|d| d.as_str().to_string())
                    .as_deref(),
                "mismatch for {name}"
            );
        }
    }

    #[test]
    fn add_rule_extends_list() {
        let mut psl = PublicSuffixList::builtin();
        psl.add_rule("fancy.zz");
        assert_eq!(
            psl.registrable_domain(&dn("x.fancy.zz")).unwrap(),
            dn("x.fancy.zz")
        );
    }
}
