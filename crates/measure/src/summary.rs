//! Dataset summaries (the Table 1 / Table 2 populations).
//!
//! Library-level aggregation so downstream users get the paper's
//! headline denominators without going through the report renderers.

use crate::dataset::{MeasurementDataset, SiteMeasurement};
use std::collections::HashMap;

/// Single-snapshot population summary (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSummary {
    /// Sites in the dataset.
    pub sites: usize,
    /// Sites characterized for DNS analysis.
    pub dns_characterized: usize,
    /// Sites using at least one CDN.
    pub cdn_users: usize,
    /// CDN users whose CDN state was characterized.
    pub cdn_characterized: usize,
    /// Sites answering on HTTPS.
    pub https: usize,
    /// HTTPS sites whose CA state was characterized.
    pub ca_characterized: usize,
    /// Sites critically dependent on at least one third-party service.
    pub any_critical: usize,
}

/// Summarizes one dataset.
pub fn summarize(ds: &MeasurementDataset) -> DatasetSummary {
    DatasetSummary {
        sites: ds.sites.len(),
        dns_characterized: ds.dns_characterized().count(),
        cdn_users: ds.cdn_users().count(),
        cdn_characterized: ds
            .sites
            .iter()
            .filter(|s| s.cdn.uses_cdn() && s.cdn.state.is_some())
            .count(),
        https: ds.https_sites().count(),
        ca_characterized: ds
            .sites
            .iter()
            .filter(|s| s.ca.https && s.ca.state.is_some())
            .count(),
        any_critical: ds
            .sites
            .iter()
            .filter(|s| {
                s.dns.state.is_some_and(|st| st.is_critical())
                    || s.cdn.state.is_some_and(|st| st.is_critical())
                    || s.ca.state.is_some_and(|st| st.is_critical())
            })
            .count(),
    }
}

/// Paired-snapshot summary (paper Table 2): populations over sites that
/// exist in both datasets, joined on domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComparisonSummary {
    /// Sites present in both snapshots.
    pub joined: usize,
    /// Sites from the first snapshot that vanished.
    pub dead: usize,
    /// Joined sites DNS-characterized in both years.
    pub dns_characterized_both: usize,
    /// Joined sites using a CDN in either year.
    pub cdn_either: usize,
    /// Joined sites HTTPS in either year.
    pub https_either: usize,
}

/// Summarizes a pair of datasets, joining on site domain.
pub fn summarize_pair(
    earlier: &MeasurementDataset,
    later: &MeasurementDataset,
) -> ComparisonSummary {
    let by_domain: HashMap<&str, &SiteMeasurement> =
        later.sites.iter().map(|s| (s.domain.as_str(), s)).collect();
    let mut joined = 0;
    let mut dns_both = 0;
    let mut cdn_either = 0;
    let mut https_either = 0;
    for a in &earlier.sites {
        let Some(b) = by_domain.get(a.domain.as_str()) else {
            continue;
        };
        joined += 1;
        if a.dns.characterized() && b.dns.characterized() {
            dns_both += 1;
        }
        if a.cdn.uses_cdn() || b.cdn.uses_cdn() {
            cdn_either += 1;
        }
        if a.ca.https || b.ca.https {
            https_either += 1;
        }
    }
    ComparisonSummary {
        joined,
        dead: earlier.sites.len() - joined,
        dns_characterized_both: dns_both,
        cdn_either,
        https_either,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::measure_world;
    use webdeps_worldgen::{World, WorldConfig, WorldPair};

    #[test]
    fn summary_counts_are_consistent() {
        let world = World::generate(WorldConfig::small(57));
        let ds = measure_world(&world);
        let s = summarize(&ds);
        assert_eq!(s.sites, ds.sites.len());
        assert!(s.dns_characterized <= s.sites);
        assert!(s.cdn_characterized <= s.cdn_users);
        assert!(s.ca_characterized <= s.https);
        assert!(s.any_critical <= s.sites);
        // Ballpark: most sites are critically dependent on something.
        assert!(s.any_critical as f64 / s.sites as f64 > 0.5);
    }

    #[test]
    fn pair_summary_tracks_churn() {
        let pair = WorldPair::generate(3, 1_500);
        let ds16 = measure_world(&pair.y2016);
        let ds20 = measure_world(&pair.y2020);
        let c = summarize_pair(&ds16, &ds20);
        assert_eq!(c.joined + c.dead, ds16.sites.len());
        let death_rate = c.dead as f64 / ds16.sites.len() as f64;
        assert!((death_rate - 0.038).abs() < 0.02, "churn {death_rate}");
        assert!(c.https_either >= summarize(&ds16).https.min(c.joined));
        assert!(c.dns_characterized_both <= c.joined);
    }
}
