//! Rule catalog (with default severities), the declared crate DAG, and
//! runtime configuration.

use crate::diag::Severity;
use std::collections::{BTreeMap, BTreeSet};

/// One catalog entry: the one-line summary feeds `--list-rules` and
/// diagnostics; the rationale/example/allow fields feed `--explain`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule name, as used in directives and CLI flags.
    pub name: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// One-line invariant statement.
    pub summary: &'static str,
    /// Why the rule exists — what breaks when it is violated.
    pub rationale: &'static str,
    /// A minimal offending snippet.
    pub example: &'static str,
    /// The suppression syntax for a justified site.
    pub allow_hint: &'static str,
}

/// The rule catalog (with default severities), as shown by
/// `--list-rules` and `--explain`.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "panic",
        severity: Severity::Deny,
        summary: "no unwrap()/expect()/panic! in non-test library code; propagate typed errors instead",
        rationale: "A panic in library code aborts the whole analysis run instead of surfacing a typed, testable error. The reproduction's pipeline is expected to process millions of adversarial generated sites; any reachable panic is a denial-of-service on the measurement itself.",
        example: "let site = sites.get(&id).unwrap();",
        allow_hint: "expr.expect(\"why\"); // lint:allow(panic) — <why the site cannot fire>",
    },
    RuleInfo {
        name: "wall-clock",
        severity: Severity::Deny,
        summary: "no Instant::now/SystemTime outside crates/bench and the simulated clock (dns::clock)",
        rationale: "Reading the wall clock makes output depend on when (and how fast) the run happened, so two runs of the same seed disagree. All simulated time flows through dns::clock; only the bench harness may time things for real.",
        example: "let start = std::time::Instant::now();",
        allow_hint: "// lint:allow(wall-clock) — <why real time is required here>",
    },
    RuleInfo {
        name: "env-rand",
        severity: Severity::Deny,
        summary: "no std::env reads or ambient randomness (thread_rng/RandomState) in library code",
        rationale: "Process environment and ambient RNG state make output depend on the machine the pass runs on. Configuration is threaded through explicit parameters and all randomness through seeded DetRng streams.",
        example: "let jobs = std::env::var(\"JOBS\")?;",
        allow_hint: "// lint:allow(env-rand) — <why this process-state read is sound>",
    },
    RuleInfo {
        name: "hash-iter",
        severity: Severity::Deny,
        summary: "no HashMap/HashSet iteration feeding ordered output without an adjacent sort/BTree collect",
        rationale: "Hash-table iteration order is unspecified and changes across runs and platforms; letting it reach output makes reports nondeterministic. Sort the iterated items, collect into a BTree map/set, or reduce order-insensitively.",
        example: "for (k, v) in map.iter() { out.push(k); }",
        allow_hint: "// lint:allow(hash-iter) — <why order cannot reach output>",
    },
    RuleInfo {
        name: "layering",
        severity: Severity::Deny,
        summary: "crate dependencies must follow the declared DAG (model -> dns/tls/web -> worldgen -> measure -> core -> chaos -> reports)",
        rationale: "The crate DAG is the architecture diagram as data; an undeclared edge couples layers that must stay independently testable and makes the build order ambiguous. Both Cargo.toml edges and webdeps_* source references are checked.",
        example: "use webdeps_reports::render; // from crates/dns",
        allow_hint: "declare the edge in config::CRATE_DAG instead of suppressing",
    },
    RuleInfo {
        name: "extern-dep",
        severity: Severity::Deny,
        summary: "no external (non-workspace) dependencies in any Cargo.toml; the build is hermetic",
        rationale: "The reproduction builds offline from a lockfile-free workspace; one external crate breaks hermeticity and pins the build to a registry snapshot. Everything — RNG, JSON, property testing, the linter itself — is implemented in-tree.",
        example: "[dependencies]\nserde = \"1\"",
        allow_hint: "no suppression; vendor the functionality into a workspace crate",
    },
    RuleInfo {
        name: "dbg",
        severity: Severity::Deny,
        summary: "no dbg!/todo!/unimplemented! anywhere, including tests",
        rationale: "dbg! is debug output that pollutes reports; todo!/unimplemented! are stubs that panic at runtime. None belong in a committed tree, test code included.",
        example: "let x = dbg!(compute());",
        allow_hint: "no suppression; remove the macro before committing",
    },
    RuleInfo {
        name: "todo",
        severity: Severity::Deny,
        summary: "no TODO/FIXME comment without an issue reference like TODO(#12)",
        rationale: "An unreferenced TODO rots: nothing links it to a tracked piece of work, so it survives forever. Referencing an issue number keeps every marker actionable and auditable.",
        example: "// TODO handle the empty case",
        allow_hint: "write TODO(#<issue>): … instead of suppressing",
    },
    RuleInfo {
        name: "allow-syntax",
        severity: Severity::Deny,
        summary: "lint:allow directives must name known rules and carry a reason",
        rationale: "A suppression without a reason (or naming a rule that does not exist) silences findings without accountability. Every allow is itself linted so the suppression inventory stays reviewable.",
        example: "x.unwrap(); // lint:allow(panic)",
        allow_hint: "// lint:allow(<rule>) — <reason>; the reason is mandatory",
    },
    RuleInfo {
        name: "result-dropped",
        severity: Severity::Deny,
        summary: "no discarding (statement position or `let _ =`) of workspace calls returning Result/Report",
        rationale: "Dropping a Result silently swallows the failure path; the measurement keeps running on partial state and publishes wrong numbers. Handle the error, bind the value, or propagate with ?.",
        example: "validate_world(&world);",
        allow_hint: "stmt; // lint:allow(result-dropped) — <why the error is ignorable>",
    },
    RuleInfo {
        name: "seed-flow",
        severity: Severity::Deny,
        summary: "randomness flows through &mut DetRng; constructing an RNG outside worldgen/testkit/bench is a violation",
        rationale: "Every draw must trace back to the world seed through one stream tree, or replays diverge. Minting a fresh generator mid-pipeline forks an untracked stream whose draws no seed controls.",
        example: "let mut rng = DetRng::new(42);",
        allow_hint: "// lint:allow(seed-flow) — <why this stream root is sound>",
    },
    RuleInfo {
        name: "float-ord",
        severity: Severity::Deny,
        summary: "no f32/f64 as a sort comparator (partial_cmp) or ordered-map key; use total_cmp or integer keys",
        rationale: "Floats are not totally ordered: one NaN makes partial_cmp-based comparators panic or leaves the order unspecified. total_cmp (or an integer projection) is a drop-in total order.",
        example: "xs.sort_by(|a, b| a.partial_cmp(b).unwrap());",
        allow_hint: "// lint:allow(float-ord) — <why NaN is impossible here>",
    },
    RuleInfo {
        name: "must-use-api",
        severity: Severity::Warn,
        summary: "pub fns returning Result/Report must be #[must_use] (gradually enforced; see LINT_BASELINE.json)",
        rationale: "#[must_use] makes the compiler flag discarded calls at every call site, including ones in downstream crates the linter never sees. Without it the result-dropped rule is the only line of defense.",
        example: "pub fn validate(w: &World) -> Report { … }",
        allow_hint: "// lint:allow(must-use-api) — <why discarding is acceptable>",
    },
    RuleInfo {
        name: "thread-capture",
        severity: Severity::Deny,
        summary: "spawn closures must not mutate captured accumulators; workers return results merged after join",
        rationale: "A spawn closure mutating a captured accumulator makes output depend on thread scheduling. Workers own a chunk and return it; the merge happens after join in chunk order, so any worker count yields byte-identical output.",
        example: "s.spawn(|| acc.push(shard));",
        allow_hint: "// lint:allow(thread-capture) — <why ordering cannot leak>",
    },
    RuleInfo {
        name: "panic-reachable",
        severity: Severity::Deny,
        summary: "no pub fn (outside bench/testkit) from which an unjustified panic site in another fn is reachable",
        rationale: "Per-file rules see a panic only where it is written; helper indirection hides it from the API surface. The interprocedural pass propagates unjustified panic sites over the workspace call graph (SCC-condensed, like core's ReachIndex), so a pub fn is flagged when some callee chain can panic. Sites justified with lint:allow(panic) are considered discharged and do not propagate.",
        example: "fn helper(v: &[u32]) -> u32 { v[0] } // via pub fn api() { helper(&x) }",
        allow_hint: "pub fn api(…) // lint:allow(panic-reachable) — <why callers tolerate the panic>",
    },
    RuleInfo {
        name: "taint-escape",
        severity: Severity::Deny,
        summary: "no pub fn whose return value can carry wall-clock or hash-iteration-order taint minted in a callee",
        rationale: "Determinism hazards travel through data: a helper that reads Instant::now or iterates a HashMap in unspecified order taints every value computed from it. The interprocedural pass propagates unjustified wall-clock and unordered-iteration sites transitively; a pub fn with a non-unit return type reachable from such a site leaks the taint to callers. Indexing panics are summarized but not gated here.",
        example: "fn stamp_ms() -> u64 { SystemTime::now()… } // via pub fn report() -> u64 { stamp_ms() }",
        allow_hint: "pub fn api(…) // lint:allow(taint-escape) — <why the taint cannot reach output>",
    },
    RuleInfo {
        name: "seed-flow-transitive",
        severity: Severity::Deny,
        summary: "no pub fn (outside model/worldgen/testkit/bench) that can reach an unjustified RNG-minting site through any call chain",
        rationale: "seed-flow catches a fresh DetRng at the site that mints it; this rule catches the pub API that launders one through helpers. Any call chain from a pub fn in a seeded crate to an unjustified minting site means draws that no world seed controls. Sites justified with lint:allow(seed-flow) are stream roots and do not propagate.",
        example: "fn shuffle(xs: &mut [u32]) { let mut r = DetRng::new(7); … } // via pub fn order()",
        allow_hint: "pub fn api(…) // lint:allow(seed-flow-transitive) — <why the stream is controlled>",
    },
    RuleInfo {
        name: "lock-order-cycle",
        severity: Severity::Deny,
        summary: "no cycle in the interprocedural lock-order graph (lock A held while acquiring B, and B — possibly through calls — while acquiring A)",
        rationale: "Two threads taking the same locks in opposite orders deadlock the resident daemon exactly like the paper's correlated provider failure: one stuck worker wedges every request behind it. The concurrency pass records which lock each guard region holds, propagates acquired-lock sets callee→caller over the SCC-condensed call graph, and reports every cycle of the resulting lock-order graph with a witness chain naming the functions and call edges involved.",
        example: "fn ab(p: &Pair) { let a = p.a.lock()…; let b = p.b.lock()…; } // elsewhere: b before a",
        allow_hint: "let g = …; // lint:allow(lock-order-cycle) — <why the orders cannot interleave>",
    },
    RuleInfo {
        name: "blocking-while-locked",
        severity: Severity::Deny,
        summary: "no blocking operation (socket read/write/accept, channel recv, join, sleep) reachable while a lock guard is live",
        rationale: "A guard held across a blocking call stretches the critical section to the blocking op's worst case: one slow peer or stuck worker starves every thread waiting on the lock — the single-point-of-failure coupling the paper measures, reproduced in-process. Blocking sites propagate callee→caller, so a helper that sleeps is caught even when the guard lives in its caller. Condvar::wait is exempt: parking releases the lock.",
        example: "let g = m.lock()…; thread::sleep(tick); // guard still live",
        allow_hint: "// lint:allow(blocking-while-locked) — <why the block is bounded and safe>",
    },
    RuleInfo {
        name: "guard-across-fanout",
        severity: Severity::Deny,
        summary: "no lock guard live across a par::fan_out/fan_out_chunked call",
        rationale: "fan_out blocks until every worker joins; a guard held across it serializes the whole pool behind one lock, and a worker that needs the same lock deadlocks outright. Fan-out entry propagates callee→caller, so wrapping the call in a helper does not hide it. Split the work: read what you need, drop the guard, then fan out.",
        example: "let g = state.lock()…; let parts = fan_out(&items, jobs, work);",
        allow_hint: "// lint:allow(guard-across-fanout) — <why workers cannot touch this lock>",
    },
    RuleInfo {
        name: "lock-poison-unwrap",
        severity: Severity::Warn,
        summary: "no .lock()/.read()/.write() followed by .unwrap()/.expect(); recover from poisoning with into_inner",
        rationale: "Unwrapping a poisoned lock turns one panicked thread into a process-wide cascade: every later acquirer dies on the poison flag even though the data is intact. The workspace idiom is .unwrap_or_else(|poisoned| poisoned.into_inner()), which accepts the data and keeps serving — degraded, not down, exactly the resilience posture the paper argues for.",
        example: "let g = m.lock().unwrap();",
        allow_hint: "let g = m.lock().unwrap(); // lint:allow(lock-poison-unwrap) — <why poisoning must abort>",
    },
    RuleInfo {
        name: "atomic-ordering-mixed",
        severity: Severity::Warn,
        summary: "one atomic field, one ordering discipline: do not mix Relaxed with Acquire/Release or SeqCst accesses on the same field",
        rationale: "Mixed orderings on one field usually mean one site is wrong: either the Relaxed access silently lacks the synchronization the stronger site was written for, or the stronger site pays for ordering nothing needs. Counters are Relaxed everywhere; handshake flags are Acquire/Release (or SeqCst) everywhere. Field identity is by name, which errs toward reporting.",
        example: "TICKS.fetch_add(1, Ordering::Relaxed); … TICKS.load(Ordering::SeqCst);",
        allow_hint: "// lint:allow(atomic-ordering-mixed) — <why this site needs a different ordering>",
    },
];

/// All rule names.
pub fn rule_names() -> Vec<&'static str> {
    RULES.iter().map(|r| r.name).collect()
}

/// The catalog entry for `rule`, when it exists.
pub fn rule_info(rule: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.name == rule)
}

/// The default severity of `rule` (deny when unknown).
pub fn default_severity(rule: &str) -> Severity {
    rule_info(rule)
        .map(|r| r.severity)
        .unwrap_or(Severity::Deny)
}

/// The rules evaluated by the interprocedural pass ([`crate::interproc`])
/// rather than per file. Their suppressions are matched centrally, so
/// the per-file pass must not declare them unused.
pub const INTERPROC_RULES: &[&str] = &["panic-reachable", "seed-flow-transitive", "taint-escape"];

/// Whether `rule` is one of the interprocedural rules.
pub fn is_interproc_rule(rule: &str) -> bool {
    INTERPROC_RULES.contains(&rule)
}

/// The concurrency rules evaluated centrally ([`crate::concurrency`])
/// over the propagated call graph. `lock-poison-unwrap` is *not* here:
/// it is a per-file token rule ([`crate::rules`]).
pub const CONCURRENCY_CENTRAL_RULES: &[&str] = &[
    "lock-order-cycle",
    "blocking-while-locked",
    "guard-across-fanout",
    "atomic-ordering-mixed",
];

/// Whether `rule` is matched centrally (by the interprocedural hazard
/// pass or the concurrency pass) rather than per file. The per-file
/// pass must not declare suppressions of these rules unused.
pub fn is_central_rule(rule: &str) -> bool {
    is_interproc_rule(rule) || CONCURRENCY_CENTRAL_RULES.contains(&rule)
}

/// Crates whose public APIs are declared panic-justified, exempting
/// them from `panic-reachable`: the bench harness aborts loudly by
/// design, and testkit's assertion helpers panic on property failure.
pub fn panic_reachable_exempt(crate_name: Option<&str>) -> bool {
    matches!(crate_name, Some("bench") | Some("testkit"))
}

/// The declared layering contract: each workspace crate and the crates
/// it may depend on. `testkit` is leaf-only (usable from dev-deps and
/// test code everywhere, but never a `[dependencies]` edge), `bench`
/// and `lint` are sinks nothing may depend on.
pub const CRATE_DAG: &[(&str, &[&str])] = &[
    ("model", &[]),
    ("dns", &["model"]),
    ("tls", &["model", "dns"]),
    ("web", &["model", "dns", "tls"]),
    ("worldgen", &["model", "dns", "tls", "web"]),
    ("measure", &["model", "dns", "tls", "web", "worldgen"]),
    (
        "core",
        &["model", "dns", "tls", "web", "worldgen", "measure"],
    ),
    (
        "chaos",
        &["model", "dns", "tls", "web", "worldgen", "measure", "core"],
    ),
    (
        "serve",
        &["model", "dns", "tls", "web", "worldgen", "measure", "core"],
    ),
    (
        "reports",
        &[
            "model", "dns", "tls", "web", "worldgen", "measure", "core", "chaos",
        ],
    ),
    ("testkit", &["model"]),
    (
        "bench",
        &[
            "model", "dns", "tls", "web", "worldgen", "measure", "core", "chaos", "serve",
            "reports",
        ],
    ),
    ("lint", &["model"]),
];

/// Crates that may never appear in another crate's `[dependencies]`.
pub const DEV_ONLY_CRATES: &[&str] = &["testkit", "lint"];

/// Allowed `[dependencies]` targets for `crate_name`, or `None` when
/// the crate is not part of the declared DAG (e.g. the root facade,
/// which may depend on everything).
pub fn allowed_deps(crate_name: &str) -> Option<BTreeSet<&'static str>> {
    CRATE_DAG
        .iter()
        .find(|(n, _)| *n == crate_name)
        .map(|(_, deps)| deps.iter().copied().collect())
}

/// File paths (repo-relative, forward slashes) exempt from the
/// wall-clock rule: the simulated clock itself, the bench harness, the
/// resident daemon (`serve`), whose deadline budgets, read timeouts,
/// and latency histograms are real-time by design — the analyses it
/// *answers with* stay on the simulated clock — and the observe-only
/// phase-timing sink (`model/timing.rs`), which measures pipeline
/// phases for the bench trajectory and never feeds results back into
/// generation or measurement.
pub fn wall_clock_exempt(rel_path: &str, crate_name: Option<&str>) -> bool {
    crate_name == Some("bench")
        || crate_name == Some("serve")
        || rel_path == "crates/dns/src/clock.rs"
        || rel_path == "crates/model/src/timing.rs"
}

/// Crates exempt from the seed-flow rule: `worldgen` mints the world's
/// root streams, `testkit` mints per-case streams, `bench` is timing
/// scaffolding, and `model` *defines* the generator.
pub fn seed_flow_exempt(_rel_path: &str, crate_name: Option<&str>) -> bool {
    matches!(
        crate_name,
        Some("worldgen") | Some("testkit") | Some("bench") | Some("model")
    )
}

/// Runtime configuration assembled from CLI flags.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Rules disabled globally via `--allow <rule>`.
    pub disabled: BTreeSet<String>,
    /// Per-rule severity overrides (`--severity rule=warn`).
    pub severity_overrides: BTreeMap<String, Severity>,
}

impl Config {
    /// Whether `rule` is enabled.
    pub fn enabled(&self, rule: &str) -> bool {
        !self.disabled.contains(rule)
    }

    /// The effective severity of `rule`.
    pub fn severity(&self, rule: &str) -> Severity {
        self.severity_overrides
            .get(rule)
            .copied()
            .unwrap_or_else(|| default_severity(rule))
    }

    /// The full rule→severity map under this configuration (enabled
    /// rules only).
    pub fn severity_map(&self) -> BTreeMap<String, Severity> {
        rule_names()
            .into_iter()
            .filter(|r| self.enabled(r))
            .map(|r| (r.to_string(), self.severity(r)))
            .collect()
    }

    /// A stable fingerprint of everything that changes rule *output*:
    /// disabled rules and severity overrides. Part of the cache key.
    pub fn fingerprint(&self) -> u64 {
        let mut s = String::new();
        for d in &self.disabled {
            s.push_str(d);
            s.push('\u{1}');
        }
        for (r, sev) in &self.severity_overrides {
            s.push_str(r);
            s.push('=');
            s.push_str(sev.label());
            s.push('\u{1}');
        }
        crate::driver::hash_bytes(s.as_bytes())
    }
}
