//! World materialization.
//!
//! Turns a [`SnapshotPlan`] into a fully wired [`World`]: every DNS
//! provider gets servers and zones, every CDN an edge and a CNAME
//! domain, every CA a responder reachable through its own (possibly
//! third-party) DNS and CDN, and every site a zone, webserver,
//! certificate, and landing page — such that the measurement pipeline
//! can discover everything the paper's scripts discovered, purely over
//! the wire.

// lint:allow-file(panic) — world construction runs on static catalogs and
// seeded RNG only; every expect here encodes a generator invariant, and a
// violation means the generator itself is wrong, which must abort loudly.

use crate::config::WorldConfig;
use crate::profiles::{CaProfile, CdnProfile, DepState};
use crate::providers::{self, CaProviderSpec, ConglomerateSpec, DnsProvider, ProviderDep};
use crate::snapshots::{plan_snapshot, SnapshotPlan};
use crate::truth::{GroundTruth, SiteListing, SiteTruth};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use webdeps_dns::record::{RecordData, Soa};
use webdeps_dns::zone::Zone;
use webdeps_dns::{DnsNetwork, Resolver, ServerId};
use webdeps_model::name::dn;
use webdeps_model::{
    CaId, DetRng, DomainName, EntityId, EntityKind, EntityRegistry, PublicSuffixList, SiteId,
};
use webdeps_tls::{Pki, PkiBuilder};
use webdeps_web::server::{TlsConfig, VirtualHost};
use webdeps_web::{
    CdnDirectory, CnameToCdnMap, Page, Resource, ResourceKind, Scheme, Url, WebClient, WebNetwork,
};

/// Shared third-party *content* hosts (fonts, ads, widgets) that appear
/// as external resources on landing pages. `Some(cdn)` fronts the host
/// with that CDN — external CNAME chains the pipeline must *not* count
/// as site-CDN pairs.
const CONTENT_PROVIDERS: &[(&str, Option<&str>)] = &[
    ("fontserve.com", Some("Akamai")),
    ("adnet.com", Some("CloudFront")),
    ("jslib-cdn.com", Some("Cloudflare CDN")),
    ("trackify.com", None),
    ("socialwidgets.com", Some("Fastly")),
];

/// A fully materialized snapshot of the synthetic Internet.
#[derive(Debug)]
pub struct World {
    /// Generation parameters.
    pub config: WorldConfig,
    /// Ground-truth ownership registry (validation only).
    pub entities: EntityRegistry,
    /// Public-suffix list shared with the measurement pipeline.
    pub psl: PublicSuffixList,
    /// The name system.
    pub dns: DnsNetwork,
    /// The web-serving plane.
    pub web: WebNetwork,
    /// The PKI.
    pub pki: Pki,
    /// CDN ground-truth directory (the CNAME map is derived from it).
    pub cdn_dir: CdnDirectory,
    /// The measurement pipeline's CNAME-to-CDN map.
    pub cname_map: CnameToCdnMap,
    /// Per-site ground truth (validation only).
    pub truth: GroundTruth,
    /// Provider display name → owning entity.
    provider_entities: BTreeMap<String, EntityId>,
}

impl World {
    /// Generates a world from scratch.
    pub fn generate(config: WorldConfig) -> World {
        World::from_plan(plan_snapshot(&config))
    }

    /// Materializes a prepared plan.
    pub fn from_plan(plan: SnapshotPlan) -> World {
        Builder::new(plan).build()
    }

    /// A fresh resolver bound to this world.
    pub fn resolver(&self) -> Resolver<'_> {
        Resolver::new(&self.dns)
    }

    /// A fresh browser-like client bound to this world.
    pub fn client(&self) -> WebClient<'_> {
        WebClient::new(self.resolver(), &self.web, &self.pki)
    }

    /// The public site list handed to the measurement pipeline.
    pub fn listings(&self) -> Vec<SiteListing> {
        self.truth.listings()
    }

    /// Ground truth for a site.
    pub fn site(&self, id: SiteId) -> &SiteTruth {
        self.truth.site(id)
    }

    /// The owning entity of a named provider (for outage injection),
    /// e.g. `"Dyn"`, `"Akamai"`, `"DigiCert"`, `"Googol CDN"`.
    pub fn provider_entity(&self, name: &str) -> Option<EntityId> {
        self.provider_entities.get(name).copied()
    }

    /// All provider names with their entities.
    pub fn provider_entities(&self) -> impl Iterator<Item = (&str, EntityId)> {
        self.provider_entities.iter().map(|(n, e)| (n.as_str(), *e))
    }
}

/// Incremental world assembly state (use [`World::generate`] or
/// [`World::from_plan`]; the builder is not directly constructible).
pub struct Builder {
    plan: SnapshotPlan,
    entities: EntityRegistry,
    dns_b: webdeps_dns::NetworkBuilder,
    web_b: webdeps_web::WebNetworkBuilder,
    cdn_dir: CdnDirectory,
    pki_b: Option<PkiBuilder>,
    rng: DetRng,
    next_web_ip: u32,
    next_dns_ip: u32,
    /// DNS provider name → its nameserver ServerIds.
    dns_servers: BTreeMap<String, Vec<ServerId>>,
    /// DNS provider name → catalog entry.
    dns_catalog: BTreeMap<String, DnsProvider>,
    /// CDN name → (cname domain, edge ip).
    cdn_info: BTreeMap<String, (DomainName, Ipv4Addr)>,
    /// CA name → id.
    ca_ids: BTreeMap<String, CaId>,
    provider_entities: BTreeMap<String, EntityId>,
    serial: u32,
}

impl Builder {
    fn new(plan: SnapshotPlan) -> Builder {
        let seed = plan.config.seed;
        Builder {
            plan,
            entities: EntityRegistry::new(),
            dns_b: DnsNetwork::builder(),
            web_b: WebNetwork::builder(),
            cdn_dir: CdnDirectory::new(),
            pki_b: Some(Pki::builder()),
            rng: DetRng::new(seed ^ 0xB11D),
            next_web_ip: 0x0A00_0001, // 10.0.0.1
            next_dns_ip: 0x0C00_0001, // 12.0.0.1
            dns_servers: BTreeMap::new(),
            dns_catalog: BTreeMap::new(),
            cdn_info: BTreeMap::new(),
            ca_ids: BTreeMap::new(),
            provider_entities: BTreeMap::new(),
            serial: 1,
        }
    }

    fn web_ip(&mut self) -> Ipv4Addr {
        let ip = Ipv4Addr::from(self.next_web_ip);
        self.next_web_ip += 1;
        ip
    }

    fn dns_ip(&mut self) -> Ipv4Addr {
        let ip = Ipv4Addr::from(self.next_dns_ip);
        self.next_dns_ip += 1;
        ip
    }

    fn serial(&mut self) -> u32 {
        self.serial += 1;
        self.serial
    }

    /// Builds a SOA whose MNAME/RNAME belong to `admin_domain`.
    fn soa_of(&mut self, admin_domain: &DomainName) -> Soa {
        let serial = self.serial();
        Soa::standard(
            admin_domain.child("ns1").expect("valid"),
            admin_domain.child("hostmaster").expect("valid"),
            serial,
        )
    }

    /// Creates two nameserver hosts under `ns_domain` for `operator` and
    /// returns their ids. Idempotent per domain.
    fn make_ns_servers(&mut self, ns_domain: &DomainName, operator: EntityId) -> Vec<ServerId> {
        let mut out = Vec::with_capacity(2);
        for label in ["ns1", "ns2"] {
            let host = ns_domain.child(label).expect("valid label");
            let ip = self.dns_ip();
            out.push(self.dns_b.add_server(host, ip, operator));
        }
        out
    }

    /// Deploys a zone that carries A records for its own `ns1`/`ns2`.
    fn deploy_infra_zone(
        &mut self,
        origin: DomainName,
        soa: Soa,
        ns_hosts: Vec<DomainName>,
        servers: Vec<ServerId>,
        a_records: Vec<(DomainName, Ipv4Addr)>,
    ) {
        let mut zone = Zone::new(origin.clone(), soa);
        for h in &ns_hosts {
            zone.add(origin.clone(), RecordData::Ns(h.clone()));
        }
        for (name, ip) in a_records {
            zone.add(name, RecordData::A(ip));
        }
        self.dns_b.add_zone(zone, servers);
    }

    /// Resolves a provider-level DNS dependency into the (ns hosts,
    /// servers, soa-admin domain) of the dependent's zone.
    fn dep_dns_setup(
        &mut self,
        own_domain: &DomainName,
        own_entity: EntityId,
        dep: &ProviderDep,
    ) -> (Vec<DomainName>, Vec<ServerId>, DomainName) {
        match dep {
            ProviderDep::Private | ProviderDep::None => {
                let servers = self.make_ns_servers(own_domain, own_entity);
                (
                    vec![
                        own_domain.child("ns1").expect("valid"),
                        own_domain.child("ns2").expect("valid"),
                    ],
                    servers,
                    own_domain.clone(),
                )
            }
            ProviderDep::SingleThird(p) => {
                let prov = self
                    .dns_catalog
                    .get(*p)
                    .unwrap_or_else(|| panic!("unknown DNS provider {p}"))
                    .clone();
                let servers = self.dns_servers[*p].clone();
                (
                    vec![
                        prov.ns_domain.child("ns1").expect("valid"),
                        prov.ns_domain.child("ns2").expect("valid"),
                    ],
                    servers,
                    prov.ns_domain.clone(),
                )
            }
            ProviderDep::Redundant(p) => {
                let prov = self
                    .dns_catalog
                    .get(*p)
                    .unwrap_or_else(|| panic!("unknown DNS provider {p}"))
                    .clone();
                let mut servers = self.make_ns_servers(own_domain, own_entity);
                servers.extend(self.dns_servers[*p].iter().copied());
                (
                    vec![
                        own_domain.child("ns1").expect("valid"),
                        prov.ns_domain.child("ns1").expect("valid"),
                    ],
                    servers,
                    own_domain.clone(),
                )
            }
        }
    }

    /// Phase 1: DNS providers — entities, servers, and provider zones.
    fn build_dns_providers(&mut self) {
        let psl = PublicSuffixList::builtin();
        let catalog = providers::dns_catalog(&self.plan.config);
        for p in catalog {
            // Entities own *registrable* domains (cloudflare.com, not
            // ns.cloudflare.com) so wire identities resolve to owners.
            let reg = |d: &DomainName| psl.registrable_domain(d).unwrap_or_else(|| d.clone());
            let mut domains = vec![reg(&p.ns_domain)];
            for extra in &p.extra_ns_domains {
                let r = reg(extra);
                if !domains.contains(&r) {
                    domains.push(r);
                }
            }
            let entity = self
                .entities
                .register(p.name.clone(), EntityKind::DnsProvider, domains);
            self.provider_entities.insert(p.name.clone(), entity);

            let mut servers = self.make_ns_servers(&p.ns_domain.clone(), entity);
            let mut a_records: Vec<(DomainName, Ipv4Addr)> = Vec::new();
            for (i, &sid) in servers.iter().enumerate() {
                let host = p
                    .ns_domain
                    .child(if i == 0 { "ns1" } else { "ns2" })
                    .expect("valid");
                // Use the actual registered server IP for glue realism.
                let _ = sid;
                a_records.push((host, Ipv4Addr::from(self.next_dns_ip - 2 + i as u32)));
            }
            let soa = self.soa_of(&p.ns_domain.clone());
            self.deploy_infra_zone(
                p.ns_domain.clone(),
                soa,
                vec![
                    p.ns_domain.child("ns1").expect("valid"),
                    p.ns_domain.child("ns2").expect("valid"),
                ],
                servers.clone(),
                a_records,
            );
            // Extra alias domains (Alibaba style): separate zones whose
            // SOA MNAME points at the primary domain's master.
            for extra in &p.extra_ns_domains {
                let extra_server = {
                    let host = extra.child("ns1").expect("valid");
                    let ip = self.dns_ip();
                    self.dns_b.add_server(host, ip, entity)
                };
                servers.push(extra_server);
                let serial = self.serial();
                let soa = Soa::standard(
                    p.ns_domain.child("ns1").expect("valid"),
                    p.ns_domain.child("hostmaster").expect("valid"),
                    serial,
                );
                let a = vec![(
                    extra.child("ns1").expect("valid"),
                    Ipv4Addr::from(self.next_dns_ip - 1),
                )];
                self.deploy_infra_zone(
                    extra.clone(),
                    soa,
                    vec![extra.child("ns1").expect("valid")],
                    vec![extra_server],
                    a,
                );
            }
            self.dns_servers.insert(p.name.clone(), servers);
            self.dns_catalog.insert(p.name.clone(), p);
        }
    }

    /// Phase 2: third-party CDNs — entities, edges, CNAME-domain zones.
    fn build_cdns(&mut self) {
        let catalog = providers::cdn_catalog(&self.plan.config);
        for c in catalog {
            self.build_one_cdn(&c.name, c.cname_domain.clone(), None, &c.dns_dep, true);
            let _ = c;
        }
    }

    /// Creates one CDN (third-party or conglomerate-private).
    fn build_one_cdn(
        &mut self,
        name: &str,
        cname_domain: DomainName,
        owner: Option<EntityId>,
        dns_dep: &ProviderDep,
        advertises: bool,
    ) {
        let entity = owner.unwrap_or_else(|| {
            let reg = PublicSuffixList::builtin()
                .registrable_domain(&cname_domain)
                .unwrap_or_else(|| cname_domain.clone());
            self.entities
                .register(name.to_string(), EntityKind::CdnProvider, vec![reg])
        });
        self.provider_entities.insert(name.to_string(), entity);
        self.cdn_dir.register(
            name.to_string(),
            entity,
            vec![cname_domain.clone()],
            advertises,
        );

        let edge_ip = self.web_ip();
        self.web_b.add_server(edge_ip, entity);

        let (ns_hosts, servers, mut admin) = self.dep_dns_setup(&cname_domain, entity, dns_dep);
        if name == "Cloudflare CDN" {
            // One real-world confusion source, faithfully modeled: the
            // CDN zone shares its SOA administration with the company's
            // DNS product, so the SOA rule cannot separate a
            // Cloudflare-DNS site from the Cloudflare CDN (those pairs
            // end up unclassified, like the paper's 771/38,030).
            admin = dn("ns.cloudflare.com");
        }
        let soa = self.soa_of(&admin);
        // In-zone A records for any private nameservers.
        let mut a_records = Vec::new();
        for h in &ns_hosts {
            if h.is_subdomain_of(&cname_domain) {
                a_records.push((h.clone(), self.dns_ip()));
            }
        }
        self.deploy_infra_zone(cname_domain.clone(), soa, ns_hosts, servers, a_records);
        self.cdn_info
            .insert(name.to_string(), (cname_domain, edge_ip));
    }

    /// Registers a CDN customer host (`cust-…`) pointing at the edge.
    fn add_cdn_customer(&mut self, cdn_name: &str, label: &str) -> DomainName {
        let (domain, edge_ip) = self
            .cdn_info
            .get(cdn_name)
            .unwrap_or_else(|| panic!("unknown CDN {cdn_name}"))
            .clone();
        let host = domain.child(label).expect("valid label");
        let zone = self.dns_b.zone_mut(&domain).expect("CDN zone deployed");
        zone.add(host.clone(), RecordData::A(edge_ip));
        host
    }

    /// Phase 3: third-party CAs — PKI registration, responder infra.
    fn build_cas(&mut self) {
        let catalog = providers::ca_catalog(&self.plan.config);
        for ca in catalog {
            let entity = self.entities.register(
                ca.name.clone(),
                EntityKind::CertificateAuthority,
                vec![ca.domain.clone()],
            );
            self.build_one_ca(&ca.name, ca.domain.clone(), entity, &ca, None);
        }
    }

    /// Creates one CA's PKI entry and serving infrastructure.
    /// `zone_override` nests the CA's zone under a conglomerate domain.
    fn build_one_ca(
        &mut self,
        name: &str,
        ca_domain: DomainName,
        entity: EntityId,
        spec: &CaProviderSpec,
        lifetime_override: Option<u64>,
    ) {
        self.provider_entities.insert(name.to_string(), entity);
        let ocsp_host = ca_domain.child("ocsp").expect("valid");
        let crl_host = ca_domain.child("crl").expect("valid");
        let ca_id = self.pki_b.as_mut().expect("pki open").add_ca(
            name.to_string(),
            entity,
            vec![ocsp_host.clone()],
            vec![crl_host.clone()],
            lifetime_override.unwrap_or(spec.cert_lifetime),
        );
        self.ca_ids.insert(name.to_string(), ca_id);

        // Responder origin.
        let responder_ip = self.web_ip();
        self.web_b.add_server(responder_ip, entity);
        self.web_b
            .set_vhost(ocsp_host.clone(), VirtualHost::default());
        self.web_b
            .set_vhost(crl_host.clone(), VirtualHost::default());

        // The CA's zone, wired per its DNS dependency. CAs administer
        // their own zone *content* (SOA MNAME/RNAME stay in-house) even
        // when the serving nameservers are a third party's — which is
        // why the paper's SOA rule classifies CA→DNS and CA→CDN pairs
        // decently (94% strawman accuracy) while failing on websites.
        let (ns_hosts, servers, _admin) = self.dep_dns_setup(&ca_domain, entity, &spec.dns_dep);
        let soa = self.soa_of(&ca_domain.clone());
        let mut a_records = Vec::new();
        for h in &ns_hosts {
            if h.is_subdomain_of(&ca_domain) {
                a_records.push((h.clone(), self.dns_ip()));
            }
        }
        self.deploy_infra_zone(ca_domain.clone(), soa, ns_hosts, servers, a_records);

        // Responder hosts: direct A records, or CNAME onto a CDN.
        let zone_origin = ca_domain.clone();
        match &spec.cdn_dep {
            ProviderDep::SingleThird(cdn) | ProviderDep::Redundant(cdn) => {
                let label = format!("ca-{}", name.to_ascii_lowercase().replace([' ', '\''], "-"));
                let cust = self.add_cdn_customer(cdn, &label);
                let zone = self.dns_b.zone_mut(&zone_origin).expect("CA zone deployed");
                zone.add(ocsp_host, RecordData::Cname(cust.clone()));
                zone.add(crl_host, RecordData::Cname(cust));
            }
            _ => {
                let zone = self.dns_b.zone_mut(&zone_origin).expect("CA zone deployed");
                zone.add(ocsp_host, RecordData::A(responder_ip));
                zone.add(crl_host, RecordData::A(responder_ip));
            }
        }
    }

    /// Phase 4: conglomerates — corporate zones, private CAs and CDNs.
    fn build_conglomerates(&mut self) {
        for spec in providers::CONGLOMERATES {
            self.build_one_conglomerate(spec);
        }
    }

    fn conglomerate_entity_name(spec: &ConglomerateSpec) -> String {
        spec.name.to_string()
    }

    fn build_one_conglomerate(&mut self, spec: &ConglomerateSpec) {
        let primary = dn(spec.domain);
        let mut domains = vec![primary.clone()];
        domains.extend(spec.alias_domains.iter().map(|d| dn(d)));
        let entity = self.entities.register(
            Self::conglomerate_entity_name(spec),
            EntityKind::WebsiteOperator,
            domains.clone(),
        );
        self.provider_entities.insert(spec.name.to_string(), entity);

        // Corporate zones: private DNS on the primary domain.
        let servers = self.make_ns_servers(&primary, entity);
        let ns_hosts = vec![
            primary.child("ns1").expect("valid"),
            primary.child("ns2").expect("valid"),
        ];
        let soa = self.soa_of(&primary);
        let mut a_records = Vec::new();
        for h in &ns_hosts {
            a_records.push((h.clone(), self.dns_ip()));
        }
        self.deploy_infra_zone(
            primary.clone(),
            soa,
            ns_hosts.clone(),
            servers.clone(),
            a_records,
        );
        for alias in spec.alias_domains {
            let alias = dn(alias);
            if spec.private_cdn && Some(alias.as_str()) == spec.alias_domains.first().copied() {
                continue; // the first alias becomes the private CDN domain below
            }
            let serial = self.serial();
            let soa = Soa::standard(
                primary.child("ns1").expect("valid"),
                primary.child("hostmaster").expect("valid"),
                serial,
            );
            self.deploy_infra_zone(alias, soa, ns_hosts.clone(), servers.clone(), Vec::new());
        }

        // Private CDN (Yahoo/yimg style): first alias domain, wired per
        // the conglomerate's CDN-DNS dependency (the twitter case).
        if spec.private_cdn {
            let cdn_domain = dn(spec
                .alias_domains
                .first()
                .expect("private CDN needs an alias"));
            let cdn_name = format!("{} CDN", spec.name);
            self.build_one_cdn(&cdn_name, cdn_domain, Some(entity), &spec.cdn_dns_dep, true);
        }

        // Private CA: nested zone `pki.<primary>`, wired per the
        // conglomerate's CA dependencies (the godaddy / microsoft cases).
        if spec.private_ca {
            let ca_domain = primary.child("pki").expect("valid");
            let ca_name = format!("{} CA", spec.name);
            let fake_spec = CaProviderSpec {
                name: ca_name.clone(),
                domain: ca_domain.clone(),
                weights: [0.0; 4],
                dns_dep: spec.ca_dns_dep.clone(),
                cdn_dep: spec.ca_cdn_dep.clone(),
                cert_lifetime: 397 * 86_400,
            };
            self.build_one_ca(&ca_name, ca_domain, entity, &fake_spec, None);
        }

        // The corporate site itself (not part of the ranked list; member
        // sites from the plan point here via SAN evidence).
        let www_ip = self.web_ip();
        self.web_b.add_server(www_ip, entity);
        let zone = self.dns_b.zone_mut(&primary).expect("deployed");
        zone.add(primary.clone(), RecordData::A(www_ip));
    }

    /// Phase 5: shared content providers (external page resources).
    fn build_content_providers(&mut self) {
        for (domain, cdn) in CONTENT_PROVIDERS {
            let domain = dn(domain);
            let entity = self.entities.register(
                format!("Content {domain}"),
                EntityKind::WebsiteOperator,
                vec![domain.clone()],
            );
            let servers = self.make_ns_servers(&domain, entity);
            let ns_hosts = vec![
                domain.child("ns1").expect("valid"),
                domain.child("ns2").expect("valid"),
            ];
            let soa = self.soa_of(&domain);
            let mut a_records = Vec::new();
            for h in &ns_hosts {
                a_records.push((h.clone(), self.dns_ip()));
            }
            let origin_ip = self.web_ip();
            self.web_b.add_server(origin_ip, entity);
            let static_host = domain.child("static").expect("valid");
            self.web_b
                .set_vhost(static_host.clone(), VirtualHost::default());
            self.deploy_infra_zone(domain.clone(), soa, ns_hosts, servers, a_records);
            let cname = match cdn {
                Some(cdn_name) if self.cdn_info.contains_key(*cdn_name) => {
                    Some(self.add_cdn_customer(
                        cdn_name,
                        &format!("cust-{}", domain.labels().next().expect("label")),
                    ))
                }
                _ => None,
            };
            let zone = self.dns_b.zone_mut(&domain).expect("deployed");
            match cname {
                Some(cust) => zone.add(static_host, RecordData::Cname(cust)),
                None => zone.add(static_host, RecordData::A(origin_ip)),
            }
        }
    }

    /// External content hosts available for page generation.
    fn content_hosts() -> Vec<DomainName> {
        CONTENT_PROVIDERS
            .iter()
            .map(|(d, _)| dn(d).child("static").expect("valid"))
            .collect()
    }

    /// Phase 6: the ranked site population.
    fn build_sites(&mut self, pki: &mut Pki) {
        let content_hosts = Self::content_hosts();
        let sites = std::mem::take(&mut self.plan.truth.sites);
        for site in &sites {
            self.build_one_site(site, pki, &content_hosts);
        }
        self.plan.truth.sites = sites;
    }

    fn build_one_site(&mut self, site: &SiteTruth, pki: &mut Pki, content_hosts: &[DomainName]) {
        let rng = self.rng.fork_indexed("site-build", site.universe);
        let domain = site.domain.clone();

        // Entity: conglomerate member sites belong to the conglomerate.
        let entity = match site.conglomerate {
            Some(ci) => {
                let e = self.provider_entities[providers::CONGLOMERATES[ci].name];
                self.entities.add_domain(e, domain.clone());
                e
            }
            None => {
                let mut domains = vec![domain.clone()];
                if site.dns.alias_ns {
                    domains.push(dn(&format!("site-{}-dns.net", site.universe)));
                }
                self.entities.register(
                    format!("Operator of {domain}"),
                    EntityKind::WebsiteOperator,
                    domains,
                )
            }
        };

        // Origin webserver.
        let origin_ip = self.web_ip();
        self.web_b.add_server(origin_ip, entity);

        // --- DNS ---------------------------------------------------
        let mut ns_hosts: Vec<DomainName> = Vec::new();
        let mut servers: Vec<ServerId> = Vec::new();
        let mut extra_zone: Option<(DomainName, Vec<ServerId>)> = None;
        match site.dns.state {
            DepState::Private => {
                let ns_base = if site.dns.alias_ns {
                    dn(&format!("site-{}-dns.net", site.universe))
                } else {
                    domain.clone()
                };
                let own = self.make_ns_servers(&ns_base, entity);
                ns_hosts.push(ns_base.child("ns1").expect("valid"));
                ns_hosts.push(ns_base.child("ns2").expect("valid"));
                servers.extend(own.iter().copied());
                if site.dns.alias_ns {
                    extra_zone = Some((ns_base, own));
                }
            }
            DepState::SingleThird => {
                let p = &self.dns_catalog[&site.dns.providers[0]];
                if let Some(extra) = p.extra_ns_domains.first() {
                    // Alibaba-style: two nameserver domains, one entity.
                    ns_hosts.push(p.ns_domain.child("ns1").expect("valid"));
                    ns_hosts.push(extra.child("ns1").expect("valid"));
                } else {
                    ns_hosts.push(p.ns_domain.child("ns1").expect("valid"));
                    ns_hosts.push(p.ns_domain.child("ns2").expect("valid"));
                }
                servers.extend(self.dns_servers[&site.dns.providers[0]].iter().copied());
            }
            DepState::MultiThird => {
                for name in &site.dns.providers {
                    let p = &self.dns_catalog[name];
                    ns_hosts.push(p.ns_domain.child("ns1").expect("valid"));
                    servers.extend(self.dns_servers[name].iter().copied());
                }
            }
            DepState::PrivatePlusThird => {
                let own = self.make_ns_servers(&domain, entity);
                ns_hosts.push(domain.child("ns1").expect("valid"));
                servers.extend(own);
                let p = &self.dns_catalog[&site.dns.providers[0]];
                ns_hosts.push(p.ns_domain.child("ns1").expect("valid"));
                servers.extend(self.dns_servers[&site.dns.providers[0]].iter().copied());
            }
        }

        let soa = if site.dns.provider_soa {
            let ns_domain = self.dns_catalog[&site.dns.providers[0]].ns_domain.clone();
            let serial = self.serial();
            Soa::standard(
                ns_domain.child("ns1").expect("valid"),
                ns_domain.child("hostmaster").expect("valid"),
                serial,
            )
        } else {
            // Self-managed SOA: MNAME points at a hidden master under
            // the site's own domain (a common production setup), so the
            // SOA strawman correctly detects third-party nameservers.
            let serial = self.serial();
            Soa::standard(
                domain.child("ns0").expect("valid"),
                domain.child("hostmaster").expect("valid"),
                serial,
            )
        };

        let mut zone = Zone::new(domain.clone(), soa);
        for h in &ns_hosts {
            zone.add(domain.clone(), RecordData::Ns(h.clone()));
        }
        zone.add(domain.clone(), RecordData::A(origin_ip));
        for h in &ns_hosts {
            if h.is_subdomain_of(&domain) {
                zone.add(h.clone(), RecordData::A(self.dns_ip()));
            }
        }
        if let Some((alias_domain, alias_servers)) = extra_zone {
            // Alias-NS zone: same administrator as the site zone.
            let serial = self.serial();
            let soa = Soa::standard(
                alias_domain.child("ns1").expect("valid"),
                domain.child("hostmaster").expect("valid"),
                serial,
            );
            let mut a = Vec::new();
            for label in ["ns1", "ns2"] {
                a.push((alias_domain.child(label).expect("valid"), self.dns_ip()));
            }
            self.deploy_infra_zone(
                alias_domain.clone(),
                soa,
                vec![alias_domain.child("ns1").expect("valid")],
                alias_servers,
                a,
            );
        }

        // --- CDN on-ramps + hosts ------------------------------------
        let www = domain.child("www").expect("valid");
        let www2 = domain.child("www2").expect("valid");
        let static_host = domain.child("static").expect("valid");
        let sid = site.id.index();
        match site.cdn.state {
            CdnProfile::None => {
                zone.add(static_host.clone(), RecordData::A(origin_ip));
            }
            CdnProfile::Private | CdnProfile::SingleThird => {
                let cdn = &site.cdn.cdns[0];
                let cust_www = self.add_cdn_customer(cdn, &format!("cust-{sid}-www"));
                let cust_static = self.add_cdn_customer(cdn, &format!("cust-{sid}-st"));
                zone.add(www.clone(), RecordData::Cname(cust_www));
                zone.add(static_host.clone(), RecordData::Cname(cust_static));
            }
            CdnProfile::Multi => {
                // Both CDNs are visible on the landing page: static
                // assets ride CDN A, image assets CDN B (multi-CDN sites
                // split object classes), and the document itself fails
                // over www → www2.
                let cust_a =
                    self.add_cdn_customer(&site.cdn.cdns[0].clone(), &format!("cust-{sid}-www"));
                let cust_b =
                    self.add_cdn_customer(&site.cdn.cdns[1].clone(), &format!("cust-{sid}-www2"));
                let cust_static =
                    self.add_cdn_customer(&site.cdn.cdns[0].clone(), &format!("cust-{sid}-st"));
                let cust_img =
                    self.add_cdn_customer(&site.cdn.cdns[1].clone(), &format!("cust-{sid}-img"));
                zone.add(www.clone(), RecordData::Cname(cust_a));
                zone.add(www2.clone(), RecordData::Cname(cust_b));
                zone.add(static_host.clone(), RecordData::Cname(cust_static));
                zone.add(
                    domain.child("img").expect("valid"),
                    RecordData::Cname(cust_img),
                );
            }
        }
        self.dns_b.add_zone(zone, servers);

        // --- Certificate ------------------------------------------
        let tls = if site.https() {
            let ca_name = site.ca.ca.as_ref().expect("HTTPS site has a CA");
            let ca_id = *self
                .ca_ids
                .get(ca_name)
                .unwrap_or_else(|| panic!("unknown CA {ca_name}"));
            let mut san = vec![domain.clone(), dn(&format!("*.{domain}"))];
            if let Some(ci) = site.conglomerate {
                let spec = &providers::CONGLOMERATES[ci];
                san.push(dn(spec.domain));
                for alias in spec.alias_domains {
                    san.push(dn(alias));
                    san.push(dn(&format!("*.{alias}")));
                }
            }
            if site.dns.alias_ns {
                san.push(dn(&format!("site-{}-dns.net", site.universe)));
            }
            let must_staple = rng.fork("must-staple").chance(0.002);
            let cert = pki.issue(
                ca_id,
                domain.clone(),
                san,
                webdeps_dns::SimTime::ZERO,
                must_staple,
            );
            let staple = site.ca.state == CaProfile::ThirdStapled || must_staple;
            Some(TlsConfig {
                certificate: cert,
                staple,
            })
        } else {
            None
        };

        // --- Page + vhosts ------------------------------------------
        let scheme = if site.https() {
            Scheme::Https
        } else {
            Scheme::Http
        };
        let doc_hosts = site.document_hosts();
        let mut page = Page::new();
        page.push(Resource::new(
            Url {
                scheme,
                host: doc_hosts[0].clone(),
                path: "/app.js".into(),
            },
            ResourceKind::Script,
        ));
        page.push(Resource::new(
            Url {
                scheme,
                host: static_host.clone(),
                path: "/style.css".into(),
            },
            ResourceKind::Stylesheet,
        ));
        if site.cdn.state == CdnProfile::Multi {
            // The second CDN's objects (see the on-ramp wiring above).
            page.push(Resource::new(
                Url {
                    scheme,
                    host: domain.child("img").expect("valid"),
                    path: "/hero.png".into(),
                },
                ResourceKind::Image,
            ));
        }
        if let Some(ci) = site.conglomerate {
            let spec = &providers::CONGLOMERATES[ci];
            if let Some(alias) = spec.alias_domains.first() {
                // Internal resource on a sibling brand domain (the
                // yimg/yahoo heuristic case).
                page.push(Resource::new(
                    Url {
                        scheme,
                        host: dn(alias).child("img").expect("valid"),
                        path: "/logo.png".into(),
                    },
                    ResourceKind::Image,
                ));
            }
        }
        let mut crng = rng.fork("content");
        let n_ext = 1 + crng.below(3);
        for k in 0..n_ext {
            let host = &content_hosts[(crng.below(content_hosts.len()) + k) % content_hosts.len()];
            // External objects load over HTTP in this model so content
            // hosts need no certificates; the paper's pipeline only
            // needs their hostnames and CNAME chains.
            page.push(Resource::new(
                Url {
                    scheme: Scheme::Http,
                    host: host.clone(),
                    path: format!("/w{k}.js"),
                },
                ResourceKind::Script,
            ));
        }

        for host in &doc_hosts {
            self.web_b.set_vhost(
                host.clone(),
                VirtualHost {
                    tls: tls.clone(),
                    page: Some(page.clone()),
                    redirect: None,
                },
            );
        }
        if site.cdn.state.uses_cdn() {
            // The apex answers from the origin with a redirect onto the
            // CDN-fronted www host, like real CDN onboarding does.
            self.web_b.set_vhost(
                domain.clone(),
                VirtualHost {
                    tls: tls.clone(),
                    page: None,
                    redirect: Some(www.clone()),
                },
            );
        }
        self.web_b.set_vhost(
            static_host,
            VirtualHost {
                tls: tls.clone(),
                page: None,
                redirect: None,
            },
        );
        if site.cdn.state == CdnProfile::Multi {
            self.web_b.set_vhost(
                domain.child("img").expect("valid"),
                VirtualHost {
                    tls: tls.clone(),
                    page: None,
                    redirect: None,
                },
            );
        }
        if site.conglomerate.is_some() {
            if let Some(ci) = site.conglomerate {
                let spec = &providers::CONGLOMERATES[ci];
                if let Some(alias) = spec.alias_domains.first() {
                    let img = dn(alias).child("img").expect("valid");
                    self.web_b.set_vhost(
                        img.clone(),
                        VirtualHost {
                            tls: tls.clone(),
                            page: None,
                            redirect: None,
                        },
                    );
                    // Resolvable target for the sibling-brand host.
                    if let Some(zone) = self.dns_b.zone_mut(&dn(alias)) {
                        if matches!(
                            zone.lookup(&img, webdeps_dns::RecordType::A),
                            webdeps_dns::zone::ZoneAnswer::NxDomain { .. }
                        ) {
                            zone.add(img, RecordData::A(origin_ip));
                        }
                    }
                }
            }
        }
    }

    fn build(mut self) -> World {
        self.build_dns_providers();
        self.build_cdns();
        self.build_cas();
        self.build_conglomerates();
        self.build_content_providers();
        let mut pki = self.pki_b.take().expect("pki open").build();
        self.build_sites(&mut pki);
        let cname_map = CnameToCdnMap::from_directory(&self.cdn_dir);
        World {
            config: self.plan.config,
            entities: self.entities,
            psl: PublicSuffixList::builtin(),
            dns: self.dns_b.build(),
            web: self.web_b.build(),
            pki,
            cdn_dir: self.cdn_dir,
            cname_map,
            truth: self.plan.truth,
            provider_entities: self.provider_entities,
        }
    }
}

/// Convenience: the display name of a conglomerate's private CDN/CA used
/// in ground truth.
pub fn conglomerate_cdn_name(spec: &ConglomerateSpec) -> String {
    format!("{} CDN", spec.name)
}

/// Re-exported for examples: the conglomerate private-CA name.
pub fn conglomerate_ca_name(spec: &ConglomerateSpec) -> String {
    format!("{} CA", spec.name)
}

/// Builder type alias used by the public API docs.
pub type WorldBuilder = Builder;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use webdeps_dns::RecordType;

    fn small_world() -> World {
        World::generate(WorldConfig::small(41))
    }

    #[test]
    fn world_builds_and_sites_resolve() {
        let w = small_world();
        assert_eq!(w.truth.len(), 2_000);
        let mut resolver = w.resolver();
        let mut resolved = 0;
        for listing in w.listings().iter().take(200) {
            if resolver.resolve(&listing.domain, RecordType::A).is_ok() {
                resolved += 1;
            }
        }
        assert_eq!(resolved, 200, "every site apex must resolve");
    }

    #[test]
    fn document_hosts_fetch_end_to_end() {
        let w = small_world();
        let mut client = w.client();
        let mut ok = 0;
        let mut total = 0;
        for listing in w.listings().iter().take(300) {
            total += 1;
            let scheme = if listing.https {
                Scheme::Https
            } else {
                Scheme::Http
            };
            let url = Url {
                scheme,
                host: listing.document_hosts[0].clone(),
                path: "/".into(),
            };
            match client.fetch(&url) {
                Ok(out) => {
                    assert!(out.page.is_some(), "document host must serve a page");
                    ok += 1;
                }
                Err(e) => panic!("fetch of {url} failed: {e}"),
            }
        }
        assert_eq!(ok, total);
    }

    #[test]
    fn https_sites_present_covering_fresh_certs() {
        let w = small_world();
        let mut client = w.client();
        for listing in w.listings().iter().filter(|l| l.https).take(100) {
            let url = Url::https(listing.document_hosts[0].clone());
            let out = client.fetch(&url).expect("https fetch");
            let tls = out.tls.expect("tls session");
            assert!(tls.certificate.covers(&url.host));
        }
    }

    #[test]
    fn stapling_matches_ground_truth() {
        let w = small_world();
        let mut client = w.client();
        let mut stapled_sites = 0;
        for listing in w.listings().iter().filter(|l| l.https).take(400) {
            let truth = w.site(listing.id);
            let url = Url::https(listing.document_hosts[0].clone());
            let out = client.fetch(&url).expect("https fetch");
            if truth.ca.state == CaProfile::ThirdStapled {
                assert!(out.was_stapled(), "{} should staple", listing.domain);
                stapled_sites += 1;
            }
        }
        assert!(stapled_sites > 0, "sample must include stapling sites");
    }

    #[test]
    fn cdn_sites_route_through_edge_with_visible_chain() {
        let w = small_world();
        let mut client = w.client();
        let mut checked = 0;
        for listing in w.listings() {
            let truth = w.site(listing.id);
            if truth.cdn.state != CdnProfile::SingleThird {
                continue;
            }
            let scheme = if listing.https {
                Scheme::Https
            } else {
                Scheme::Http
            };
            let url = Url {
                scheme,
                host: listing.document_hosts[0].clone(),
                path: "/".into(),
            };
            let out = client.fetch(&url).expect("cdn fetch");
            assert!(!out.cname_chain.is_empty(), "CDN on-ramp must be a CNAME");
            let cdn_id = w.cname_map.classify_chain(out.cname_chain.iter());
            let cdn = w.cdn_dir.get(cdn_id.expect("chain maps to a CDN"));
            assert_eq!(&cdn.name, &truth.cdn.cdns[0]);
            checked += 1;
            if checked >= 50 {
                break;
            }
        }
        assert!(checked > 10, "world must contain CDN sites");
    }

    #[test]
    fn apex_redirects_lead_browsers_to_the_cdn_host() {
        use webdeps_web::Crawler;
        let w = small_world();
        let site = w
            .truth
            .sites
            .iter()
            .find(|s| s.cdn.state == CdnProfile::SingleThird)
            .expect("CDN site exists");
        let mut client = w.client();
        // Start from the bare apex, as a user typing the domain would.
        let report = Crawler::crawl(
            &mut client,
            &site.domain,
            std::slice::from_ref(&site.domain),
            site.https(),
        );
        assert!(report.reachable());
        assert_eq!(
            report.document_host,
            Some(site.domain.child("www").unwrap()),
            "apex redirect must land on the CDN-fronted host"
        );
        assert!(
            !report.document_chain.is_empty(),
            "…which rides the CDN CNAME"
        );
    }

    #[test]
    fn dyn_style_outage_kills_critical_sites_spares_redundant() {
        let w = small_world();
        // Find a provider with critically dependent sites in this world.
        let mut by_provider: HashMap<&str, (usize, usize)> = HashMap::new();
        for s in &w.truth.sites {
            for p in &s.dns.providers {
                let e = by_provider.entry(p.as_str()).or_default();
                if s.dns.state == DepState::SingleThird {
                    e.0 += 1;
                } else {
                    e.1 += 1;
                }
            }
        }
        let (victim, _) = by_provider
            .iter()
            .filter(|(_, (crit, red))| *crit > 5 && *red > 0)
            .max_by_key(|(_, (crit, _))| *crit)
            .expect("some provider has critical + redundant customers");
        let entity = w.provider_entity(victim).expect("provider entity");

        let mut client = w.client();
        client.set_faults(webdeps_dns::FaultPlan::healthy().fail_entity(entity));
        client.resolver_mut().disable_cache();

        let mut critical_dead = 0;
        let mut critical_total = 0;
        let mut redundant_alive = 0;
        let mut redundant_total = 0;
        for s in &w.truth.sites {
            if !s.dns.providers.iter().any(|p| p == victim) {
                continue;
            }
            let scheme = if s.https() {
                Scheme::Https
            } else {
                Scheme::Http
            };
            let url = Url {
                scheme,
                host: s.document_hosts()[0].clone(),
                path: "/".into(),
            };
            let up = client.fetch(&url).is_ok();
            match s.dns.state {
                DepState::SingleThird => {
                    critical_total += 1;
                    if !up {
                        critical_dead += 1;
                    }
                }
                DepState::MultiThird | DepState::PrivatePlusThird => {
                    redundant_total += 1;
                    if up {
                        redundant_alive += 1;
                    }
                }
                DepState::Private => unreachable!("private sites have no providers"),
            }
        }
        assert!(critical_total > 0 && redundant_total > 0);
        assert_eq!(
            critical_dead, critical_total,
            "all critical customers must go dark"
        );
        assert_eq!(
            redundant_alive, redundant_total,
            "all redundant customers must survive"
        );
    }

    #[test]
    fn worlds_are_deterministic() {
        let a = small_world();
        let b = small_world();
        assert_eq!(a.dns.zone_count(), b.dns.zone_count());
        assert_eq!(a.web.vhost_count(), b.web.vhost_count());
        for (x, y) in a.truth.sites.iter().zip(b.truth.sites.iter()).take(100) {
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.dns.providers, y.dns.providers);
        }
    }

    #[test]
    fn provider_entities_are_exposed() {
        let w = small_world();
        assert!(w.provider_entity("Cloudflare").is_some());
        assert!(w.provider_entity("DigiCert").is_some());
        assert!(w.provider_entity("Akamai").is_some());
        assert!(w.provider_entity("NoSuchProvider").is_none());
    }
}
