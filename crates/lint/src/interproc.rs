//! Interprocedural layer: per-function summaries, a workspace call
//! graph, and transitive hazard propagation.
//!
//! The per-file rules see a hazard only where it is written; helper
//! indirection hides it from the API surface exactly the way the
//! paper's hidden transitive dependencies hide a DNS provider behind a
//! CDN. This module closes that gap in three steps:
//!
//! 1. **Summaries** ([`extract`]): for every function in a file,
//!    record its declaration (name, enclosing impl type, visibility,
//!    whether it returns a value) and the first *unjustified* hazard
//!    site of each kind in its body — panic (`panic!`/`unwrap`/
//!    `expect`), wall-clock (`Instant`/`SystemTime`), RNG minting
//!    (`DetRng::new`, `Xoshiro256pp::seed_from_u64`/`from_seed`), and
//!    unordered hash iteration — plus every call it makes. Indexing
//!    sites and explicit `let _ =` discards are counted as summary
//!    statistics. A site covered by a `lint:allow` naming the base
//!    rule (or the matching interprocedural rule) is *discharged*: the
//!    justification holds for every caller, so it does not propagate.
//! 2. **Call graph** ([`CallGraph::build`]): conservative name/path
//!    resolution across the whole workspace. Method calls (`x.f()`)
//!    link to every method named `f`; `Type::f(…)` links to the
//!    associated fns of `Type` (falling back to free fns for module
//!    paths); bare `f(…)` links to every free fn named `f`. Closure
//!    bodies are scanned as part of their enclosing fn, so calls made
//!    through closures are over-approximated as direct.
//! 3. **Propagation** ([`CallGraph::build`] + [`evaluate`]): hazards
//!    flow callee→caller over the condensation of the graph, computed
//!    with the same iterative Tarjan SCC pattern as
//!    `ReachIndex` in `crates/core/src/reach.rs`. Components finish in
//!    reverse topological order, so one linear pass suffices; the
//!    recorded source for each hazard is the minimum node id, which
//!    makes the result independent of edge order and worker count.
//!
//! Three rules read the propagated state: `panic-reachable` (a pub fn
//! outside bench/testkit can reach a panic site beyond its own body),
//! `taint-escape` (wall-clock or iteration-order taint can reach a pub
//! fn's return value), and `seed-flow-transitive` (a pub fn outside
//! the seeded crates can reach an RNG-minting site). Each fires only
//! when the function has no unjustified site of that kind in its *own*
//! body — those are already reported, at the site, by the per-file
//! rules.

use crate::config::{self, Config};
use crate::dataflow::path_call;
use crate::diag::{Suppressed, Violation};
use crate::lexer::TokKind;
use crate::parser::{Block, FnItem, Item, ItemKind, ParsedFile, StmtKind};
use crate::rules;
use crate::scan::FileCtx;
use std::collections::{BTreeMap, BTreeSet};

/// Number of propagated hazard kinds.
pub const NHAZ: usize = 4;
/// Hazard index: a panic site is reachable.
pub const H_PANIC: usize = 0;
/// Hazard index: a wall-clock read is reachable.
pub const H_WALL: usize = 1;
/// Hazard index: an RNG-minting site is reachable.
pub const H_RNG: usize = 2;
/// Hazard index: unordered hash iteration is reachable.
pub const H_UNORD: usize = 3;

/// "No source" sentinel in per-node/per-component hazard sources.
const NONE: u32 = u32::MAX;

/// Hop cap when reconstructing a witness chain (defensive; workspace
/// call chains are far shorter).
const MAX_WITNESS_HOPS: usize = 12;

/// One call site, as recorded in a function summary.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CallRef {
    /// Path qualifier immediately before `::name(` (empty for bare and
    /// method calls). `Self` is resolved against the caller's impl.
    pub qual: String,
    /// Callee name.
    pub name: String,
    /// Whether this was a method call (`receiver.name(…)`).
    pub method: bool,
}

/// Per-function summary: everything propagation needs to know about
/// one fn without re-reading its source. Summaries are cached by file
/// content hash, so warm runs skip straight to graph propagation.
#[derive(Debug, Clone, Default)]
pub struct FnSummary {
    /// Function name.
    pub name: String,
    /// Head identifier of the enclosing `impl` type (empty for free fns).
    pub impl_type: String,
    /// Repo-relative path of the defining file.
    pub file: String,
    /// 1-based line of the declaration.
    pub line: u32,
    /// Trimmed declaration-line text, for diagnostics on warm runs.
    pub snippet: String,
    /// Whether the fn is `pub` (any visibility scope).
    pub is_pub: bool,
    /// Whether the fn takes a `self` receiver.
    pub has_self: bool,
    /// Whether the fn returns a value (non-`()` return type).
    pub ret_nonempty: bool,
    /// Line of the first unjustified panic site in the body (0 = none).
    pub panic_line: u32,
    /// Line of the first unjustified wall-clock read (0 = none).
    pub wall_line: u32,
    /// Line of the first unjustified RNG-minting site (0 = none).
    pub rng_line: u32,
    /// Line of the first unjustified unordered hash iteration (0 = none).
    pub unordered_line: u32,
    /// Count of indexing sites (`name[…]`) in the body. Summarized for
    /// the cache but not gated: without type information every slice
    /// read would taint its callers.
    pub index_count: u32,
    /// Count of explicit `let _ =` discards in the body. The precise
    /// per-file `result-dropped` rule gates these; the summary keeps
    /// the statistic available to tooling.
    pub discard_count: u32,
    /// Deduplicated calls the body makes.
    pub calls: Vec<CallRef>,
    /// Concurrency facet: guard regions, lock acquisitions, blocking
    /// operations, and atomic accesses (see [`crate::concurrency`]).
    pub conc: crate::concurrency::ConcFacet,
}

impl FnSummary {
    /// Display name: `Type::name` for methods/associated fns, `name`
    /// for free fns.
    pub fn qualified(&self) -> String {
        if self.impl_type.is_empty() {
            self.name.clone()
        } else {
            format!("{}::{}", self.impl_type, self.name)
        }
    }

    /// First unjustified site line of hazard `h` in this fn's own body
    /// (0 = none).
    pub fn own_site(&self, h: usize) -> u32 {
        match h {
            H_PANIC => self.panic_line,
            H_WALL => self.wall_line,
            H_RNG => self.rng_line,
            _ => self.unordered_line,
        }
    }
}

/// A suppression directive naming at least one interprocedural rule.
/// These are matched centrally (per-file passes cannot see reachability)
/// and cached alongside the file's summaries.
#[derive(Debug, Clone)]
pub struct InterprocAllow {
    /// The centrally-matched rules the directive names (interprocedural
    /// hazard rules and concurrency rules alike).
    pub rules: Vec<String>,
    /// Whether *every* rule the directive names is centrally matched.
    /// Only then do the central passes own its unused-allow reporting.
    pub all_interproc: bool,
    /// Justification text.
    pub reason: String,
    /// Line of the directive.
    pub line: u32,
    /// Inclusive line range the directive covers.
    pub covers: (u32, u32),
    /// Whether the directive has discharged a hazard site or matched a
    /// violation. Extraction-time discharges are cached with the file.
    pub used: bool,
}

/// One file's contribution to the interprocedural pass.
#[derive(Debug, Clone, Default)]
pub struct FileSummaries {
    /// Function summaries in source order.
    pub fns: Vec<FnSummary>,
    /// Suppressions naming interprocedural rules.
    pub allows: Vec<InterprocAllow>,
}

/// Extracts function summaries and interprocedural allows from one
/// parsed file. Test trees contribute nothing; fns declared on test
/// lines are skipped; hazard sites follow the same exemptions as the
/// per-file rules, so a site that is fine where it is written never
/// taints a caller.
pub fn extract(ctx: &FileCtx, parsed: &ParsedFile) -> FileSummaries {
    if ctx.in_test_tree {
        return FileSummaries::default();
    }
    let mut out = FileSummaries {
        fns: Vec::new(),
        allows: collect_allows(ctx),
    };
    let hash_names = rules::collect_hash_names(&ctx.code);
    let mut fns: Vec<(&Item, &FnItem, String)> = Vec::new();
    walk_with_impl(&parsed.items, "", &mut |item, func, impl_type| {
        fns.push((item, func, impl_type.to_string()));
    });
    for (item, func, impl_type) in fns {
        if ctx.is_test_line(item.line) {
            continue;
        }
        let Some(body) = &func.body else {
            continue;
        };
        let mut s = FnSummary {
            name: func.name.clone(),
            impl_type,
            file: ctx.rel_path.clone(),
            line: item.line,
            snippet: ctx.snippet(item.line),
            is_pub: item.is_pub,
            has_self: func.has_self,
            ret_nonempty: !func.ret.is_empty(),
            ..FnSummary::default()
        };
        scan_body(ctx, body, &hash_names, &mut out.allows, &mut s);
        crate::concurrency::scan_fn(ctx, func, body, &mut out.allows, &mut s);
        s.discard_count = count_discards(body);
        out.fns.push(s);
    }
    out
}

/// Retains the suppressions that name at least one centrally-matched
/// rule (interprocedural or concurrency), in directive order.
fn collect_allows(ctx: &FileCtx) -> Vec<InterprocAllow> {
    ctx.suppressions
        .iter()
        .filter(|s| s.rules.iter().any(|r| config::is_central_rule(r)))
        .map(|s| InterprocAllow {
            rules: s
                .rules
                .iter()
                .filter(|r| config::is_central_rule(r))
                .cloned()
                .collect(),
            all_interproc: s.rules.iter().all(|r| config::is_central_rule(r)),
            reason: s.reason.clone(),
            line: s.line,
            covers: s.covers,
            used: false,
        })
        .collect()
}

/// Whether a hazard site at `line` is justified: covered by a
/// suppression naming the base (per-file) rule, or by an
/// interprocedural allow naming `inter_rule` (which is marked used —
/// it discharged the site for every caller).
fn site_justified(
    ctx: &FileCtx,
    allows: &mut [InterprocAllow],
    line: u32,
    base_rule: &str,
    inter_rule: &str,
) -> bool {
    if ctx
        .suppressions
        .iter()
        .any(|s| s.rules.iter().any(|r| r == base_rule) && s.covers.0 <= line && line <= s.covers.1)
    {
        return true;
    }
    for a in allows.iter_mut() {
        if a.rules.iter().any(|r| r == inter_rule) && a.covers.0 <= line && line <= a.covers.1 {
            a.used = true;
            return true;
        }
    }
    false
}

/// Call-position names that are never workspace functions: control
/// keywords and the std prelude's tuple constructors. Filtering them
/// keeps cached summaries small; anything else unresolvable simply
/// produces no edge.
pub(crate) const NON_CALLEES: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "in", "as", "let", "else", "move", "fn",
    "unsafe", "await", "Some", "None", "Ok", "Err",
];

/// Scans one fn body's token range for hazard sites and calls. Nested
/// fn items' ranges are inside their parent's, so their sites are
/// conservatively attributed to both.
fn scan_body(
    ctx: &FileCtx,
    body: &Block,
    hash_names: &BTreeSet<String>,
    allows: &mut [InterprocAllow],
    s: &mut FnSummary,
) {
    let code = &ctx.code;
    let crate_name = ctx.crate_name.as_deref();
    let panic_site_exempt = ctx.is_bin || crate_name == Some("bench");
    let wall_site_exempt = config::wall_clock_exempt(&ctx.rel_path, crate_name);
    let rng_site_exempt = config::seed_flow_exempt(&ctx.rel_path, crate_name);
    let mut calls: BTreeSet<CallRef> = BTreeSet::new();
    let end = body.end.min(code.len());
    for i in body.start..end {
        let t = &code[i];
        if t.kind != TokKind::Ident || ctx.is_test_line(t.line) {
            continue;
        }
        let prev_dot = i > body.start && code[i - 1].is_punct('.');
        let next_paren = code.get(i + 1).is_some_and(|n| n.is_punct('('));
        let next_bang = code.get(i + 1).is_some_and(|n| n.is_punct('!'));

        // Panic sites, mirroring rule_panic's exemptions.
        if !panic_site_exempt
            && s.panic_line == 0
            && ((prev_dot && next_paren && (t.is_ident("unwrap") || t.is_ident("expect")))
                || (t.is_ident("panic") && next_bang))
            && !site_justified(ctx, allows, t.line, "panic", "panic-reachable")
        {
            s.panic_line = t.line;
        }

        // Wall-clock reads, mirroring rule_wall_clock.
        if !wall_site_exempt
            && s.wall_line == 0
            && (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && !site_justified(ctx, allows, t.line, "wall-clock", "taint-escape")
        {
            s.wall_line = t.line;
        }

        // RNG-minting sites, mirroring rule_seed_flow.
        if !rng_site_exempt && s.rng_line == 0 {
            let is_ctor = (t.is_ident("DetRng") && path_call(code, i, "new"))
                || (t.is_ident("Xoshiro256pp")
                    && (path_call(code, i, "seed_from_u64") || path_call(code, i, "from_seed")));
            if is_ctor && !site_justified(ctx, allows, t.line, "seed-flow", "seed-flow-transitive")
            {
                s.rng_line = t.line;
            }
        }

        // Unordered hash iteration, mirroring rule_hash_iter.
        if s.unordered_line == 0 && !hash_names.is_empty() {
            let method_iter = rules::ITER_METHODS.iter().any(|m| t.is_ident(m))
                && i >= body.start + 2
                && code[i - 1].is_punct('.')
                && code[i - 2].kind == TokKind::Ident
                && hash_names.contains(code[i - 2].text.as_str())
                && next_paren
                && !rules::sanctioned(code, i);
            let loop_site = if t.is_ident("for") {
                rules::for_loop_receiver(code, i).filter(|(idx, recv)| {
                    hash_names.contains(recv.as_str()) && !rules::sanctioned(code, *idx)
                })
            } else {
                None
            };
            if let Some((idx, _)) = loop_site {
                if !site_justified(ctx, allows, code[idx].line, "hash-iter", "taint-escape") {
                    s.unordered_line = code[idx].line;
                }
            } else if method_iter
                && !site_justified(ctx, allows, t.line, "hash-iter", "taint-escape")
            {
                s.unordered_line = t.line;
            }
        }

        // Indexing sites (summarized, not gated).
        if code.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            s.index_count += 1;
        }

        // Call sites: `name(` / `recv.name(` / `Qual::name(`.
        if next_paren && !NON_CALLEES.iter().any(|k| t.is_ident(k)) {
            let qual = if i >= body.start + 3
                && code[i - 1].is_punct(':')
                && code[i - 2].is_punct(':')
                && code[i - 3].kind == TokKind::Ident
            {
                code[i - 3].text.clone()
            } else {
                String::new()
            };
            calls.insert(CallRef {
                method: prev_dot,
                qual: if prev_dot { String::new() } else { qual },
                name: t.text.clone(),
            });
        }
    }
    s.calls = calls.into_iter().collect();
}

/// Counts explicit `let _ =` discards in a body, nested blocks included.
fn count_discards(body: &Block) -> u32 {
    let mut n = 0u32;
    let mut stack = vec![body];
    while let Some(b) = stack.pop() {
        for stmt in &b.stmts {
            if matches!(stmt.kind, StmtKind::Let { discard: true, .. }) {
                n += 1;
            }
            for nested in &stmt.nested {
                stack.push(nested);
            }
        }
    }
    n
}

/// Walks every fn with the head type of its enclosing `impl` block (an
/// empty string for free fns). Fns nested in statement position are
/// free; [`crate::parser::walk_fns`] lacks the impl context, hence the
/// local walker.
fn walk_with_impl<'a>(
    items: &'a [Item],
    impl_type: &str,
    f: &mut dyn FnMut(&'a Item, &'a FnItem, &str),
) {
    for item in items {
        walk_item(item, impl_type, f);
    }
}

fn walk_item<'a>(item: &'a Item, impl_type: &str, f: &mut dyn FnMut(&'a Item, &'a FnItem, &str)) {
    match &item.kind {
        ItemKind::Fn(func) => {
            f(item, func, impl_type);
            if let Some(body) = &func.body {
                walk_body(body, f);
            }
        }
        ItemKind::Mod { items, .. } => walk_with_impl(items, "", f),
        ItemKind::Impl { type_name, items } => walk_with_impl(items, type_name, f),
        _ => {}
    }
}

fn walk_body<'a>(block: &'a Block, f: &mut dyn FnMut(&'a Item, &'a FnItem, &str)) {
    for stmt in &block.stmts {
        if let StmtKind::Item(item) = &stmt.kind {
            walk_item(item, "", f);
        }
        for b in &stmt.nested {
            walk_body(b, f);
        }
    }
}

/// The workspace call graph with propagated hazard state.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All function summaries, in (file, declaration) order. The node
    /// id is the index; ids are deterministic because file order is.
    pub nodes: Vec<FnSummary>,
    /// Resolved callee node ids per node, sorted and deduplicated.
    edges: Vec<Vec<u32>>,
    /// Per-node, per-hazard: node id of the minimum-id reachable
    /// source fn with an unjustified site ([`NONE`] when unreachable).
    sources: Vec<[u32; NHAZ]>,
}

/// Conservative call-target resolution over a node set: free fns and
/// methods by name, associated fns by (type, name). Duplicates keep
/// every candidate. Shared by [`CallGraph::build`] and the concurrency
/// pass's helper-guard resolution.
pub(crate) struct Resolver<'a> {
    free: BTreeMap<&'a str, Vec<u32>>,
    methods: BTreeMap<&'a str, Vec<u32>>,
    assoc: BTreeMap<(&'a str, &'a str), Vec<u32>>,
}

impl<'a> Resolver<'a> {
    /// Indexes the node set. Candidate lists are in node-id order.
    pub(crate) fn new(nodes: &'a [FnSummary]) -> Resolver<'a> {
        let mut free: BTreeMap<&str, Vec<u32>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<u32>> = BTreeMap::new();
        let mut assoc: BTreeMap<(&str, &str), Vec<u32>> = BTreeMap::new();
        for (id, s) in nodes.iter().enumerate() {
            let id = id as u32;
            if s.impl_type.is_empty() && !s.has_self {
                free.entry(&s.name).or_default().push(id);
            }
            if !s.impl_type.is_empty() {
                assoc.entry((&s.impl_type, &s.name)).or_default().push(id);
            }
            if s.has_self {
                methods.entry(&s.name).or_default().push(id);
            }
        }
        Resolver {
            free,
            methods,
            assoc,
        }
    }

    /// Candidate callee ids for one call site from `caller`, in node-id
    /// order (empty when nothing resolves).
    pub(crate) fn targets<'s>(&'s self, caller: &'s FnSummary, c: &'s CallRef) -> &'s [u32] {
        let targets: Option<&Vec<u32>> = if c.method {
            self.methods.get(c.name.as_str())
        } else if !c.qual.is_empty() {
            let ty: &str = if c.qual == "Self" {
                &caller.impl_type
            } else {
                &c.qual
            };
            // A miss means the qualifier was a module path, not a
            // type; fall back to free-fn resolution.
            self.assoc
                .get(&(ty, c.name.as_str()))
                .or_else(|| self.free.get(c.name.as_str()))
        } else {
            self.free.get(c.name.as_str())
        };
        targets.map(Vec::as_slice).unwrap_or(&[])
    }
}

impl CallGraph {
    /// Builds the graph from all files' summaries (already in sorted
    /// file order) and propagates hazards over its SCC condensation.
    pub fn build(nodes: Vec<FnSummary>) -> CallGraph {
        let n = nodes.len();
        let mut edges: Vec<Vec<u32>> = vec![Vec::new(); n];
        {
            let resolver = Resolver::new(&nodes);
            for (id, s) in nodes.iter().enumerate() {
                let mut out: BTreeSet<u32> = BTreeSet::new();
                for c in &s.calls {
                    out.extend(resolver.targets(s, c).iter().copied());
                }
                edges[id] = out.into_iter().collect();
            }
        }
        let sources = propagate(&nodes, &edges);
        CallGraph {
            nodes,
            edges,
            sources,
        }
    }

    /// The resolved adjacency lists (callee ids per node, sorted).
    pub(crate) fn edge_lists(&self) -> &[Vec<u32>] {
        &self.edges
    }

    /// The propagated hazard sources of node `id`.
    pub fn sources_of(&self, id: usize) -> [u32; NHAZ] {
        self.sources.get(id).copied().unwrap_or([NONE; NHAZ])
    }

    /// Reconstructs a witness call chain from node `from` to the
    /// hazard-`h` source node `src`, as ` via a -> b -> c`. Greedy and
    /// deterministic: each hop takes the smallest-id unvisited callee
    /// whose propagated source is still `src`. Returns an empty string
    /// when `from` is the source itself or no chain is found within
    /// the hop cap.
    fn witness(&self, from: usize, h: usize, src: u32) -> String {
        if from as u32 == src {
            return String::new();
        }
        let mut chain = vec![from];
        let mut visited: BTreeSet<usize> = BTreeSet::new();
        visited.insert(from);
        let mut cur = from;
        for _ in 0..MAX_WITNESS_HOPS {
            let next = self
                .edges
                .get(cur)
                .into_iter()
                .flatten()
                .map(|&w| w as usize)
                .find(|&w| !visited.contains(&w) && (w as u32 == src || self.sources[w][h] == src));
            let Some(w) = next else {
                return String::new();
            };
            chain.push(w);
            visited.insert(w);
            if w as u32 == src {
                let names: Vec<String> = chain.iter().map(|&i| self.nodes[i].qualified()).collect();
                return format!(" via {}", names.join(" -> "));
            }
            cur = w;
        }
        String::new()
    }
}

/// Propagates hazard sources callee→caller over the SCC condensation,
/// using the iterative Tarjan pattern from `core::reach::ReachIndex`:
/// components are emitted in reverse topological order (every callee
/// component before its callers), so each component's sources are
/// final the moment it pops. The source kept per component is the
/// minimum contributing node id — independent of traversal order.
fn propagate(nodes: &[FnSummary], edges: &[Vec<u32>]) -> Vec<[u32; NHAZ]> {
    let n = nodes.len();
    let mut index_of = vec![0u32; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut comp_of = vec![u32::MAX; n];
    let mut comp_sources: Vec<[u32; NHAZ]> = Vec::new();
    let mut next_index = 1u32;
    let mut dfs: Vec<(u32, usize)> = Vec::new();

    for root in 0..n as u32 {
        if index_of[root as usize] != 0 {
            continue;
        }
        dfs.push((root, 0));
        index_of[root as usize] = next_index;
        low[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut row)) = dfs.last_mut() {
            let vu = v as usize;
            if let Some(&w) = edges[vu].get(*row) {
                *row += 1;
                let wu = w as usize;
                if index_of[wu] == 0 {
                    index_of[wu] = next_index;
                    low[wu] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[wu] = true;
                    dfs.push((w, 0));
                } else if on_stack[wu] {
                    low[vu] = low[vu].min(index_of[wu]);
                }
                continue;
            }
            // v is exhausted: pop, merge low into parent, and emit a
            // component when v is its root.
            dfs.pop();
            if let Some(&(p, _)) = dfs.last() {
                let pu = p as usize;
                low[pu] = low[pu].min(low[vu]);
            }
            if low[vu] != index_of[vu] {
                continue;
            }
            let c = comp_sources.len() as u32;
            let mut members: Vec<u32> = Vec::new();
            while let Some(w) = stack.pop() {
                on_stack[w as usize] = false;
                comp_of[w as usize] = c;
                members.push(w);
                if w == v {
                    break;
                }
            }
            let mut src = [NONE; NHAZ];
            for &m in &members {
                let mu = m as usize;
                for h in 0..NHAZ {
                    if nodes[mu].own_site(h) != 0 {
                        src[h] = src[h].min(m);
                    }
                }
                for &w in &edges[mu] {
                    let wc = comp_of[w as usize];
                    if wc == c {
                        continue;
                    }
                    debug_assert_ne!(wc, u32::MAX, "callee component emitted first");
                    let callee = comp_sources[wc as usize];
                    for h in 0..NHAZ {
                        src[h] = src[h].min(callee[h]);
                    }
                }
            }
            comp_sources.push(src);
        }
    }

    (0..n).map(|v| comp_sources[comp_of[v] as usize]).collect()
}

/// The three interprocedural hazard rules, evaluated over the
/// propagated graph. Unused-allow reporting is split out into
/// [`unused_allows`] so it can run after *both* central passes (this
/// one and [`crate::concurrency::evaluate`] share the allow list).
pub fn evaluate(
    graph: &CallGraph,
    cfg: &Config,
    allows: &mut [(String, InterprocAllow)],
) -> (Vec<Violation>, Vec<Suppressed>) {
    let mut violations = Vec::new();
    let mut suppressed = Vec::new();
    for (id, node) in graph.nodes.iter().enumerate() {
        if !node.is_pub || node.file.ends_with("src/main.rs") || node.file.contains("/bin/") {
            continue;
        }
        let crate_name = crate_of(&node.file);
        let crate_name = crate_name.as_deref();
        let src = graph.sources_of(id);

        let mut emit = |rule: &str, message: String| {
            let v = Violation {
                rule: rule.to_string(),
                severity: cfg.severity(rule),
                file: node.file.clone(),
                line: node.line,
                message,
                snippet: node.snippet.clone(),
            };
            let matched = allows.iter_mut().find(|(file, a)| {
                file == &node.file
                    && a.rules.iter().any(|r| r == rule)
                    && a.covers.0 <= node.line
                    && node.line <= a.covers.1
            });
            match matched {
                Some((_, a)) => {
                    a.used = true;
                    suppressed.push(Suppressed {
                        violation: v,
                        reason: a.reason.clone(),
                        allow_line: a.line,
                    });
                }
                None => violations.push(v),
            }
        };

        if cfg.enabled("panic-reachable")
            && !config::panic_reachable_exempt(crate_name)
            && src[H_PANIC] != NONE
            && node.panic_line == 0
        {
            let s = &graph.nodes[src[H_PANIC] as usize];
            emit(
                "panic-reachable",
                format!(
                    "pub fn `{}` can reach a panic site in `{}` ({}:{}){}; return a typed error or justify with lint:allow(panic-reachable)",
                    node.qualified(),
                    s.qualified(),
                    s.file,
                    s.panic_line,
                    graph.witness(id, H_PANIC, src[H_PANIC]),
                ),
            );
        }
        if cfg.enabled("taint-escape") && node.ret_nonempty {
            if src[H_WALL] != NONE
                && node.wall_line == 0
                && !config::wall_clock_exempt(&node.file, crate_name)
            {
                let s = &graph.nodes[src[H_WALL] as usize];
                emit(
                    "taint-escape",
                    format!(
                        "return value of pub fn `{}` can carry wall-clock taint from `{}` ({}:{}){}; route time through dns::clock or justify with lint:allow(taint-escape)",
                        node.qualified(),
                        s.qualified(),
                        s.file,
                        s.wall_line,
                        graph.witness(id, H_WALL, src[H_WALL]),
                    ),
                );
            }
            if src[H_UNORD] != NONE && node.unordered_line == 0 {
                let s = &graph.nodes[src[H_UNORD] as usize];
                emit(
                    "taint-escape",
                    format!(
                        "return value of pub fn `{}` can carry hash-iteration-order taint from `{}` ({}:{}){}; sort at the source or justify with lint:allow(taint-escape)",
                        node.qualified(),
                        s.qualified(),
                        s.file,
                        s.unordered_line,
                        graph.witness(id, H_UNORD, src[H_UNORD]),
                    ),
                );
            }
        }
        if cfg.enabled("seed-flow-transitive")
            && !config::seed_flow_exempt(&node.file, crate_name)
            && src[H_RNG] != NONE
            && node.rng_line == 0
        {
            let s = &graph.nodes[src[H_RNG] as usize];
            emit(
                "seed-flow-transitive",
                format!(
                    "pub fn `{}` can reach an RNG-minting site in `{}` ({}:{}){}; thread &mut DetRng from the world seed or justify with lint:allow(seed-flow-transitive)",
                    node.qualified(),
                    s.qualified(),
                    s.file,
                    s.rng_line,
                    graph.witness(id, H_RNG, src[H_RNG]),
                ),
            );
        }
    }
    (violations, suppressed)
}

/// Unused-allow sites: `(file, line)` pairs for directives that name
/// *only* centrally-matched rules and silenced nothing (mixed
/// directives stay owned by the per-file pass). Must run after every
/// central pass has had its chance to mark directives used.
pub fn unused_allows(allows: &[(String, InterprocAllow)]) -> Vec<(String, u32)> {
    allows
        .iter()
        .filter(|(_, a)| !a.used && a.all_interproc)
        .map(|(file, a)| (file.clone(), a.line))
        .collect()
}

fn crate_of(rel: &str) -> Option<String> {
    rel.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .map(|s| s.to_string())
}
