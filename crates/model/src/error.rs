//! Error types for the foundation layer.

use std::fmt;

/// Errors produced while constructing or manipulating model types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A domain name failed syntactic validation.
    InvalidDomainName {
        /// The offending input.
        input: String,
        /// Human-readable reason for the rejection.
        reason: &'static str,
    },
    /// A rank of zero was supplied; ranks are 1-based like the Alexa list.
    ZeroRank,
    /// A provider reference (catalog name or wire identity) matched
    /// nothing in the world being analyzed.
    UnknownProvider {
        /// The reference as given by the caller.
        name: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidDomainName { input, reason } => {
                write!(f, "invalid domain name {input:?}: {reason}")
            }
            ModelError::ZeroRank => write!(f, "ranks are 1-based; 0 is not a valid rank"),
            ModelError::UnknownProvider { name } => {
                write!(
                    f,
                    "unknown provider {name:?}: not a catalog name or wire identity"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}
