//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--scale N] [--seed S] [--exp ID]... [--list]
//! ```
//!
//! Without `--exp`, every experiment runs in paper order. `--scale`
//! sets the site population per snapshot (default 20 000; the paper's
//! scale is 100 000 — use it when you have a few minutes).

use std::process::ExitCode;
use webdeps_reports::{all_experiment_ids, run_experiment, Workspace};

struct Args {
    scale: usize,
    seed: u64,
    experiments: Vec<String>,
    list: bool,
    dot: Option<String>,
    csv: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: 20_000,
        seed: 42,
        experiments: Vec::new(),
        list: false,
        dot: None,
        csv: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                args.scale = v.parse().map_err(|_| format!("bad --scale {v:?}"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad --seed {v:?}"))?;
            }
            "--exp" => {
                let v = it.next().ok_or("--exp needs a value")?;
                args.experiments.push(v);
            }
            "--list" => args.list = true,
            "--dot" => args.dot = Some(it.next().ok_or("--dot needs a path")?),
            "--csv" => args.csv = Some(it.next().ok_or("--csv needs a directory")?),
            "--help" | "-h" => {
                return Err(
                    "usage: repro [--scale N] [--seed S] [--exp ID]... [--dot FILE] [--csv DIR] [--list]"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.list {
        for id in all_experiment_ids() {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let ids: Vec<String> = if args.experiments.is_empty() {
        all_experiment_ids().iter().map(|s| s.to_string()).collect()
    } else {
        args.experiments.clone()
    };
    for id in &ids {
        if !all_experiment_ids().contains(&id.as_str()) {
            eprintln!("unknown experiment {id:?}; use --list");
            return ExitCode::FAILURE;
        }
    }

    eprintln!(
        "building workspace: 2×{} sites (2016+2020) + 200 hospitals, seed {} …",
        args.scale, args.seed
    );
    // lint:allow(wall-clock) — operator-facing progress timing in a CLI binary; never feeds into results
    let start = std::time::Instant::now();
    let ws = Workspace::new(args.seed, args.scale);
    eprintln!("workspace ready in {:.1?}\n", start.elapsed());

    for id in &ids {
        let report = run_experiment(&ws, id).expect("ids validated above");
        println!("{}", report.render());
    }

    if let Some(path) = &args.dot {
        // The Figure 5 graphs, renderable with `dot -Tsvg`.
        let dot = webdeps_core::to_dot(&ws.graph20, &webdeps_core::DotOptions::default());
        if let Err(e) = std::fs::write(path, dot) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("dependency graph written to {path} (render with `dot -Tsvg`)");
    }
    if let Some(dir) = &args.csv {
        let dir = std::path::Path::new(dir);
        if let Err(e) = webdeps_reports::write_csv_dir(&ws.ds20, dir) {
            eprintln!("failed to write CSVs to {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "2020 dataset written to {}/sites.csv and providers.csv",
            dir.display()
        );
    }
    ExitCode::SUCCESS
}
