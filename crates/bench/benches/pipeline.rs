//! End-to-end benchmarks: world generation and the full measurement
//! pipeline at several scales, plus an outage simulation.

use std::hint::black_box;
use webdeps_bench::harness::Harness;
use webdeps_core::simulate_outage;
use webdeps_measure::measure_world;
use webdeps_worldgen::{SnapshotYear, World, WorldConfig};

fn pipeline(h: &mut Harness) {
    let mut group = h.benchmark_group("pipeline/worldgen");
    group.sample_size(10);
    for &n in &[500usize, 2_000] {
        group.bench_function(format!("generate/{n}"), |b| {
            b.iter(|| {
                black_box(World::generate(WorldConfig {
                    seed: 7,
                    n_sites: n,
                    year: SnapshotYear::Y2020,
                }))
            });
        });
    }
    group.finish();

    let mut group = h.benchmark_group("pipeline/measure");
    group.sample_size(10);
    for &n in &[500usize, 2_000] {
        let world = World::generate(WorldConfig {
            seed: 7,
            n_sites: n,
            year: SnapshotYear::Y2020,
        });
        group.bench_function(format!("measure_world/{n}"), |b| {
            b.iter(|| black_box(measure_world(&world)));
        });
    }
    // The scaling target: one order of magnitude above the 1K band,
    // where crawl sharding dominates. Fewer samples keep the wall time
    // sane on single-core runners.
    {
        let world = World::generate(WorldConfig {
            seed: 7,
            n_sites: 10_000,
            year: SnapshotYear::Y2020,
        });
        group.sample_size(5);
        group.bench_function("measure_world/10000", |b| {
            b.iter(|| black_box(measure_world(&world)));
        });
    }
    group.finish();

    let mut group = h.benchmark_group("pipeline/outage");
    group.sample_size(10);
    let world = World::generate(WorldConfig {
        seed: 7,
        n_sites: 2_000,
        year: SnapshotYear::Y2020,
    });
    group.bench_function("simulate_cloudflare_outage", |b| {
        b.iter(|| black_box(simulate_outage(&world, &["Cloudflare"], false)));
    });
    group.finish();
}

fn main() {
    let mut h = Harness::new("pipeline");
    pipeline(&mut h);
    h.finish();
}
