//! Memoized reverse reachability.
//!
//! [`crate::metrics::Metrics::score_bfs`] answers "which sites depend
//! on provider `p`?" with one reverse BFS per provider — ranking every
//! provider of a kind repeats the same frontier expansions over and
//! over, so a full ranking scales as (providers × full BFS). A
//! [`ReachIndex`] shares that work: it condenses the provider-consumer
//! subgraph into strongly connected components once, then computes each
//! component's dependent-site set in a single pass over the
//! condensation, so every provider's answer is a table lookup.
//!
//! Correctness under cycles is the point of the SCC step: naive
//! per-provider memoization is wrong when providers depend on each
//! other mutually (the set "reachable from `p`" is not a function of
//! `p`'s direct consumers alone), but every member of an SCC reaches
//! exactly the same sites, and Tarjan's algorithm emits components in
//! reverse topological order — all consumer components of `C` are
//! finished before `C` itself — so one union pass suffices. The result
//! equals `score_bfs` for every provider, which the metrics tests and
//! `tests/parallel_determinism.rs` assert.
//!
//! Storage is columnar end to end: the DFS walks the graph's CSR
//! in-edge rows directly (no adjacency materialization), and the only
//! per-provider state is a [`SiteSet`] bitset per component — at 1M
//! sites that is the difference between an index that fits in cache
//! lines and one that chases a `Vec<Vec<_>>` per node.
//!
//! Invalidation: an index borrows its graph immutably for its entire
//! lifetime, so it can never observe a stale graph — rebuilding after a
//! mutation is enforced at compile time (the columnar [`DepGraph`] is
//! immutable once built). The index also deliberately has no hooks into
//! the *behavioral* layer: schedule-aware sweeps (`simulate_outage_at`)
//! probe the simulator afresh at every instant precisely because
//! availability at time `t` is not a graph property, so nothing cached
//! here can go stale across ticks.

use crate::graph::{DepGraph, NodeId, NodeKind};
use crate::metrics::MetricOptions;
use std::collections::{BTreeMap, HashSet};
use webdeps_model::{ServiceKind, SiteId};

/// A dense bitset over [`SiteId`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteSet {
    words: Vec<u64>,
}

impl SiteSet {
    /// An empty set with room for raw site indexes `< bound`.
    pub fn with_bound(bound: usize) -> Self {
        SiteSet {
            words: vec![0; bound.div_ceil(64)],
        }
    }

    /// Inserts a site.
    pub fn insert(&mut self, site: SiteId) {
        let idx = site.index();
        let word = idx / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1u64 << (idx % 64);
    }

    /// Membership test.
    pub fn contains(&self, site: SiteId) -> bool {
        let idx = site.index();
        self.words
            .get(idx / 64)
            .is_some_and(|w| w & (1u64 << (idx % 64)) != 0)
    }

    /// Unions `other` into `self`.
    pub fn union_with(&mut self, other: &SiteSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Number of sites in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Sites in ascending id order. Iteration is proportional to the
    /// *population*, not the bound: each word yields its set bits via
    /// `trailing_zeros` and clear-lowest-bit, and zero words cost one
    /// comparison — this is the hot loop under `dependent_sites`, where
    /// the old 64-probe-per-word scan burned a fixed 64× overhead on
    /// sparse sets.
    pub fn iter(&self) -> impl Iterator<Item = SiteId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut rest = word;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(SiteId::from_index(wi * 64 + bit))
            })
        })
    }

    /// Bytes of heap owned by the bitset.
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

/// Shared reverse-reachability over one `(critical_only, opts)`
/// configuration of a graph.
pub struct ReachIndex<'g> {
    graph: &'g DepGraph,
    /// Node → condensation component (`u32::MAX` for non-providers).
    comp_of: Vec<u32>,
    /// Per-component dependent-site sets, in Tarjan emission order.
    sets: Vec<SiteSet>,
    /// Per-component popcounts, precomputed so scoring is O(1).
    counts: Vec<usize>,
}

impl<'g> ReachIndex<'g> {
    /// Builds the index: SCC condensation of the allowed
    /// provider-consumer subgraph, then one dependent-site set per
    /// component. `critical_only = true` indexes impact, `false`
    /// concentration — the same switch as
    /// [`crate::metrics::Metrics::score_bfs`].
    ///
    /// The DFS streams the CSR in-edge rows directly, applying the
    /// traversal filter (criticality, option-allowed hop kinds,
    /// provider-consumer) per edge — the filter is evaluated at most
    /// twice per edge (tree walk + component emission), which beats
    /// materializing a filtered adjacency first at every scale.
    pub fn build(graph: &'g DepGraph, critical_only: bool, opts: &MetricOptions) -> Self {
        let n = graph.node_count();
        let bound = graph.site_id_bound();

        // Per-node provider kind (service-kind column), u8-packed;
        // `NONE` marks site nodes.
        const NONE: u8 = u8::MAX;
        let kind_of: Vec<u8> = (0..n)
            .map(|v| match graph.node(NodeId(v as u32)) {
                NodeKind::Provider(_, k) => k as u8,
                NodeKind::Site(_) => NONE,
            })
            .collect();
        let kind_back = |b: u8| -> ServiceKind {
            match b {
                0 => ServiceKind::Dns,
                1 => ServiceKind::Cdn,
                2 => ServiceKind::Ca,
                _ => ServiceKind::Cloud,
            }
        };

        // The allowed provider→provider-consumer step, mirroring the
        // BFS traversal filter exactly: from edge `e` into node `v`,
        // yield the consumer node if it passes.
        let step = |v: usize, e: u32| -> Option<usize> {
            let (w, ek) = graph.edge_source(e);
            if critical_only && !ek.critical {
                return None;
            }
            let wk = kind_of[w as usize];
            if wk == NONE {
                return None;
            }
            if !opts.allows(kind_back(wk), kind_back(kind_of[v])) {
                return None;
            }
            Some(w as usize)
        };

        // Iterative Tarjan over provider nodes. `index_of` doubles as
        // the visited marker (0 = unvisited, else DFS index + 1).
        let mut index_of = vec![0u32; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut comp_of = vec![u32::MAX; n];
        let mut sets: Vec<SiteSet> = Vec::new();
        let mut counts: Vec<usize> = Vec::new();
        let mut next_index = 1u32;

        for start in 0..n {
            if index_of[start] != 0 || kind_of[start] == NONE {
                continue;
            }
            index_of[start] = next_index;
            low[start] = next_index;
            next_index += 1;
            stack.push(start as u32);
            on_stack[start] = true;
            // DFS frame: (node, position within its CSR in-edge row).
            let mut dfs: Vec<(usize, usize)> = vec![(start, 0)];
            while let Some(frame) = dfs.last_mut() {
                let v = frame.0;
                let row = graph.in_edge_ids(v);
                let mut descended = false;
                while frame.1 < row.len() {
                    let e = row[frame.1];
                    frame.1 += 1;
                    let Some(w) = step(v, e) else {
                        continue;
                    };
                    if index_of[w] == 0 {
                        index_of[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w as u32);
                        on_stack[w] = true;
                        dfs.push((w, 0));
                        descended = true;
                        break;
                    } else if on_stack[w] {
                        low[v] = low[v].min(index_of[w]);
                    }
                }
                if descended {
                    continue;
                }
                dfs.pop();
                if let Some(parent) = dfs.last() {
                    low[parent.0] = low[parent.0].min(low[v]);
                }
                if low[v] == index_of[v] {
                    // Emit the component rooted at v. Tarjan's
                    // reverse-topological emission order guarantees
                    // every cross-component successor already has its
                    // set computed.
                    let comp = sets.len() as u32;
                    let mut members: Vec<u32> = Vec::new();
                    loop {
                        let w = match stack.pop() {
                            Some(w) => w,
                            None => break,
                        };
                        on_stack[w as usize] = false;
                        comp_of[w as usize] = comp;
                        members.push(w);
                        if w as usize == v {
                            break;
                        }
                    }
                    let mut set = SiteSet::with_bound(bound);
                    for &m in &members {
                        for &e in graph.in_edge_ids(m as usize) {
                            let (src, ek) = graph.edge_source(e);
                            if critical_only && !ek.critical {
                                continue;
                            }
                            if let NodeKind::Site(site) = graph.node(NodeId(src)) {
                                set.insert(site);
                            }
                        }
                        for &e in graph.in_edge_ids(m as usize) {
                            let Some(w) = step(m as usize, e) else {
                                continue;
                            };
                            let c = comp_of[w];
                            if c != comp {
                                debug_assert_ne!(c, u32::MAX, "successor emitted first");
                                set.union_with(&sets[c as usize]);
                            }
                        }
                    }
                    counts.push(set.count());
                    sets.push(set);
                }
            }
        }

        ReachIndex {
            graph,
            comp_of,
            sets,
            counts,
        }
    }

    /// Number of sites depending on `provider` — equals
    /// `score_bfs(provider, …).len()` for the index's configuration.
    /// Non-provider nodes score 0, like the BFS.
    pub fn dependent_count(&self, provider: NodeId) -> usize {
        match self.comp_of.get(provider.index()) {
            Some(&c) if c != u32::MAX => self.counts[c as usize],
            _ => 0,
        }
    }

    /// The dependent-site bitset of `provider`, or `None` for
    /// non-provider nodes.
    pub fn dependent_set(&self, provider: NodeId) -> Option<&SiteSet> {
        match self.comp_of.get(provider.index()) {
            Some(&c) if c != u32::MAX => Some(&self.sets[c as usize]),
            _ => None,
        }
    }

    /// The dependent sites of `provider` as a hash set — drop-in for
    /// [`crate::metrics::Metrics::dependent_sites`].
    pub fn dependent_sites(&self, provider: NodeId) -> HashSet<SiteId> {
        self.dependent_set(provider)
            .map(|s| s.iter().collect())
            .unwrap_or_default()
    }

    /// The graph this index was built over.
    pub fn graph(&self) -> &'g DepGraph {
        self.graph
    }

    /// Bytes of heap owned by the index (component map, popcounts, and
    /// every component bitset).
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.comp_of.capacity() * size_of::<u32>()
            + self.counts.capacity() * size_of::<usize>()
            + self.sets.capacity() * size_of::<SiteSet>()
            + self.sets.iter().map(|s| s.heap_bytes()).sum::<usize>()
    }
}

/// A provider endpoint in a [`Churn`] delta: wire key plus service
/// kind. The service of an edge is always the kind of the provider
/// being consumed, matching how [`DepGraph::from_dataset`] wires edges.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ProviderRef {
    /// Registrable-domain wire identity, e.g. `"dynect.net"`.
    pub key: String,
    /// The service this provider offers.
    pub kind: ServiceKind,
}

impl ProviderRef {
    /// Convenience constructor.
    pub fn new(key: impl Into<String>, kind: ServiceKind) -> Self {
        ProviderRef {
            key: key.into(),
            kind,
        }
    }
}

/// One churn delta against the provider-consumer graph — the events a
/// resident service must absorb without a full re-measurement: sites
/// switching CDN/DNS, providers multi-homing or dropping a dependency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Churn {
    /// A site gains a dependency on a provider (e.g. adopts a CDN).
    AddSiteEdge {
        /// The consuming site.
        site: SiteId,
        /// The provider gained.
        provider: ProviderRef,
        /// Whether the new dependency is critical (sole provider).
        critical: bool,
    },
    /// A site drops a dependency on a provider.
    RemoveSiteEdge {
        /// The consuming site.
        site: SiteId,
        /// The provider dropped.
        provider: ProviderRef,
        /// Criticality of the specific edge instance to remove.
        critical: bool,
    },
    /// A provider starts consuming another provider (multi-homes onto
    /// a DNS operator, fronts itself with a CDN, …).
    AddProviderEdge {
        /// The consuming provider.
        from: ProviderRef,
        /// The provider consumed.
        to: ProviderRef,
        /// Whether the new dependency is critical.
        critical: bool,
    },
    /// A provider drops a dependency on another provider.
    RemoveProviderEdge {
        /// The consuming provider.
        from: ProviderRef,
        /// The provider no longer consumed.
        to: ProviderRef,
        /// Criticality of the specific edge instance to remove.
        critical: bool,
    },
}

/// Why a churn delta could not be applied. The index is untouched when
/// an error is returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnError {
    /// A removal referenced an edge that does not exist.
    NoSuchEdge {
        /// Human-readable description of the missing edge.
        detail: String,
    },
}

impl std::fmt::Display for ChurnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnError::NoSuchEdge { detail } => write!(f, "no such edge: {detail}"),
        }
    }
}

/// How a delta was absorbed: an SCC-local patch or a full Tarjan
/// rebuild (taken automatically whenever the patch would invalidate a
/// condensation invariant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyKind {
    /// The condensation structure was provably unchanged; only the
    /// affected components' site sets were touched.
    Patched,
    /// The delta could merge or split strongly connected components;
    /// the whole condensation was rebuilt from scratch.
    Rebuilt,
}

/// Sentinel kind byte for site nodes inside [`MutableReach`].
const SITE_KIND: u8 = u8::MAX;

/// Sentinel for "no value" in dense u32 columns.
const NONE_U32: u32 = u32::MAX;

fn kind_byte(kind: ServiceKind) -> u8 {
    kind as u8
}

fn kind_back(b: u8) -> ServiceKind {
    match b {
        0 => ServiceKind::Dns,
        1 => ServiceKind::Cdn,
        2 => ServiceKind::Ca,
        _ => ServiceKind::Cloud,
    }
}

/// An **epoch-versioned, incrementally patchable** sibling of
/// [`ReachIndex`] — the index a resident query service keeps warm
/// across churn instead of rebuilding per query.
///
/// The structure mirrors `ReachIndex` (SCC condensation of the allowed
/// provider-consumer subgraph, one dependent-site bitset per
/// component) but owns its graph, so it has no lifetime tie to a
/// [`DepGraph`] and can absorb [`Churn`] deltas in place:
///
/// * **site edge add** — sites are never SCC members, so the
///   condensation is untouched; the new site bit is ORed into the
///   provider's component and every component it transitively
///   consumes.
/// * **site edge remove / cross-component provider edge remove** — the
///   condensation is still valid; the affected downstream components'
///   sets are recomputed from direct site consumers plus consumer
///   components, in topological order.
/// * **provider edge add** — if the new edge closes a cycle between
///   two existing components the condensation would merge SCCs, so the
///   index **falls back to a full Tarjan rebuild**; otherwise the
///   condensation gains one DAG edge and the consumer component's set
///   is ORed downstream.
/// * **intra-component provider edge remove** — could split an SCC:
///   always a full rebuild.
///
/// Every successful apply bumps the **epoch**. Patch computations are
/// staged and committed at the end, so a panic mid-patch can never
/// leave a half-written epoch behind: readers either see the previous
/// epoch or the complete next one. [`MutableReach::verify_fresh`]
/// recomputes the condensation from scratch and diffs it against the
/// patched state — the serve daemon's paranoid mode runs it after
/// every patch, and the cross-check suite in
/// `tests/parallel_determinism.rs` holds patched scores byte-identical
/// to a fresh [`ReachIndex::build`].
pub struct MutableReach {
    critical_only: bool,
    opts: MetricOptions,
    /// Per node: provider service kind byte, [`SITE_KIND`] for sites.
    kinds: Vec<u8>,
    /// Per node: raw site index for site nodes ([`NONE_U32`] otherwise).
    site_of: Vec<u32>,
    /// Per node: provider key (empty for sites).
    keys: Vec<String>,
    /// `(key, kind byte)` → node.
    provider_index: BTreeMap<(String, u8), u32>,
    /// Raw site index → node.
    site_index: BTreeMap<u32, u32>,
    /// Per node: consumer edges `(consumer node, critical)`.
    in_edges: Vec<Vec<(u32, bool)>>,
    /// Exclusive upper bound on raw site indexes (bitset capacity).
    site_bound: usize,
    /// Monotonic version; bumped once per applied delta.
    epoch: u64,
    /// Node → condensation component (`NONE_U32` for sites).
    comp_of: Vec<u32>,
    /// Per-component member nodes.
    comp_members: Vec<Vec<u32>>,
    /// Per-component dependent-site sets.
    sets: Vec<SiteSet>,
    /// Per-component popcounts.
    counts: Vec<usize>,
    /// Condensation out-edges with multiplicity: `comp_deps[x][y]` =
    /// number of visible edges from members of consumer component `x`
    /// into members of component `y` (i.e. `x` consumes `y`).
    comp_deps: Vec<BTreeMap<u32, u32>>,
    /// Condensation in-edges with multiplicity (reverse of
    /// [`MutableReach::comp_deps`]).
    comp_consumers: Vec<BTreeMap<u32, u32>>,
    /// Deltas absorbed by SCC-local patching.
    patches: u64,
    /// Deltas that forced a full Tarjan rebuild.
    rebuilds: u64,
}

impl MutableReach {
    /// Builds the mutable index from a frozen graph, copying nodes and
    /// edges into owned columns (node `i` here is node `i` there) and
    /// running one full condensation pass. Epoch starts at 0.
    pub fn from_graph(graph: &DepGraph, critical_only: bool, opts: &MetricOptions) -> Self {
        let n = graph.node_count();
        let mut mr = MutableReach {
            critical_only,
            opts: opts.clone(),
            kinds: Vec::with_capacity(n),
            site_of: Vec::with_capacity(n),
            keys: Vec::with_capacity(n),
            provider_index: BTreeMap::new(),
            site_index: BTreeMap::new(),
            in_edges: vec![Vec::new(); n],
            site_bound: graph.site_id_bound(),
            epoch: 0,
            comp_of: Vec::new(),
            comp_members: Vec::new(),
            sets: Vec::new(),
            counts: Vec::new(),
            comp_deps: Vec::new(),
            comp_consumers: Vec::new(),
            patches: 0,
            rebuilds: 0,
        };
        for v in 0..n {
            match graph.node(NodeId(v as u32)) {
                NodeKind::Site(site) => {
                    mr.kinds.push(SITE_KIND);
                    mr.site_of.push(site.0);
                    mr.keys.push(String::new());
                    mr.site_index.insert(site.0, v as u32);
                    mr.site_bound = mr.site_bound.max(site.index() + 1);
                }
                NodeKind::Provider(name, kind) => {
                    let key = graph.name(name).to_string();
                    mr.kinds.push(kind_byte(kind));
                    mr.site_of.push(NONE_U32);
                    mr.provider_index
                        .insert((key.clone(), kind_byte(kind)), v as u32);
                    mr.keys.push(key);
                }
            }
        }
        for v in 0..n {
            for (consumer, ek) in graph.consumers_of(NodeId(v as u32)) {
                mr.in_edges[v].push((consumer.0, ek.critical));
            }
        }
        mr.rebuild_condensation();
        mr
    }

    /// The configuration the index answers for (`true` = impact).
    pub fn critical_only(&self) -> bool {
        self.critical_only
    }

    /// The index's current epoch. Every applied delta bumps it by one,
    /// so an answer tagged with an epoch names exactly one graph state.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Deltas absorbed without touching the condensation structure.
    pub fn patch_count(&self) -> u64 {
        self.patches
    }

    /// Deltas that forced a full Tarjan rebuild.
    pub fn rebuild_count(&self) -> u64 {
        self.rebuilds
    }

    /// Number of sites depending on provider `(key, kind)` at the
    /// current epoch; 0 for unknown providers.
    pub fn dependent_count(&self, key: &str, kind: ServiceKind) -> usize {
        self.provider_node(key, kind)
            .map(|v| self.counts[self.comp_of[v as usize] as usize])
            .unwrap_or(0)
    }

    /// The dependent-site bitset of provider `(key, kind)`, or `None`
    /// for unknown providers.
    pub fn dependent_set(&self, key: &str, kind: ServiceKind) -> Option<&SiteSet> {
        self.provider_node(key, kind)
            .map(|v| &self.sets[self.comp_of[v as usize] as usize])
    }

    /// All provider keys of `kind`, in key order, with their dependent
    /// counts at the current epoch.
    pub fn providers_of(&self, kind: ServiceKind) -> Vec<(&str, usize)> {
        let kb = kind_byte(kind);
        self.provider_index
            .iter()
            .filter(move |((_, k), _)| *k == kb)
            .map(|((key, _), &v)| (key.as_str(), self.counts[self.comp_of[v as usize] as usize]))
            .collect()
    }

    /// Applies one churn delta. On success the epoch advances by one
    /// and the returned [`ApplyKind`] says whether the delta was
    /// SCC-locally patched or forced a rebuild; on error the index is
    /// unchanged (same epoch, same answers).
    #[must_use]
    pub fn apply(&mut self, delta: &Churn) -> Result<ApplyKind, ChurnError> {
        let kind = match delta {
            Churn::AddSiteEdge {
                site,
                provider,
                critical,
            } => self.add_site_edge(*site, provider, *critical),
            Churn::RemoveSiteEdge {
                site,
                provider,
                critical,
            } => self.remove_site_edge(*site, provider, *critical)?,
            Churn::AddProviderEdge { from, to, critical } => {
                self.add_provider_edge(from, to, *critical)
            }
            Churn::RemoveProviderEdge { from, to, critical } => {
                self.remove_provider_edge(from, to, *critical)?
            }
        };
        self.epoch += 1;
        match kind {
            ApplyKind::Patched => self.patches += 1,
            ApplyKind::Rebuilt => self.rebuilds += 1,
        }
        Ok(kind)
    }

    /// Recomputes the condensation from scratch into a fresh state and
    /// diffs every component map entry, set, and count against the
    /// patched state. Returns a description of the first divergence —
    /// the executable form of "every patched epoch is cross-checked
    /// against a fresh build".
    #[must_use]
    pub fn verify_fresh(&self) -> Result<(), String> {
        let fresh = self.condense();
        for (&(ref key, kb), &v) in &self.provider_index {
            let patched = &self.sets[self.comp_of[v as usize] as usize];
            let rebuilt = &fresh.sets[fresh.comp_of[v as usize] as usize];
            if patched != rebuilt {
                return Err(format!(
                    "provider {key}/{:?}: patched set (|{}|) != fresh set (|{}|)",
                    kind_back(kb),
                    patched.count(),
                    rebuilt.count()
                ));
            }
            let patched_n = self.counts[self.comp_of[v as usize] as usize];
            let fresh_n = fresh.counts[fresh.comp_of[v as usize] as usize];
            if patched_n != fresh_n {
                return Err(format!(
                    "provider {key}/{:?}: patched count {patched_n} != fresh count {fresh_n}",
                    kind_back(kb)
                ));
            }
        }
        Ok(())
    }

    /// Discards the cached condensation and rebuilds it from the owned
    /// edge list. The logical graph state is unchanged, so the epoch
    /// does not advance — this is the recovery hammer a resident
    /// service reaches for if [`MutableReach::verify_fresh`] ever
    /// reports a divergence.
    pub fn force_rebuild(&mut self) {
        self.rebuild_condensation();
        self.rebuilds += 1;
    }

    /// Bytes of heap owned by the index (graph columns + condensation).
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.kinds.capacity()
            + self.site_of.capacity() * size_of::<u32>()
            + self.keys.iter().map(|k| k.capacity()).sum::<usize>()
            + self
                .in_edges
                .iter()
                .map(|row| row.capacity() * size_of::<(u32, bool)>())
                .sum::<usize>()
            + self.comp_of.capacity() * size_of::<u32>()
            + self.sets.iter().map(|s| s.heap_bytes()).sum::<usize>()
            + self.counts.capacity() * size_of::<usize>()
    }

    // ---- node plumbing ----

    fn provider_node(&self, key: &str, kind: ServiceKind) -> Option<u32> {
        // BTreeMap<(String, u8)> lookups need an owned key; provider
        // churn is rare enough that the allocation is irrelevant.
        self.provider_index
            .get(&(key.to_string(), kind_byte(kind)))
            .copied()
    }

    fn ensure_site(&mut self, site: SiteId) -> u32 {
        if let Some(&v) = self.site_index.get(&site.0) {
            return v;
        }
        let v = self.push_node(SITE_KIND, site.0, String::new());
        self.site_index.insert(site.0, v);
        self.site_bound = self.site_bound.max(site.index() + 1);
        self.comp_of.push(NONE_U32);
        v
    }

    fn ensure_provider(&mut self, p: &ProviderRef) -> u32 {
        if let Some(v) = self.provider_node(&p.key, p.kind) {
            return v;
        }
        let v = self.push_node(kind_byte(p.kind), NONE_U32, p.key.clone());
        self.provider_index
            .insert((p.key.clone(), kind_byte(p.kind)), v);
        // A brand-new provider is its own singleton component with an
        // empty dependent set — no structural invariant can break.
        let comp = self.sets.len() as u32;
        self.comp_of.push(comp);
        self.comp_members.push(vec![v]);
        self.sets.push(SiteSet::with_bound(self.site_bound));
        self.counts.push(0);
        self.comp_deps.push(BTreeMap::new());
        self.comp_consumers.push(BTreeMap::new());
        v
    }

    fn push_node(&mut self, kind: u8, site_raw: u32, key: String) -> u32 {
        assert!(
            u32::try_from(self.kinds.len()).is_ok(),
            "mutable reach overflow: {} nodes exhaust the u32 id space",
            self.kinds.len()
        );
        let v = self.kinds.len() as u32;
        self.kinds.push(kind);
        self.site_of.push(site_raw);
        self.keys.push(key);
        self.in_edges.push(Vec::new());
        v
    }

    /// Whether a site→provider edge participates in this index.
    fn site_edge_visible(&self, critical: bool) -> bool {
        !(self.critical_only && !critical)
    }

    /// Whether a provider→provider edge participates in this index.
    fn provider_edge_visible(&self, from: u32, to: u32, critical: bool) -> bool {
        self.site_edge_visible(critical)
            && self.opts.allows(
                kind_back(self.kinds[from as usize]),
                kind_back(self.kinds[to as usize]),
            )
    }

    // ---- patch operations ----

    fn add_site_edge(&mut self, site: SiteId, provider: &ProviderRef, critical: bool) -> ApplyKind {
        let s = self.ensure_site(site);
        let p = self.ensure_provider(provider);
        self.in_edges[p as usize].push((s, critical));
        if self.site_edge_visible(critical) {
            // The site now reaches p's component and, transitively,
            // every component p consumes. Sites are never SCC members,
            // so the condensation itself cannot change: pure bit OR.
            for comp in self.downstream_of(self.comp_of[p as usize]) {
                let set = &mut self.sets[comp as usize];
                if !set.contains(site) {
                    set.insert(site);
                    self.counts[comp as usize] += 1;
                }
            }
        }
        ApplyKind::Patched
    }

    fn remove_site_edge(
        &mut self,
        site: SiteId,
        provider: &ProviderRef,
        critical: bool,
    ) -> Result<ApplyKind, ChurnError> {
        let missing = |detail: String| ChurnError::NoSuchEdge { detail };
        let s = self
            .site_index
            .get(&site.0)
            .copied()
            .ok_or_else(|| missing(format!("site {site} has no node")))?;
        let p = self
            .provider_node(&provider.key, provider.kind)
            .ok_or_else(|| missing(format!("provider {} is unknown", provider.key)))?;
        let row = &mut self.in_edges[p as usize];
        let pos = row
            .iter()
            .position(|&(w, c)| w == s && c == critical)
            .ok_or_else(|| missing(format!("{site} -> {} (critical={critical})", provider.key)))?;
        row.remove(pos);
        if self.site_edge_visible(critical) {
            // The site may still reach the affected components via
            // other edges; recompute their sets from scratch, in
            // topological order, leaving the condensation untouched
            // (site edges never define SCCs).
            self.recompute_downstream(self.comp_of[p as usize]);
        }
        Ok(ApplyKind::Patched)
    }

    fn add_provider_edge(
        &mut self,
        from: &ProviderRef,
        to: &ProviderRef,
        critical: bool,
    ) -> ApplyKind {
        let w = self.ensure_provider(from);
        let v = self.ensure_provider(to);
        self.in_edges[v as usize].push((w, critical));
        if !self.provider_edge_visible(w, v, critical) {
            // Recorded for future rebuilds, invisible to this
            // configuration — nothing cached can change.
            return ApplyKind::Patched;
        }
        let (cw, cv) = (self.comp_of[w as usize], self.comp_of[v as usize]);
        if cw == cv {
            // An extra edge inside one component changes neither the
            // condensation nor any set.
            return ApplyKind::Patched;
        }
        if self.reaches(cv, cw) {
            // to ⇒ … ⇒ from already exists, so from → to closes a
            // cycle: components must merge. Condensation invariant
            // invalidated — full rebuild.
            self.rebuild_condensation();
            return ApplyKind::Rebuilt;
        }
        // The condensation stays a DAG and gains one edge cw → cv.
        *self.comp_deps[cw as usize].entry(cv).or_insert(0) += 1;
        *self.comp_consumers[cv as usize].entry(cw).or_insert(0) += 1;
        // Everything the consumer component reaches flows into cv and
        // everything cv consumes. Stage the unions, then commit.
        let source = self.sets[cw as usize].clone();
        let mut staged: Vec<(u32, SiteSet)> = Vec::new();
        for comp in self.downstream_of(cv) {
            let mut merged = self.sets[comp as usize].clone();
            merged.union_with(&source);
            staged.push((comp, merged));
        }
        for (comp, set) in staged {
            self.counts[comp as usize] = set.count();
            self.sets[comp as usize] = set;
        }
        ApplyKind::Patched
    }

    fn remove_provider_edge(
        &mut self,
        from: &ProviderRef,
        to: &ProviderRef,
        critical: bool,
    ) -> Result<ApplyKind, ChurnError> {
        let missing = |detail: String| ChurnError::NoSuchEdge { detail };
        let w = self
            .provider_node(&from.key, from.kind)
            .ok_or_else(|| missing(format!("provider {} is unknown", from.key)))?;
        let v = self
            .provider_node(&to.key, to.kind)
            .ok_or_else(|| missing(format!("provider {} is unknown", to.key)))?;
        let row = &mut self.in_edges[v as usize];
        let pos = row
            .iter()
            .position(|&(x, c)| x == w && c == critical)
            .ok_or_else(|| missing(format!("{} -> {} (critical={critical})", from.key, to.key)))?;
        row.remove(pos);
        if !self.provider_edge_visible(w, v, critical) {
            return Ok(ApplyKind::Patched);
        }
        let (cw, cv) = (self.comp_of[w as usize], self.comp_of[v as usize]);
        if cw == cv {
            // Removing an intra-component edge can split the SCC:
            // always rebuild.
            self.rebuild_condensation();
            return Ok(ApplyKind::Rebuilt);
        }
        // Cross-component removal keeps the condensation a DAG; drop
        // one unit of edge multiplicity and recompute downstream sets.
        let gone = {
            let slot = self.comp_deps[cw as usize].entry(cv).or_insert(0);
            *slot = slot.saturating_sub(1);
            *slot == 0
        };
        if gone {
            self.comp_deps[cw as usize].remove(&cv);
            let slot = self.comp_consumers[cv as usize].entry(cw).or_insert(0);
            *slot = slot.saturating_sub(1);
            self.comp_consumers[cv as usize].remove(&cw);
        } else {
            let slot = self.comp_consumers[cv as usize].entry(cw).or_insert(0);
            *slot = slot.saturating_sub(1);
        }
        self.recompute_downstream(cv);
        Ok(ApplyKind::Patched)
    }

    // ---- condensation plumbing ----

    /// Components reachable from `start` (inclusive) along consumption
    /// edges — exactly the components whose dependent sets include
    /// every site that reaches `start`.
    fn downstream_of(&self, start: u32) -> Vec<u32> {
        let mut seen: Vec<u32> = vec![start];
        let mut order: Vec<u32> = Vec::new();
        let mut stack = vec![start];
        while let Some(c) = stack.pop() {
            order.push(c);
            for (&next, _) in &self.comp_deps[c as usize] {
                if !seen.contains(&next) {
                    seen.push(next);
                    stack.push(next);
                }
            }
        }
        order
    }

    /// Whether component `from` reaches component `to` along
    /// consumption edges.
    fn reaches(&self, from: u32, to: u32) -> bool {
        if from == to {
            return true;
        }
        let mut seen: Vec<u32> = vec![from];
        let mut stack = vec![from];
        while let Some(c) = stack.pop() {
            for (&next, _) in &self.comp_deps[c as usize] {
                if next == to {
                    return true;
                }
                if !seen.contains(&next) {
                    seen.push(next);
                    stack.push(next);
                }
            }
        }
        false
    }

    /// Recomputes the dependent sets of every component downstream of
    /// `start` (inclusive) from first principles — direct site
    /// consumers of the members, unioned with consumer components'
    /// sets — processing the affected sub-DAG in topological order so
    /// each recomputation reads only finished inputs. Staged, then
    /// committed.
    fn recompute_downstream(&mut self, start: u32) {
        let affected = self.downstream_of(start);
        let in_affected = |c: u32| affected.contains(&c);
        // Kahn over the affected sub-DAG (consumer → consumed edges).
        let mut indeg: BTreeMap<u32, usize> = BTreeMap::new();
        for &c in &affected {
            let d = self.comp_consumers[c as usize]
                .keys()
                .filter(|&&x| in_affected(x))
                .count();
            indeg.insert(c, d);
        }
        let mut ready: Vec<u32> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&c, _)| c)
            .collect();
        let mut staged: BTreeMap<u32, SiteSet> = BTreeMap::new();
        let mut done: Vec<u32> = Vec::new();
        while let Some(c) = ready.pop() {
            let mut set = SiteSet::with_bound(self.site_bound);
            for &m in &self.comp_members[c as usize] {
                for &(src, crit) in &self.in_edges[m as usize] {
                    if self.kinds[src as usize] == SITE_KIND && self.site_edge_visible(crit) {
                        set.insert(SiteId(self.site_of[src as usize]));
                    }
                }
            }
            for &x in self.comp_consumers[c as usize].keys() {
                match staged.get(&x) {
                    Some(s) => set.union_with(s),
                    None => set.union_with(&self.sets[x as usize]),
                }
            }
            staged.insert(c, set);
            done.push(c);
            for &next in self.comp_deps[c as usize].keys() {
                if let Some(d) = indeg.get_mut(&next) {
                    *d -= 1;
                    if *d == 0 {
                        ready.push(next);
                    }
                }
            }
        }
        debug_assert_eq!(done.len(), affected.len(), "condensation must be acyclic");
        for (comp, set) in staged {
            self.counts[comp as usize] = set.count();
            self.sets[comp as usize] = set;
        }
    }

    /// The full Tarjan pass over the owned adjacency — the same
    /// algorithm as [`ReachIndex::build`], plus condensation edge
    /// multiplicities for the patch paths.
    fn condense(&self) -> Condensation {
        let n = self.kinds.len();
        let step = |v: usize, w: u32, critical: bool| -> Option<usize> {
            if self.critical_only && !critical {
                return None;
            }
            let wk = self.kinds[w as usize];
            if wk == SITE_KIND {
                return None;
            }
            if !self.opts.allows(kind_back(wk), kind_back(self.kinds[v])) {
                return None;
            }
            Some(w as usize)
        };

        let mut index_of = vec![0u32; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut comp_of = vec![NONE_U32; n];
        let mut comp_members: Vec<Vec<u32>> = Vec::new();
        let mut sets: Vec<SiteSet> = Vec::new();
        let mut counts: Vec<usize> = Vec::new();
        let mut next_index = 1u32;

        for start in 0..n {
            if index_of[start] != 0 || self.kinds[start] == SITE_KIND {
                continue;
            }
            index_of[start] = next_index;
            low[start] = next_index;
            next_index += 1;
            stack.push(start as u32);
            on_stack[start] = true;
            let mut dfs: Vec<(usize, usize)> = vec![(start, 0)];
            while let Some(frame) = dfs.last_mut() {
                let v = frame.0;
                let row = &self.in_edges[v];
                let mut descended = false;
                while frame.1 < row.len() {
                    let (wraw, crit) = row[frame.1];
                    frame.1 += 1;
                    let Some(w) = step(v, wraw, crit) else {
                        continue;
                    };
                    if index_of[w] == 0 {
                        index_of[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w as u32);
                        on_stack[w] = true;
                        dfs.push((w, 0));
                        descended = true;
                        break;
                    } else if on_stack[w] {
                        low[v] = low[v].min(index_of[w]);
                    }
                }
                if descended {
                    continue;
                }
                dfs.pop();
                if let Some(parent) = dfs.last() {
                    low[parent.0] = low[parent.0].min(low[v]);
                }
                if low[v] == index_of[v] {
                    let comp = sets.len() as u32;
                    let mut members: Vec<u32> = Vec::new();
                    loop {
                        let w = match stack.pop() {
                            Some(w) => w,
                            None => break,
                        };
                        on_stack[w as usize] = false;
                        comp_of[w as usize] = comp;
                        members.push(w);
                        if w as usize == v {
                            break;
                        }
                    }
                    let mut set = SiteSet::with_bound(self.site_bound);
                    for &m in &members {
                        for &(src, crit) in &self.in_edges[m as usize] {
                            if self.kinds[src as usize] == SITE_KIND && self.site_edge_visible(crit)
                            {
                                set.insert(SiteId(self.site_of[src as usize]));
                            }
                        }
                        for &(src, crit) in &self.in_edges[m as usize] {
                            let Some(w) = step(m as usize, src, crit) else {
                                continue;
                            };
                            let c = comp_of[w];
                            if c != comp {
                                debug_assert_ne!(c, NONE_U32, "successor emitted first");
                                set.union_with(&sets[c as usize]);
                            }
                        }
                    }
                    counts.push(set.count());
                    sets.push(set);
                    comp_members.push(members);
                }
            }
        }

        // Condensation edges with multiplicity, derived in one pass
        // over the visible inter-component edges.
        let ncomp = sets.len();
        let mut comp_deps: Vec<BTreeMap<u32, u32>> = vec![BTreeMap::new(); ncomp];
        let mut comp_consumers: Vec<BTreeMap<u32, u32>> = vec![BTreeMap::new(); ncomp];
        for v in 0..n {
            if self.kinds[v] == SITE_KIND {
                continue;
            }
            let cv = comp_of[v];
            for &(src, crit) in &self.in_edges[v] {
                if step(v, src, crit).is_none() {
                    continue;
                }
                let cw = comp_of[src as usize];
                if cw != cv {
                    *comp_deps[cw as usize].entry(cv).or_insert(0) += 1;
                    *comp_consumers[cv as usize].entry(cw).or_insert(0) += 1;
                }
            }
        }

        Condensation {
            comp_of,
            comp_members,
            sets,
            counts,
            comp_deps,
            comp_consumers,
        }
    }

    fn rebuild_condensation(&mut self) {
        let fresh = self.condense();
        self.comp_of = fresh.comp_of;
        self.comp_members = fresh.comp_members;
        self.sets = fresh.sets;
        self.counts = fresh.counts;
        self.comp_deps = fresh.comp_deps;
        self.comp_consumers = fresh.comp_consumers;
    }
}

/// One fully recomputed condensation (the staging result of
/// [`MutableReach::condense`]).
struct Condensation {
    comp_of: Vec<u32>,
    comp_members: Vec<Vec<u32>>,
    sets: Vec<SiteSet>,
    counts: Vec<usize>,
    comp_deps: Vec<BTreeMap<u32, u32>>,
    comp_consumers: Vec<BTreeMap<u32, u32>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeKind, GraphBuilder, NodeRef};
    use webdeps_measure::{measure_world, ProviderKey};
    use webdeps_model::ServiceKind;
    use webdeps_testkit::{check_with, gen, tk_assert, Config};
    use webdeps_worldgen::{World, WorldConfig};

    #[test]
    fn site_set_basics() {
        let mut s = SiteSet::with_bound(10);
        assert_eq!(s.count(), 0);
        s.insert(SiteId(3));
        s.insert(SiteId(70)); // beyond the initial bound
        s.insert(SiteId(3));
        assert_eq!(s.count(), 2);
        assert!(s.contains(SiteId(3)));
        assert!(s.contains(SiteId(70)));
        assert!(!s.contains(SiteId(4)));
        assert!(!s.contains(SiteId(1_000)));
        let ids: Vec<SiteId> = s.iter().collect();
        assert_eq!(ids, vec![SiteId(3), SiteId(70)]);

        let mut t = SiteSet::with_bound(128);
        t.insert(SiteId(100));
        t.union_with(&s);
        assert_eq!(t.count(), 3);
    }

    #[test]
    fn site_set_matches_hashset_reference() {
        // Property: insert/contains/count/iter agree with a HashSet
        // reference under random workloads, including word-boundary
        // indexes (the bit-twiddled iterator must not skip or invent
        // members).
        check_with(
            &Config {
                cases: 64,
                ..Config::default()
            },
            "site_set_matches_hashset_reference",
            &gen::u64_any(),
            |&seed| {
                let mut state = seed | 1;
                let mut next = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                let bound = (next() % 400) as usize;
                let mut set = SiteSet::with_bound(bound);
                let mut reference: HashSet<u32> = HashSet::new();
                for _ in 0..(next() % 200) {
                    // Bias toward word boundaries: raw % 65 lands on
                    // 0, 63, 64 often.
                    let raw = if next() % 4 == 0 {
                        (next() % 65) as u32
                    } else {
                        (next() % 1_000) as u32
                    };
                    set.insert(SiteId(raw));
                    reference.insert(raw);
                }
                tk_assert!(set.count() == reference.len(), "count != |reference|");
                let iterated: Vec<u32> = set.iter().map(|s| s.0).collect();
                let mut expected: Vec<u32> = reference.iter().copied().collect();
                expected.sort_unstable();
                tk_assert!(iterated == expected, "iter() diverged from reference");
                for probe in 0..1_000u32 {
                    tk_assert!(
                        set.contains(SiteId(probe)) == reference.contains(&probe),
                        "contains({probe}) diverged"
                    );
                }
                Ok(())
            },
        );
    }

    #[test]
    fn index_matches_bfs_on_measured_world() {
        let world = World::generate(WorldConfig::small(123));
        let ds = measure_world(&world);
        let g = crate::graph::DepGraph::from_dataset(&ds);
        let m = crate::metrics::Metrics::new(&g);
        for critical in [false, true] {
            for opts in [
                MetricOptions::direct_only(),
                MetricOptions::full(),
                MetricOptions::only(ServiceKind::Ca, ServiceKind::Dns),
            ] {
                let index = ReachIndex::build(&g, critical, &opts);
                for kind in [ServiceKind::Dns, ServiceKind::Cdn, ServiceKind::Ca] {
                    for p in g.providers_of(kind) {
                        let bfs = m.score_bfs(p, critical, &opts);
                        assert_eq!(
                            index.dependent_count(p),
                            bfs.len(),
                            "count mismatch at {:?} critical={critical}",
                            g.node_ref(p)
                        );
                        assert_eq!(
                            index.dependent_sites(p),
                            bfs,
                            "set mismatch at {:?} critical={critical}",
                            g.node_ref(p)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cycles_share_one_component_set() {
        // A ↔ B provider cycle (via allowed hops) with one site each.
        let mut b = GraphBuilder::new();
        let s0 = b.intern(NodeRef::Site(SiteId(0)));
        let s1 = b.intern(NodeRef::Site(SiteId(1)));
        let a = b.intern(NodeRef::Provider(
            ProviderKey::new("a.com"),
            ServiceKind::Dns,
        ));
        let bp = b.intern(NodeRef::Provider(
            ProviderKey::new("b.com"),
            ServiceKind::Cdn,
        ));
        let crit = |service| EdgeKind {
            service,
            critical: true,
        };
        b.add_edge(s0, a, crit(ServiceKind::Dns));
        b.add_edge(s1, bp, crit(ServiceKind::Cdn));
        b.add_edge(a, bp, crit(ServiceKind::Cdn));
        b.add_edge(bp, a, crit(ServiceKind::Dns));
        let g = b.build();
        // Both hop kinds allowed → a true 2-cycle.
        let opts = MetricOptions {
            interservice: vec![
                (ServiceKind::Cdn, ServiceKind::Dns),
                (ServiceKind::Dns, ServiceKind::Cdn),
            ],
        };
        let index = ReachIndex::build(&g, true, &opts);
        assert_eq!(index.dependent_count(a), 2);
        assert_eq!(index.dependent_count(bp), 2);
        let m = crate::metrics::Metrics::new(&g);
        assert_eq!(index.dependent_sites(a), m.score_bfs(a, true, &opts));
        assert_eq!(index.dependent_sites(bp), m.score_bfs(bp, true, &opts));
        // Site nodes score zero, like the BFS.
        assert_eq!(index.dependent_count(s0), 0);
        assert!(index.dependent_set(s0).is_none());
    }

    // ---- MutableReach ----

    /// A churn delta plus the edge universe it ran against, mirrored
    /// outside the index so a fresh graph can be rebuilt per step.
    #[derive(Clone, Debug)]
    enum MirrorEdge {
        Site(SiteId, ProviderRef, bool),
        Prov(ProviderRef, ProviderRef, bool),
    }

    fn fresh_graph(sites: &[SiteId], providers: &[ProviderRef], edges: &[MirrorEdge]) -> DepGraph {
        let mut b = GraphBuilder::new();
        for &s in sites {
            b.intern(NodeRef::Site(s));
        }
        for p in providers {
            b.intern(NodeRef::Provider(ProviderKey::new(p.key.as_str()), p.kind));
        }
        for e in edges {
            let (from, to, critical, service) = match e {
                MirrorEdge::Site(s, p, c) => (
                    b.intern(NodeRef::Site(*s)),
                    b.intern(NodeRef::Provider(ProviderKey::new(p.key.as_str()), p.kind)),
                    *c,
                    p.kind,
                ),
                MirrorEdge::Prov(f, t, c) => (
                    b.intern(NodeRef::Provider(ProviderKey::new(f.key.as_str()), f.kind)),
                    b.intern(NodeRef::Provider(ProviderKey::new(t.key.as_str()), t.kind)),
                    *c,
                    t.kind,
                ),
            };
            b.add_edge(from, to, EdgeKind { service, critical });
        }
        b.build()
    }

    fn assert_matches_fresh(
        mr: &MutableReach,
        g: &DepGraph,
        critical: bool,
        opts: &MetricOptions,
        ctx: &str,
    ) -> Result<(), String> {
        let fresh = ReachIndex::build(g, critical, opts);
        for kind in [
            ServiceKind::Dns,
            ServiceKind::Cdn,
            ServiceKind::Ca,
            ServiceKind::Cloud,
        ] {
            for (key, count) in mr.providers_of(kind) {
                let node = g
                    .find(&NodeRef::Provider(ProviderKey::new(key), kind))
                    .ok_or_else(|| format!("{ctx}: provider {key}/{kind} missing from mirror"))?;
                tk_assert!(
                    count == fresh.dependent_count(node),
                    "{ctx}: {key}/{kind} patched count {count} != fresh {}",
                    fresh.dependent_count(node)
                );
                let patched: HashSet<SiteId> = mr
                    .dependent_set(key, kind)
                    .map(|s| s.iter().collect())
                    .unwrap_or_default();
                tk_assert!(
                    patched == fresh.dependent_sites(node),
                    "{ctx}: {key}/{kind} patched set diverged from fresh build"
                );
            }
        }
        mr.verify_fresh().map_err(|e| format!("{ctx}: {e}"))
    }

    /// The tentpole cross-check: random churn streams applied to
    /// `MutableReach`, with every patched epoch compared exhaustively
    /// against `ReachIndex::build` over a freshly assembled graph.
    #[test]
    fn mutable_reach_matches_fresh_build_under_churn() {
        let sites: Vec<SiteId> = (0..10).map(SiteId).collect();
        let providers: Vec<ProviderRef> = vec![
            ProviderRef::new("d0.com", ServiceKind::Dns),
            ProviderRef::new("d1.com", ServiceKind::Dns),
            ProviderRef::new("c0.com", ServiceKind::Cdn),
            ProviderRef::new("c1.com", ServiceKind::Cdn),
            ProviderRef::new("a0.com", ServiceKind::Ca),
        ];
        check_with(
            &Config {
                cases: 48,
                ..Config::default()
            },
            "mutable_reach_matches_fresh_build_under_churn",
            &gen::u64_any(),
            |&seed| {
                let mut state = seed | 1;
                let mut next = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                let critical = next() % 2 == 0;
                let opts = if next() % 2 == 0 {
                    MetricOptions::full()
                } else {
                    MetricOptions::direct_only()
                };
                let mut edges: Vec<MirrorEdge> = Vec::new();
                for _ in 0..(next() % 12) {
                    let s = sites[(next() % sites.len() as u64) as usize];
                    let p = providers[(next() % providers.len() as u64) as usize].clone();
                    edges.push(MirrorEdge::Site(s, p, next() % 2 == 0));
                }
                let g0 = fresh_graph(&sites, &providers, &edges);
                let mut mr = MutableReach::from_graph(&g0, critical, &opts);
                tk_assert!(mr.epoch() == 0, "fresh index must start at epoch 0");

                for step in 0..24 {
                    let op = next() % 4;
                    let delta = match op {
                        0 => {
                            let s = sites[(next() % sites.len() as u64) as usize];
                            let p = providers[(next() % providers.len() as u64) as usize].clone();
                            let c = next() % 2 == 0;
                            edges.push(MirrorEdge::Site(s, p.clone(), c));
                            Churn::AddSiteEdge {
                                site: s,
                                provider: p,
                                critical: c,
                            }
                        }
                        1 => {
                            let f = providers[(next() % providers.len() as u64) as usize].clone();
                            let t = providers[(next() % providers.len() as u64) as usize].clone();
                            if f == t {
                                continue;
                            }
                            let c = next() % 2 == 0;
                            edges.push(MirrorEdge::Prov(f.clone(), t.clone(), c));
                            Churn::AddProviderEdge {
                                from: f,
                                to: t,
                                critical: c,
                            }
                        }
                        _ => {
                            // Remove a random existing edge; with no
                            // edges left, exercise the error path.
                            if edges.is_empty() {
                                let p = providers[0].clone();
                                let before = mr.epoch();
                                let r = mr.apply(&Churn::RemoveSiteEdge {
                                    site: sites[0],
                                    provider: p,
                                    critical: true,
                                });
                                tk_assert!(r.is_err(), "phantom removal must fail");
                                tk_assert!(
                                    mr.epoch() == before,
                                    "failed apply must not advance the epoch"
                                );
                                continue;
                            }
                            let at = (next() % edges.len() as u64) as usize;
                            match edges.remove(at) {
                                MirrorEdge::Site(s, p, c) => Churn::RemoveSiteEdge {
                                    site: s,
                                    provider: p,
                                    critical: c,
                                },
                                MirrorEdge::Prov(f, t, c) => Churn::RemoveProviderEdge {
                                    from: f,
                                    to: t,
                                    critical: c,
                                },
                            }
                        }
                    };
                    let before = mr.epoch();
                    mr.apply(&delta)
                        .map_err(|e| format!("step {step}: apply failed: {e}"))?;
                    tk_assert!(
                        mr.epoch() == before + 1,
                        "each applied delta must bump the epoch by exactly one"
                    );
                    let g = fresh_graph(&sites, &providers, &edges);
                    assert_matches_fresh(
                        &mr,
                        &g,
                        critical,
                        &opts,
                        &format!("step {step} critical={critical}"),
                    )?;
                }
                Ok(())
            },
        );
    }

    #[test]
    fn cycle_closing_edge_falls_back_to_rebuild() {
        // c.com (CDN) consumes d.com (DNS); adding the reverse edge
        // closes a 2-cycle, which must merge their components via a
        // full rebuild — and both must then score both sites.
        let sites = [SiteId(0), SiteId(1)];
        let d = ProviderRef::new("d.com", ServiceKind::Dns);
        let c = ProviderRef::new("c.com", ServiceKind::Cdn);
        let edges = vec![
            MirrorEdge::Site(sites[0], d.clone(), true),
            MirrorEdge::Site(sites[1], c.clone(), true),
            MirrorEdge::Prov(c.clone(), d.clone(), true),
        ];
        let providers = [d.clone(), c.clone()];
        let g = fresh_graph(&sites, &providers, &edges);
        // Both hop directions allowed → the reverse edge is a cycle.
        let opts = MetricOptions {
            interservice: vec![
                (ServiceKind::Cdn, ServiceKind::Dns),
                (ServiceKind::Dns, ServiceKind::Cdn),
            ],
        };
        let mut mr = MutableReach::from_graph(&g, true, &opts);
        assert_eq!(mr.dependent_count("d.com", ServiceKind::Dns), 2);
        assert_eq!(mr.dependent_count("c.com", ServiceKind::Cdn), 1);

        let kind = mr
            .apply(&Churn::AddProviderEdge {
                from: d.clone(),
                to: c.clone(),
                critical: true,
            })
            .expect("cycle edge applies");
        assert_eq!(kind, ApplyKind::Rebuilt);
        assert_eq!(mr.rebuild_count(), 1);
        assert_eq!(mr.dependent_count("c.com", ServiceKind::Cdn), 2);
        assert_eq!(mr.dependent_count("d.com", ServiceKind::Dns), 2);
        mr.verify_fresh().expect("rebuilt epoch cross-checks");

        // Removing an intra-component edge can split the SCC — also a
        // rebuild. With c → d gone, only d → c remains.
        let kind = mr
            .apply(&Churn::RemoveProviderEdge {
                from: c,
                to: d,
                critical: true,
            })
            .expect("intra-component removal applies");
        assert_eq!(kind, ApplyKind::Rebuilt);
        assert_eq!(mr.dependent_count("c.com", ServiceKind::Cdn), 2);
        assert_eq!(mr.dependent_count("d.com", ServiceKind::Dns), 1);
        mr.verify_fresh().expect("post-split epoch cross-checks");
    }

    #[test]
    fn site_churn_patches_without_rebuild() {
        // c.com (CDN) consumes d.com (DNS) — an allowed full() hop —
        // so site churn on either provider flows into d.com's set.
        let sites = [SiteId(0), SiteId(1), SiteId(2)];
        let d = ProviderRef::new("d.com", ServiceKind::Dns);
        let c = ProviderRef::new("c.com", ServiceKind::Cdn);
        let providers = [d.clone(), c.clone()];
        let edges = vec![
            MirrorEdge::Site(sites[0], c.clone(), true),
            MirrorEdge::Prov(c.clone(), d.clone(), true),
        ];
        let g = fresh_graph(&sites, &providers, &edges);
        let opts = MetricOptions::full();
        let mut mr = MutableReach::from_graph(&g, true, &opts);
        assert_eq!(mr.dependent_count("d.com", ServiceKind::Dns), 1);
        // Site 1 adopts the DNS provider directly: pure bit OR.
        mr.apply(&Churn::AddSiteEdge {
            site: sites[1],
            provider: d.clone(),
            critical: true,
        })
        .expect("site add applies");
        // Site 2 adopts the CDN: reaches the DNS operator transitively.
        mr.apply(&Churn::AddSiteEdge {
            site: sites[2],
            provider: c.clone(),
            critical: true,
        })
        .expect("site add applies");
        assert_eq!(mr.dependent_count("c.com", ServiceKind::Cdn), 2);
        assert_eq!(mr.dependent_count("d.com", ServiceKind::Dns), 3);
        // Site 0 drops the CDN: d.com keeps its direct consumer and
        // the remaining transitive one.
        mr.apply(&Churn::RemoveSiteEdge {
            site: sites[0],
            provider: c,
            critical: true,
        })
        .expect("site removal applies");
        assert_eq!(mr.dependent_count("c.com", ServiceKind::Cdn), 1);
        assert_eq!(mr.dependent_count("d.com", ServiceKind::Dns), 2);
        assert_eq!(mr.rebuild_count(), 0, "site churn never rebuilds");
        assert_eq!(mr.patch_count(), 3);
        assert_eq!(mr.epoch(), 3);
        mr.verify_fresh().expect("patched epochs cross-check");
    }
}
