//! Substrate benchmarks: the DNS resolver (cache ablation), zone
//! lookups, the dig facade, and full-page crawls.

use std::hint::black_box;
use webdeps_bench::bench_workspace;
use webdeps_bench::harness::Harness;
use webdeps_dns::{Dig, RecordType, Resolver};
use webdeps_web::Crawler;

fn resolver_benches(h: &mut Harness) {
    let ws = bench_workspace();
    let world = &ws.world20;
    let listings = world.listings();
    let sample: Vec<_> = listings.iter().take(256).collect();

    let mut group = h.benchmark_group("substrate/resolver");

    // Ablation: cold cache — every lookup walks the authority chain.
    group.bench_function("resolve_a_cold_cache", |b| {
        let mut resolver = Resolver::new(&world.dns);
        resolver.disable_cache();
        let mut i = 0usize;
        b.iter(|| {
            let l = &sample[i % sample.len()];
            i += 1;
            black_box(resolver.resolve(&l.domain, RecordType::A)).ok();
        });
    });

    // Ablation: warm cache — steady-state crawl behavior.
    group.bench_function("resolve_a_warm_cache", |b| {
        let mut resolver = Resolver::new(&world.dns);
        for l in &sample {
            let _ = resolver.resolve(&l.domain, RecordType::A);
        }
        let mut i = 0usize;
        b.iter(|| {
            let l = &sample[i % sample.len()];
            i += 1;
            black_box(resolver.resolve(&l.domain, RecordType::A)).ok();
        });
    });

    group.bench_function("dig_ns_plus_soa", |b| {
        let mut resolver = Resolver::new(&world.dns);
        resolver.disable_cache();
        let mut i = 0usize;
        b.iter(|| {
            let l = &sample[i % sample.len()];
            i += 1;
            let mut dig = Dig::new(&mut resolver);
            let ns = dig.ns(&l.domain).unwrap_or_default();
            for host in &ns {
                black_box(dig.soa_of(host)).ok();
            }
        });
    });
    group.finish();

    let mut group = h.benchmark_group("substrate/web");
    group.sample_size(20);
    group.bench_function("crawl_landing_page", |b| {
        let mut client = world.client();
        let mut i = 0usize;
        b.iter(|| {
            let l = &sample[i % sample.len()];
            i += 1;
            black_box(Crawler::crawl(
                &mut client,
                &l.domain,
                &l.document_hosts,
                l.https,
            ));
        });
    });
    group.finish();
}

fn main() {
    let mut h = Harness::new("substrate");
    resolver_benches(&mut h);
    h.finish();
}
