//! RFC 1035 master-file ("zone file") parsing and serialization.
//!
//! Supports the subset of the master-file syntax the simulator uses:
//! `$ORIGIN` and `$TTL` directives, relative and absolute owner names,
//! the `@` apex shorthand, blank-owner continuation (a record inheriting
//! the previous owner), comments, and the `SOA`, `NS`, `A`, `CNAME`,
//! and `TXT` record types. Every [`Zone`] can round-trip through its
//! textual form, which makes worlds inspectable with standard DNS
//! tooling habits and lets tests pin zone contents as fixtures.

use crate::clock::Ttl;
use crate::record::{RecordData, ResourceRecord, Soa};
use crate::zone::Zone;
use std::fmt;
use std::net::Ipv4Addr;
use webdeps_model::{DomainName, ModelError};

/// Zone-file parse errors, with 1-based line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZonefileError {
    /// Line the error occurred on (1-based; 0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ZonefileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "zone file line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ZonefileError {}

fn err(line: usize, message: impl Into<String>) -> ZonefileError {
    ZonefileError {
        line,
        message: message.into(),
    }
}

/// Resolves a possibly-relative name against the origin.
fn resolve_name(
    token: &str,
    origin: &DomainName,
    line: usize,
) -> Result<DomainName, ZonefileError> {
    let name = if token == "@" {
        Ok(origin.clone())
    } else if let Some(absolute) = token.strip_suffix('.') {
        DomainName::parse(absolute)
    } else {
        DomainName::parse(&format!("{token}.{origin}"))
    };
    name.map_err(|e: ModelError| err(line, e.to_string()))
}

/// Strips comments: everything after the first `;` that is outside a
/// quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_quotes = false;
    for (idx, ch) in line.char_indices() {
        match ch {
            '"' => in_quotes = !in_quotes,
            ';' if !in_quotes => return &line[..idx],
            _ => {}
        }
    }
    line
}

/// Parses a zone file into a [`Zone`]. The file must contain exactly one
/// SOA record; `$ORIGIN` defaults to `default_origin` when absent.
///
/// ```
/// use webdeps_dns::Zone;
/// let zone = Zone::from_zonefile(
///     "$ORIGIN example.com.\n\
///      @ IN SOA ns1 hostmaster 1 7200 900 1209600 300\n\
///      @ IN NS ns1\n\
///      ns1 IN A 192.0.2.53\n",
/// ).unwrap();
/// assert_eq!(zone.origin().as_str(), "example.com");
/// assert_eq!(zone.to_zonefile().lines().count(), 5);
/// ```
#[must_use]
pub fn parse_zone(text: &str, default_origin: Option<&DomainName>) -> Result<Zone, ZonefileError> {
    let mut origin: Option<DomainName> = default_origin.cloned();
    let mut default_ttl = Ttl::DEFAULT;
    let mut last_owner: Option<DomainName> = None;
    let mut soa: Option<(DomainName, Soa, Ttl)> = None;
    let mut records: Vec<ResourceRecord> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let had_leading_ws = raw.starts_with(' ') || raw.starts_with('\t');
        let line = strip_comment(raw).trim_end();
        if line.trim().is_empty() {
            continue;
        }

        // Directives.
        if let Some(rest) = line.trim().strip_prefix("$ORIGIN") {
            let name = rest.trim().trim_end_matches('.');
            origin = Some(DomainName::parse(name).map_err(|e| err(line_no, e.to_string()))?);
            continue;
        }
        if let Some(rest) = line.trim().strip_prefix("$TTL") {
            let secs: u32 = rest
                .trim()
                .parse()
                .map_err(|_| err(line_no, format!("bad $TTL {rest:?}")))?;
            default_ttl = Ttl(secs);
            continue;
        }

        let origin_ref = origin
            .as_ref()
            .ok_or_else(|| err(line_no, "no $ORIGIN declared"))?
            .clone();

        let mut tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.is_empty() {
            continue;
        }

        // Owner: a line starting with whitespace continues the previous
        // owner; otherwise the first token is the owner.
        let owner = if had_leading_ws {
            last_owner
                .clone()
                .ok_or_else(|| err(line_no, "continuation line before any owner"))?
        } else {
            let token = tokens.remove(0);
            resolve_name(token, &origin_ref, line_no)?
        };
        last_owner = Some(owner.clone());

        // Optional TTL, optional class (IN).
        let mut ttl = default_ttl;
        if let Some(first) = tokens.first() {
            if let Ok(secs) = first.parse::<u32>() {
                ttl = Ttl(secs);
                tokens.remove(0);
            }
        }
        if tokens
            .first()
            .map(|t| t.eq_ignore_ascii_case("IN"))
            .unwrap_or(false)
        {
            tokens.remove(0);
        }

        let Some(rtype) = tokens.first().copied() else {
            return Err(err(line_no, "missing record type"));
        };
        tokens.remove(0);

        match rtype.to_ascii_uppercase().as_str() {
            "SOA" => {
                if soa.is_some() {
                    return Err(err(line_no, "duplicate SOA"));
                }
                if tokens.len() != 7 {
                    return Err(err(
                        line_no,
                        format!("SOA needs MNAME RNAME SERIAL REFRESH RETRY EXPIRE MINIMUM, got {} fields", tokens.len()),
                    ));
                }
                let mname = resolve_name(tokens[0], &origin_ref, line_no)?;
                let rname = resolve_name(tokens[1], &origin_ref, line_no)?;
                let nums: Vec<u32> = tokens[2..7]
                    .iter()
                    .map(|t| {
                        t.parse::<u32>()
                            .map_err(|_| err(line_no, format!("bad SOA number {t:?}")))
                    })
                    .collect::<Result<_, _>>()?;
                soa = Some((
                    owner,
                    Soa {
                        mname,
                        rname,
                        serial: nums[0],
                        refresh: nums[1],
                        retry: nums[2],
                        expire: nums[3],
                        minimum: nums[4],
                    },
                    ttl,
                ));
            }
            "NS" => {
                let host = resolve_name(
                    tokens
                        .first()
                        .ok_or_else(|| err(line_no, "NS needs a host"))?,
                    &origin_ref,
                    line_no,
                )?;
                records.push(ResourceRecord::with_ttl(owner, ttl, RecordData::Ns(host)));
            }
            "A" => {
                let ip: Ipv4Addr = tokens
                    .first()
                    .ok_or_else(|| err(line_no, "A needs an address"))?
                    .parse()
                    .map_err(|_| err(line_no, "bad IPv4 address"))?;
                records.push(ResourceRecord::with_ttl(owner, ttl, RecordData::A(ip)));
            }
            "CNAME" => {
                let target = resolve_name(
                    tokens
                        .first()
                        .ok_or_else(|| err(line_no, "CNAME needs a target"))?,
                    &origin_ref,
                    line_no,
                )?;
                records.push(ResourceRecord::with_ttl(
                    owner,
                    ttl,
                    RecordData::Cname(target),
                ));
            }
            "TXT" => {
                let joined = tokens.join(" ");
                let content = joined.trim().trim_matches('"').to_string();
                records.push(ResourceRecord::with_ttl(
                    owner,
                    ttl,
                    RecordData::Txt(content),
                ));
            }
            other => return Err(err(line_no, format!("unsupported record type {other:?}"))),
        }
    }

    let (apex, soa, _ttl) = soa.ok_or_else(|| err(0, "zone file has no SOA record"))?;
    if let Some(origin) = &origin {
        if &apex != origin {
            return Err(err(
                0,
                format!("SOA owner {apex} does not match origin {origin}"),
            ));
        }
    }
    let mut zone = Zone::new(apex, soa);
    for rr in records {
        zone.insert(rr);
    }
    Ok(zone)
}

/// Serializes a zone to master-file text. Output parses back to an
/// equivalent zone via [`parse_zone`].
pub fn format_zone(zone: &Zone) -> String {
    let origin = zone.origin();
    let soa = zone.soa();
    let mut out = String::new();
    out.push_str(&format!("$ORIGIN {origin}.\n"));
    out.push_str(&format!("$TTL {}\n", Ttl::DEFAULT.seconds()));
    out.push_str(&format!(
        "@ IN SOA {}. {}. {} {} {} {} {}\n",
        soa.mname, soa.rname, soa.serial, soa.refresh, soa.retry, soa.expire, soa.minimum
    ));
    for rr in zone.records() {
        if matches!(rr.data, RecordData::Soa(_)) {
            continue;
        }
        let owner = if rr.name == *origin {
            "@".to_string()
        } else {
            format!("{}.", rr.name)
        };
        let data = match &rr.data {
            RecordData::A(ip) => format!("A {ip}"),
            RecordData::Ns(h) => format!("NS {h}."),
            RecordData::Cname(t) => format!("CNAME {t}."),
            RecordData::Txt(t) => format!("TXT \"{t}\""),
            RecordData::Soa(_) => unreachable!("skipped above"),
        };
        out.push_str(&format!("{owner} {} IN {data}\n", rr.ttl.seconds()));
    }
    out
}

impl Zone {
    /// Parses a zone from master-file text (see [`parse_zone`]).
    #[must_use]
    pub fn from_zonefile(text: &str) -> Result<Zone, ZonefileError> {
        parse_zone(text, None)
    }

    /// Serializes to master-file text (see [`format_zone`]).
    pub fn to_zonefile(&self) -> String {
        format_zone(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordType;
    use webdeps_model::name::dn;

    const EXAMPLE: &str = r#"
$ORIGIN example.com.
$TTL 3600
@   IN SOA ns1.example.com. hostmaster.example.com. 2020010101 7200 900 1209600 300
@   IN NS ns1.example.com.
@   IN NS ns2.dyn-like.net.
@   IN A 192.0.2.10
ns1 IN A 192.0.2.53
    IN TXT "primary nameserver"    ; comment on the continuation line
www 300 IN CNAME cust-7.cdnco.net.
blog IN CNAME @
"#;

    #[test]
    fn parses_a_realistic_zone() {
        let zone = Zone::from_zonefile(EXAMPLE).expect("parses");
        assert_eq!(zone.origin(), &dn("example.com"));
        assert_eq!(zone.soa().serial, 2020010101);
        assert_eq!(zone.soa().rname, dn("hostmaster.example.com"));
        assert_eq!(
            zone.apex_ns_hosts(),
            vec![dn("ns1.example.com"), dn("ns2.dyn-like.net")]
        );
        // Relative, absolute, and @ names all resolved.
        match zone.lookup(&dn("www.example.com"), RecordType::Cname) {
            crate::zone::ZoneAnswer::Answer(rrs) => {
                assert_eq!(rrs[0].data.as_cname(), Some(&dn("cust-7.cdnco.net")));
                assert_eq!(rrs[0].ttl, Ttl(300), "per-record TTL honoured");
            }
            other => panic!("expected CNAME answer, got {other:?}"),
        }
        match zone.lookup(&dn("blog.example.com"), RecordType::Cname) {
            crate::zone::ZoneAnswer::Answer(rrs) => {
                assert_eq!(
                    rrs[0].data.as_cname(),
                    Some(&dn("example.com")),
                    "@ expands to apex"
                );
            }
            other => panic!("expected CNAME answer, got {other:?}"),
        }
        // Continuation line attached the TXT to ns1.
        match zone.lookup(&dn("ns1.example.com"), RecordType::Txt) {
            crate::zone::ZoneAnswer::Answer(rrs) => {
                assert_eq!(rrs[0].data, RecordData::Txt("primary nameserver".into()));
            }
            other => panic!("expected TXT answer, got {other:?}"),
        }
    }

    #[test]
    fn roundtrip_through_text() {
        let zone = Zone::from_zonefile(EXAMPLE).unwrap();
        let text = zone.to_zonefile();
        let reparsed = Zone::from_zonefile(&text).expect("roundtrip parses: {text}");
        assert_eq!(reparsed.origin(), zone.origin());
        assert_eq!(reparsed.soa(), zone.soa());
        assert_eq!(reparsed.apex_ns_hosts(), zone.apex_ns_hosts());
        assert_eq!(
            reparsed.lookup(&dn("www.example.com"), RecordType::Cname),
            zone.lookup(&dn("www.example.com"), RecordType::Cname)
        );
        assert_eq!(reparsed.records().count(), zone.records().count());
    }

    #[test]
    fn generated_world_zones_roundtrip() {
        use crate::network::DnsNetwork;
        use crate::record::Soa;
        // A hand-built zone with every record type.
        let mut b = DnsNetwork::builder();
        let s = b.add_server(
            dn("ns1.x.com"),
            Ipv4Addr::new(192, 0, 2, 1),
            webdeps_model::EntityId(0),
        );
        let mut z = Zone::new(
            dn("x.com"),
            Soa::standard(dn("ns1.x.com"), dn("h.x.com"), 7),
        );
        z.add(dn("x.com"), RecordData::Ns(dn("ns1.x.com")));
        z.add(dn("x.com"), RecordData::A(Ipv4Addr::new(192, 0, 2, 80)));
        z.add(dn("a.x.com"), RecordData::Cname(dn("b.other.net")));
        z.add(dn("t.x.com"), RecordData::Txt("hello world".into()));
        b.add_zone(z.clone(), vec![s]);
        let text = z.to_zonefile();
        let re = Zone::from_zonefile(&text).unwrap();
        assert_eq!(re.soa(), z.soa());
        assert_eq!(re.records().count(), z.records().count());
    }

    #[test]
    fn error_reporting_with_line_numbers() {
        let missing_soa = "$ORIGIN x.com.\n@ IN NS ns1.x.com.\n";
        let e = Zone::from_zonefile(missing_soa).unwrap_err();
        assert!(e.message.contains("no SOA"));

        let bad_type = "$ORIGIN x.com.\n@ IN SOA ns1.x.com. h.x.com. 1 2 3 4 5\n@ IN MX 10 mail\n";
        let e = Zone::from_zonefile(bad_type).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("MX"));

        let bad_ip = "$ORIGIN x.com.\n@ IN SOA ns1.x.com. h.x.com. 1 2 3 4 5\n@ IN A 999.1.1.1\n";
        let e = Zone::from_zonefile(bad_ip).unwrap_err();
        assert_eq!(e.line, 3);

        let no_origin = "@ IN A 1.2.3.4\n";
        let e = Zone::from_zonefile(no_origin).unwrap_err();
        assert!(e.message.contains("$ORIGIN"));

        let dup_soa = "$ORIGIN x.com.\n@ IN SOA ns1.x.com. h.x.com. 1 2 3 4 5\n@ IN SOA ns1.x.com. h.x.com. 1 2 3 4 5\n";
        let e = Zone::from_zonefile(dup_soa).unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn default_origin_parameter() {
        let text = "@ IN SOA ns1 hostmaster 1 2 3 4 5\n@ IN A 192.0.2.1\n";
        let zone = parse_zone(text, Some(&dn("fallback.org"))).unwrap();
        assert_eq!(zone.origin(), &dn("fallback.org"));
        assert_eq!(zone.soa().mname, dn("ns1.fallback.org"));
    }
}
