//! Measurement result types.
//!
//! Everything in here is *inferred from the wire* — provider identities
//! are registrable domains of observed infrastructure (`dnsmadeeasy.com`,
//! `akamaiedge.net`), never catalog names, because the pipeline has no
//! access to ground truth.

use crate::classify::Classification;
use webdeps_model::{DomainName, Rank, SiteId};
use webdeps_worldgen::profiles::{CaProfile, CdnProfile, DepState};

/// Wire-inferred provider identity: the registrable domain of the
/// provider's observed infrastructure.
///
/// Backed by a shared string, so cloning a key (the per-site hot path
/// tallies keys into several maps) bumps a refcount instead of copying
/// the domain. The derived comparisons and hash all delegate to the
/// string content, so equal keys behave identically whether or not they
/// share an allocation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProviderKey(std::sync::Arc<str>);

impl ProviderKey {
    /// Builds a key from a registrable domain.
    pub fn new(domain: impl Into<std::sync::Arc<str>>) -> Self {
        ProviderKey(domain.into())
    }

    /// The key as a string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for ProviderKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// One nameserver pair observation.
#[derive(Debug, Clone)]
pub struct NsPair {
    /// The nameserver host.
    pub host: DomainName,
    /// Classification of the (site, nameserver) pair.
    pub class: Classification,
    /// Entity group the host was merged into (index into
    /// [`SiteDnsMeasurement::groups`]).
    pub group: usize,
}

/// One grouped nameserver entity for a site.
#[derive(Debug, Clone)]
pub struct NsGroup {
    /// Inferred identity (min registrable domain of members).
    pub key: ProviderKey,
    /// Combined classification of the group.
    pub class: Classification,
}

/// DNS measurement of one site (§3.1).
#[derive(Debug, Clone)]
pub struct SiteDnsMeasurement {
    /// Raw (site, nameserver) observations.
    pub pairs: Vec<NsPair>,
    /// Entity groups after TLD/SOA-MNAME/SOA-RNAME merging.
    pub groups: Vec<NsGroup>,
    /// Inferred dependency state; `None` when any pair stayed
    /// unclassified (the site is excluded, §3.1's 18%).
    pub state: Option<DepState>,
}

impl SiteDnsMeasurement {
    /// Third-party provider keys (distinct groups classified third).
    pub fn third_parties(&self) -> impl Iterator<Item = &ProviderKey> {
        self.groups
            .iter()
            .filter(|g| g.class == Classification::ThirdParty)
            .map(|g| &g.key)
    }

    /// Whether the site was successfully characterized.
    pub fn characterized(&self) -> bool {
        self.state.is_some()
    }
}

/// CDN measurement of one site (§3.3).
#[derive(Debug, Clone, Default)]
pub struct SiteCdnMeasurement {
    /// Distinct CDNs detected on internal resources, with per-CDN
    /// classification.
    pub cdns: Vec<(ProviderKey, Classification)>,
    /// Inferred dependency state; `None` when the site uses a CDN that
    /// could not be classified.
    pub state: Option<CdnProfile>,
}

impl SiteCdnMeasurement {
    /// Whether any CDN was detected.
    pub fn uses_cdn(&self) -> bool {
        !self.cdns.is_empty()
    }

    /// Third-party CDN keys.
    pub fn third_parties(&self) -> impl Iterator<Item = &ProviderKey> {
        self.cdns
            .iter()
            .filter(|(_, c)| *c == Classification::ThirdParty)
            .map(|(k, _)| k)
    }
}

/// CA measurement of one site (§3.2).
#[derive(Debug, Clone, Default)]
pub struct SiteCaMeasurement {
    /// Whether the site answered on HTTPS.
    pub https: bool,
    /// OCSP responder hosts from the certificate.
    pub ocsp_hosts: Vec<DomainName>,
    /// CRL distribution hosts from the certificate.
    pub crl_hosts: Vec<DomainName>,
    /// Inferred CA identity + classification.
    pub ca: Option<(ProviderKey, Classification)>,
    /// Whether a stapled OCSP response was presented.
    pub stapled: bool,
    /// Inferred dependency state.
    pub state: Option<CaProfile>,
}

/// Everything measured about one site.
#[derive(Debug, Clone)]
pub struct SiteMeasurement {
    /// Site identifier (position in the input list).
    pub id: SiteId,
    /// Popularity rank from the input list.
    pub rank: Rank,
    /// Registrable domain.
    pub domain: DomainName,
    /// Whether the landing page was reachable at crawl time.
    pub reachable: bool,
    /// DNS results.
    pub dns: SiteDnsMeasurement,
    /// CDN results.
    pub cdn: SiteCdnMeasurement,
    /// CA results.
    pub ca: SiteCaMeasurement,
}

/// The complete output of a pipeline run over one snapshot.
#[derive(Debug, Clone)]
pub struct MeasurementDataset {
    /// Per-site measurements, ordered by rank.
    pub sites: Vec<SiteMeasurement>,
    /// Provider-level inter-service measurements (§3.4).
    pub providers: Vec<crate::interservice::ProviderMeasurement>,
    /// Concentration threshold used by the combined heuristic.
    pub threshold: usize,
}

impl MeasurementDataset {
    /// Sites characterized for DNS analysis (Table 1 row 1).
    pub fn dns_characterized(&self) -> impl Iterator<Item = &SiteMeasurement> {
        self.sites.iter().filter(|s| s.dns.characterized())
    }

    /// Sites using CDNs (Table 1 row 2).
    pub fn cdn_users(&self) -> impl Iterator<Item = &SiteMeasurement> {
        self.sites.iter().filter(|s| s.cdn.uses_cdn())
    }

    /// Sites supporting HTTPS (Table 1 row 4).
    pub fn https_sites(&self) -> impl Iterator<Item = &SiteMeasurement> {
        self.sites.iter().filter(|s| s.ca.https)
    }

    /// Provider-level measurement lookup.
    pub fn provider(
        &self,
        key: &ProviderKey,
        kind: webdeps_model::ServiceKind,
    ) -> Option<&crate::interservice::ProviderMeasurement> {
        self.providers
            .iter()
            .find(|p| &p.key == key && p.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provider_key_display() {
        let k = ProviderKey::new("dnsmadeeasy.com");
        assert_eq!(k.to_string(), "dnsmadeeasy.com");
        assert_eq!(k.as_str(), "dnsmadeeasy.com");
    }

    #[test]
    fn dns_measurement_helpers() {
        let m = SiteDnsMeasurement {
            pairs: vec![],
            groups: vec![
                NsGroup {
                    key: ProviderKey::new("dyn.com"),
                    class: Classification::ThirdParty,
                },
                NsGroup {
                    key: ProviderKey::new("self.com"),
                    class: Classification::Private,
                },
            ],
            state: Some(DepState::PrivatePlusThird),
        };
        assert!(m.characterized());
        assert_eq!(m.third_parties().count(), 1);
    }

    #[test]
    fn cdn_measurement_helpers() {
        let mut m = SiteCdnMeasurement::default();
        assert!(!m.uses_cdn());
        m.cdns.push((
            ProviderKey::new("akamaiedge.net"),
            Classification::ThirdParty,
        ));
        m.cdns
            .push((ProviderKey::new("own-cdn.net"), Classification::Private));
        assert!(m.uses_cdn());
        assert_eq!(m.third_parties().count(), 1);
    }
}
