//! Diagnostics: violations, suppression records, and the report with
//! human and JSON renderings (schema `webdeps-lint/4`). JSON is
//! hand-rolled — the linter has no dependencies by design.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// How a rule's violations gate the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Severity {
    /// Violations fail the run (exit 1).
    #[default]
    Deny,
    /// Violations are reported but do not fail the run (unless
    /// `--deny-warnings`); gradually-enforced rules start here.
    Warn,
}

impl Severity {
    /// Lowercase label used in reports and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }

    /// Parses a CLI/report label.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "deny" => Some(Severity::Deny),
            "warn" => Some(Severity::Warn),
            _ => None,
        }
    }
}

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule name from the catalog.
    pub rule: String,
    /// The rule's severity at the time of the run.
    pub severity: Severity,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong.
    pub message: String,
    /// Trimmed source line.
    pub snippet: String,
}

/// A violation that was silenced by a `lint:allow` directive.
#[derive(Debug, Clone)]
pub struct Suppressed {
    /// The silenced violation.
    pub violation: Violation,
    /// The directive's justification text.
    pub reason: String,
    /// Line of the directive that silenced it.
    pub allow_line: u32,
}

/// A baseline entry that matched fewer violations than its count —
/// the underlying finding was fixed and the baseline should shrink.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct StaleBaseline {
    /// Rule name of the stale entry.
    pub rule: String,
    /// File the entry pointed at.
    pub file: String,
    /// Snippet the entry keyed on.
    pub snippet: String,
}

/// Full result of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed, non-baselined violations.
    pub violations: Vec<Violation>,
    /// Suppressed violations, each attributed to its directive.
    pub suppressed: Vec<Suppressed>,
    /// Violations absorbed by the committed baseline (gradually-
    /// enforced rules); they never fail the run.
    pub baselined: Vec<Violation>,
    /// Baseline entries that no longer match anything.
    pub stale_baseline: Vec<StaleBaseline>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Directives that silenced nothing.
    pub unused_allows: Vec<(String, u32)>,
    /// The per-rule severity map the run used.
    pub severities: BTreeMap<String, Severity>,
}

impl Report {
    /// Whether the run is clean: no `deny`-severity violations.
    pub fn is_clean(&self) -> bool {
        self.deny_count() == 0
    }

    /// Count of `deny`-severity violations.
    pub fn deny_count(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Deny)
            .count()
    }

    /// Count of `warn`-severity violations.
    pub fn warn_count(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Warn)
            .count()
    }

    /// Per-rule counts of unsuppressed violations.
    pub fn rule_counts(&self) -> BTreeMap<&str, usize> {
        let mut m = BTreeMap::new();
        for v in &self.violations {
            *m.entry(v.rule.as_str()).or_insert(0) += 1;
        }
        m
    }

    /// Per-rule counts of suppressed violations.
    pub fn suppressed_counts(&self) -> BTreeMap<&str, usize> {
        let mut m = BTreeMap::new();
        for s in &self.suppressed {
            *m.entry(s.violation.rule.as_str()).or_insert(0) += 1;
        }
        m
    }

    /// Deterministically orders the report contents (by file, line,
    /// rule). Called once after all files are scanned.
    pub fn sort(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
        self.baselined
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
        self.suppressed.sort_by(|a, b| {
            (&a.violation.file, a.violation.line, &a.violation.rule).cmp(&(
                &b.violation.file,
                b.violation.line,
                &b.violation.rule,
            ))
        });
        self.stale_baseline.sort();
        self.unused_allows.sort();
    }

    /// Human-readable rendering.
    pub fn render_human(&self, verbose_suppressions: bool) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(
                out,
                "{}:{}: [{} {}] {}",
                v.file,
                v.line,
                v.severity.label(),
                v.rule,
                v.message
            );
            if !v.snippet.is_empty() {
                let _ = writeln!(out, "    {}", v.snippet);
            }
        }
        if verbose_suppressions {
            for s in &self.suppressed {
                let _ = writeln!(
                    out,
                    "{}:{}: [{}] suppressed — {}",
                    s.violation.file, s.violation.line, s.violation.rule, s.reason
                );
            }
            for v in &self.baselined {
                let _ = writeln!(
                    out,
                    "{}:{}: [{}] baselined — accepted by the committed baseline",
                    v.file, v.line, v.rule
                );
            }
        }
        for (file, line) in &self.unused_allows {
            let _ = writeln!(out, "{file}:{line}: note: lint:allow matched no violation");
        }
        for s in &self.stale_baseline {
            let _ = writeln!(
                out,
                "{}: note: stale baseline entry [{}] no longer matches ({})",
                s.file, s.rule, s.snippet
            );
        }
        let _ = writeln!(
            out,
            "webdeps-lint: {} file(s), {} violation(s) ({} deny, {} warn), {} suppressed, {} baselined",
            self.files_scanned,
            self.violations.len(),
            self.deny_count(),
            self.warn_count(),
            self.suppressed.len(),
            self.baselined.len()
        );
        let counts = self.rule_counts();
        if !counts.is_empty() {
            let by_rule: Vec<String> = counts.iter().map(|(r, n)| format!("{r}: {n}")).collect();
            let _ = writeln!(out, "  by rule: {}", by_rule.join(", "));
        }
        let sup = self.suppressed_counts();
        if !sup.is_empty() {
            let by_rule: Vec<String> = sup.iter().map(|(r, n)| format!("{r}: {n}")).collect();
            let _ = writeln!(out, "  suppressed by rule: {}", by_rule.join(", "));
        }
        out
    }

    /// Machine-readable rendering (`--json`), schema `webdeps-lint/4`.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"webdeps-lint/4\",\n");
        let _ = write!(
            out,
            "  \"summary\": {{\"files\": {}, \"violations\": {}, \"deny\": {}, \"warn\": {}, \"suppressed\": {}, \"baselined\": {}, \"stale_baseline\": {}, \"unused_allows\": {}, \"by_rule\": {{",
            self.files_scanned,
            self.violations.len(),
            self.deny_count(),
            self.warn_count(),
            self.suppressed.len(),
            self.baselined.len(),
            self.stale_baseline.len(),
            self.unused_allows.len()
        );
        let counts = self.rule_counts();
        let parts: Vec<String> = counts
            .iter()
            .map(|(r, n)| format!("{}: {}", json_str(r), n))
            .collect();
        out.push_str(&parts.join(", "));
        out.push_str("}, \"suppressed_by_rule\": {");
        let sup = self.suppressed_counts();
        let parts: Vec<String> = sup
            .iter()
            .map(|(r, n)| format!("{}: {}", json_str(r), n))
            .collect();
        out.push_str(&parts.join(", "));
        out.push_str("}},\n  \"severities\": {");
        let parts: Vec<String> = self
            .severities
            .iter()
            .map(|(r, s)| format!("{}: {}", json_str(r), json_str(s.label())))
            .collect();
        out.push_str(&parts.join(", "));
        out.push_str("},\n  \"violations\": [\n");
        out.push_str(&render_violations(&self.violations));
        out.push_str("\n  ],\n  \"baselined\": [\n");
        out.push_str(&render_violations(&self.baselined));
        out.push_str("\n  ],\n  \"stale_baseline\": [\n");
        let items: Vec<String> = self
            .stale_baseline
            .iter()
            .map(|s| {
                format!(
                    "    {{\"rule\": {}, \"file\": {}, \"snippet\": {}}}",
                    json_str(&s.rule),
                    json_str(&s.file),
                    json_str(&s.snippet)
                )
            })
            .collect();
        out.push_str(&items.join(",\n"));
        out.push_str("\n  ],\n  \"suppressed\": [\n");
        let items: Vec<String> = self
            .suppressed
            .iter()
            .map(|s| {
                format!(
                    "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"allow_line\": {}, \"reason\": {}}}",
                    json_str(&s.violation.rule),
                    json_str(&s.violation.file),
                    s.violation.line,
                    s.allow_line,
                    json_str(&s.reason)
                )
            })
            .collect();
        out.push_str(&items.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn render_violations(violations: &[Violation]) -> String {
    let items: Vec<String> = violations
        .iter()
        .map(|v| {
            format!(
                "    {{\"rule\": {}, \"severity\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}}}",
                json_str(&v.rule),
                json_str(v.severity.label()),
                json_str(&v.file),
                v.line,
                json_str(&v.message),
                json_str(&v.snippet)
            )
        })
        .collect();
    items.join(",\n")
}

/// JSON string literal with escaping.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
