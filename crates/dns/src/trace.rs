//! Resolution tracing (`dig +trace` for the simulator).
//!
//! [`Resolver::trace`] re-runs an iterative resolution while recording
//! every authority tier contacted, which server answered (or why none
//! could), and each CNAME hop — the debugging view operators reach for
//! when "why doesn't this resolve during the outage?" comes up.

use crate::record::RecordType;
use crate::resolver::{ResolveError, Resolver};
use crate::zone::ZoneAnswer;
use webdeps_model::DomainName;

/// What happened at one step of the walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A zone tier was contacted successfully.
    Tier {
        /// Zone origin of the tier.
        zone: DomainName,
        /// Hostname of the server that answered.
        server: DomainName,
    },
    /// Every server of a tier was down.
    TierDown {
        /// Zone origin of the unreachable tier.
        zone: DomainName,
        /// Number of servers tried.
        servers_tried: usize,
    },
    /// The deepest zone answered with records.
    Answer {
        /// Answering zone.
        zone: DomainName,
        /// Number of records in the answer.
        records: usize,
    },
    /// A CNAME hop was taken.
    CnameHop {
        /// Alias owner.
        from: DomainName,
        /// Alias target.
        to: DomainName,
    },
    /// A terminal negative or error outcome.
    Failed {
        /// Rendered error.
        error: String,
    },
}

/// A full resolution trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The traced query.
    pub qname: DomainName,
    /// The traced query type.
    pub qtype: RecordType,
    /// Events in wire order.
    pub events: Vec<TraceEvent>,
    /// Whether the resolution ultimately succeeded.
    pub success: bool,
}

impl Trace {
    /// Renders the trace like `dig +trace` output.
    pub fn render(&self) -> String {
        let mut out = format!(";; trace {} {}\n", self.qname, self.qtype);
        for event in &self.events {
            match event {
                TraceEvent::Tier { zone, server } => {
                    out.push_str(&format!(";; zone {zone} @ {server}\n"));
                }
                TraceEvent::TierDown {
                    zone,
                    servers_tried,
                } => {
                    out.push_str(&format!(
                        ";; zone {zone}: all {servers_tried} servers unreachable\n"
                    ));
                }
                TraceEvent::Answer { zone, records } => {
                    out.push_str(&format!(";; answer from {zone}: {records} record(s)\n"));
                }
                TraceEvent::CnameHop { from, to } => {
                    out.push_str(&format!(";; cname {from} -> {to}\n"));
                }
                TraceEvent::Failed { error } => {
                    out.push_str(&format!(";; failed: {error}\n"));
                }
            }
        }
        out
    }
}

impl Resolver<'_> {
    /// Traces an iterative resolution without touching the answer cache
    /// (a diagnostic should always show the live wire).
    pub fn trace(&mut self, qname: &DomainName, qtype: RecordType) -> Trace {
        let network = self.network();
        let faults = self.faults().clone();
        let mut events = Vec::new();
        let mut current = qname.clone();
        let mut success = false;

        'chase: for _hop in 0..=8 {
            let tiers = network.authority_chain(&current);
            if tiers.is_empty() {
                events.push(TraceEvent::Failed {
                    error: ResolveError::UnknownZone {
                        name: current.clone(),
                    }
                    .to_string(),
                });
                break;
            }
            for dep in &tiers {
                let up = dep.servers.iter().find(|&&sid| {
                    let server = network.server(sid);
                    faults.server_up(sid, server.operator)
                });
                match up {
                    Some(&sid) => events.push(TraceEvent::Tier {
                        zone: dep.zone.origin().clone(),
                        server: network.server(sid).hostname.clone(),
                    }),
                    None => {
                        events.push(TraceEvent::TierDown {
                            zone: dep.zone.origin().clone(),
                            servers_tried: dep.servers.len(),
                        });
                        break 'chase;
                    }
                }
            }
            // lint:allow(panic) — infallible: emptiness is checked immediately above
            let deepest = tiers.last().expect("non-empty");
            match deepest.zone.lookup(&current, qtype) {
                ZoneAnswer::Answer(records) => {
                    events.push(TraceEvent::Answer {
                        zone: deepest.zone.origin().clone(),
                        records: records.len(),
                    });
                    success = true;
                    break;
                }
                ZoneAnswer::CnameRedirect { target, .. } => {
                    events.push(TraceEvent::CnameHop {
                        from: current.clone(),
                        to: target.clone(),
                    });
                    current = target;
                }
                other => {
                    let error = match other {
                        ZoneAnswer::NoData { .. } => format!("NODATA for {current}"),
                        ZoneAnswer::NxDomain { .. } => format!("NXDOMAIN for {current}"),
                        ZoneAnswer::Referral { cut, .. } => format!("lame delegation at {cut}"),
                        _ => "unexpected answer".to_string(),
                    };
                    events.push(TraceEvent::Failed { error });
                    break;
                }
            }
        }

        Trace {
            qname: qname.clone(),
            qtype,
            events,
            success,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::network::DnsNetwork;
    use crate::record::{RecordData, Soa};
    use crate::zone::Zone;
    use std::net::Ipv4Addr;
    use webdeps_model::name::dn;
    use webdeps_model::EntityId;

    fn network() -> DnsNetwork {
        let mut b = DnsNetwork::builder();
        let site = b.add_server(dn("ns1.shop.com"), Ipv4Addr::new(192, 0, 2, 1), EntityId(0));
        let cdn = b.add_server(
            dn("ns1.cdnco.net"),
            Ipv4Addr::new(203, 0, 113, 1),
            EntityId(1),
        );
        let mut z = Zone::new(
            dn("shop.com"),
            Soa::standard(dn("ns1.shop.com"), dn("h.shop.com"), 1),
        );
        z.add(dn("www.shop.com"), RecordData::Cname(dn("cust.cdnco.net")));
        z.add(dn("shop.com"), RecordData::A(Ipv4Addr::new(192, 0, 2, 80)));
        b.add_zone(z, vec![site]);
        let mut c = Zone::new(
            dn("cdnco.net"),
            Soa::standard(dn("ns1.cdnco.net"), dn("h.cdnco.net"), 1),
        );
        c.add(
            dn("cust.cdnco.net"),
            RecordData::A(Ipv4Addr::new(203, 0, 113, 80)),
        );
        b.add_zone(c, vec![cdn]);
        b.build()
    }

    #[test]
    fn trace_shows_the_full_walk() {
        let net = network();
        let mut r = Resolver::new(&net);
        let trace = r.trace(&dn("www.shop.com"), RecordType::A);
        assert!(trace.success);
        let rendered = trace.render();
        assert!(
            rendered.contains("zone shop.com @ ns1.shop.com"),
            "{rendered}"
        );
        assert!(rendered.contains("cname www.shop.com -> cust.cdnco.net"));
        assert!(rendered.contains("zone cdnco.net @ ns1.cdnco.net"));
        assert!(rendered.contains("answer from cdnco.net: 1 record(s)"));
    }

    #[test]
    fn trace_pinpoints_the_dead_tier() {
        let net = network();
        let mut r = Resolver::new(&net);
        r.set_faults(FaultPlan::healthy().fail_entity(EntityId(1)));
        let trace = r.trace(&dn("www.shop.com"), RecordType::A);
        assert!(!trace.success);
        assert!(trace.events.contains(&TraceEvent::TierDown {
            zone: dn("cdnco.net"),
            servers_tried: 1
        }));
        // The working tier before it is still visible.
        assert!(matches!(trace.events[0], TraceEvent::Tier { .. }));
    }

    #[test]
    fn trace_reports_negative_answers() {
        let net = network();
        let mut r = Resolver::new(&net);
        let trace = r.trace(&dn("missing.shop.com"), RecordType::A);
        assert!(!trace.success);
        assert!(trace.render().contains("NXDOMAIN"));
        let trace = r.trace(&dn("unknown.zz"), RecordType::A);
        assert!(trace.render().contains("no authority known"));
    }
}
