//! # webdeps-dns
//!
//! An authoritative-DNS simulator: the substrate under every measurement
//! in the study. It models exactly the parts of the DNS that the paper's
//! methodology touches:
//!
//! * **zones** with NS / SOA / A / CNAME / TXT records and delegations,
//! * **authoritative servers** operated by entities (providers or the
//!   website itself),
//! * an **iterative resolver** that walks root → TLD → zone referrals,
//!   chases CNAME chains, and honours glue,
//! * a **TTL cache** with a simulated clock (caching is how the
//!   GlobalSign revocation incident persisted for a week),
//! * **fault injection**: take a provider's entire server fleet down
//!   (the Mirai-Dyn scenario) and observe which resolutions fail.
//!
//! The API mirrors the `dig` workflow the paper's scripts used:
//! [`dig::Dig`] offers `ns`, `soa`, and `cname_chain` lookups returning
//! structured answers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod clock;
pub mod dig;
pub mod fault;
pub mod network;
pub mod record;
pub mod resolver;
pub mod server;
pub mod trace;
pub mod zone;
pub mod zonefile;

pub use cache::{CacheHit, DnsCache};
pub use clock::{SimClock, SimTime, Ttl};
pub use dig::Dig;
pub use fault::{Degradation, FaultPhase, FaultPlan, FaultSchedule, FaultTarget, ServerCondition};
pub use network::{DnsNetwork, NetworkBuilder};
pub use record::{RecordData, RecordType, ResourceRecord, Soa};
pub use resolver::{Resolution, ResolveError, Resolver, ResolverStats, RetryPolicy, StalePolicy};
pub use server::{AuthoritativeServer, ServerId};
pub use trace::{Trace, TraceEvent};
pub use zone::{Zone, ZoneAnswer};
pub use zonefile::{format_zone, parse_zone, ZonefileError};
