//! One bench per paper experiment: each `exp_<id>` regenerates the
//! table/figure from the prepared workspace. The run starts by printing
//! every rendered report, so `cargo bench` doubles as a
//! results-regeneration run.

use std::hint::black_box;
use webdeps_bench::bench_workspace;
use webdeps_bench::harness::Harness;
use webdeps_reports::{all_experiment_ids, run_experiment};

fn experiments(h: &mut Harness) {
    let ws = bench_workspace();
    eprintln!(
        "\n================ regenerated experiments (scale {}) ================",
        ws.scale
    );
    for id in all_experiment_ids() {
        let report = run_experiment(ws, id).expect("registered experiment");
        eprintln!("{}", report.render());
    }

    let mut group = h.benchmark_group("experiments");
    group.sample_size(10);
    for id in all_experiment_ids() {
        group.bench_function(format!("exp_{id}"), |b| {
            b.iter(|| black_box(run_experiment(ws, black_box(id)).expect("registered")));
        });
    }
    group.finish();
}

fn main() {
    let mut h = Harness::new("experiments");
    experiments(&mut h);
    h.finish();
}
