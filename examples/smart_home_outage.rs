//! The §6.2 vertical: third-party dependencies of 23 smart-home
//! companies, and what a cloud-provider outage does to people's locks,
//! lights, and pet feeders (the 2017 S3 incident and the 2020 Petnet
//! outage the paper cites).
//!
//! ```text
//! cargo run --release --example smart_home_outage
//! ```

use webdeps::worldgen::verticals::{smart_home_roster, CloudDep};

fn main() {
    let roster = smart_home_roster();
    let n = roster.len();

    // Table 11 aggregates.
    let third_dns = roster.iter().filter(|c| c.dns.uses_third_party()).count();
    let dns_critical = roster
        .iter()
        .filter(|c| c.dns.is_critical() && !c.local_failover)
        .count();
    let third_cloud = roster
        .iter()
        .filter(|c| matches!(c.cloud, CloudDep::SingleThird(_)))
        .count();
    let cloud_critical = roster
        .iter()
        .filter(|c| matches!(c.cloud, CloudDep::SingleThird(_)) && !c.local_failover)
        .count();

    println!("== Table 11 (measured / paper) ==");
    println!("  DNS   third-party {third_dns}/{n} (21), critical {dns_critical} (8)");
    println!("  Cloud third-party {third_cloud}/{n} (15), critical {cloud_critical} (5)");

    // The what-if the paper motivates with the 2017 S3 outage: Amazon's
    // cloud goes down. Which products stop working?
    println!("\n== Amazon cloud outage ==");
    let mut dead = Vec::new();
    let mut degraded = Vec::new();
    for c in &roster {
        if matches!(c.cloud, CloudDep::SingleThird("AWS")) {
            if c.local_failover {
                degraded.push(c.name);
            } else {
                dead.push(c.name);
            }
        }
    }
    println!("  fully dead (no local failover): {}", dead.join(", "));
    println!(
        "  cloud features lost, devices still work locally: {}",
        degraded.join(", ")
    );
    assert!(
        dead.contains(&"Petnet"),
        "the pet feeder goes hungry — the paper's §6.2 anecdote"
    );

    // And the DNS flavor: Route 53 down also kills cloud *reachability*
    // for companies whose DNS is Amazon's, even where the cloud backend
    // itself is someone else's.
    println!("\n== Amazon DNS (Route 53) outage ==");
    let dns_victims: Vec<_> = roster
        .iter()
        .filter(|c| {
            c.dns_provider == Some("AWS Route 53") && c.dns.is_critical() && !c.local_failover
        })
        .map(|c| c.name)
        .collect();
    println!("  unreachable backends: {}", dns_victims.join(", "));

    // The paper's takeaway: one company's outage reaches into homes.
    let amazon_reach = roster
        .iter()
        .filter(|c| {
            matches!(c.cloud, CloudDep::SingleThird("AWS"))
                || c.dns_provider == Some("AWS Route 53")
        })
        .count();
    println!(
        "\nAmazon (cloud ∪ DNS) touches {amazon_reach}/{n} smart-home companies — \
         the §6.2 concentration finding."
    );
    assert!(amazon_reach >= 13);
}
