//! Fixture: every source-side rule violated at least once. This file
//! is never compiled — it exists to be scanned by `webdeps-lint` in
//! the CLI integration tests.

use std::collections::HashMap;

pub fn panics(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn clock() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn ambient() -> Option<String> {
    std::env::var("HOME").ok()
}

pub fn leak_order(m: &HashMap<String, u32>) -> Vec<String> {
    let mut out = Vec::new();
    for k in m.keys() {
        out.push(k.clone());
    }
    out
}

pub fn layered() {
    let _ = webdeps_reports::exists;
}

pub fn debugging(x: u32) -> u32 {
    dbg!(x)
}

// TODO make this a real module someday
pub fn todo_marker() {}

pub fn bad_allow(v: Option<u32>) -> u32 {
    v.expect("set") // lint:allow(panic)
}

pub fn might_fail(x: u32) -> Result<u32, String> {
    if x == 0 {
        return Err("zero".to_string());
    }
    Ok(x)
}

pub fn discards() {
    might_fail(3);
}

pub fn fresh_stream() -> u64 {
    let mut rng = DetRng::new(7);
    rng.next_u64()
}

pub fn rank_scores(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn racy_merge(xs: &[u32]) -> Vec<u32> {
    let mut acc = Vec::new();
    std::thread::scope(|s| {
        s.spawn(|| {
            for x in xs {
                acc.push(*x);
            }
        });
    });
    acc
}

// The three interprocedural rules: each hazard hides in a private
// helper, invisible to the per-file rules at the pub API.

fn hidden_panic(v: &[u32]) -> u32 {
    v.first().copied().expect("non-empty")
}

pub fn head(v: &[u32]) -> u32 {
    hidden_panic(v)
}

fn now_tag() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

pub fn stamp() -> u64 {
    let t = now_tag();
    size_of_val(&t) as u64
}

fn mint() -> u64 {
    let mut rng = DetRng::new(9);
    rng.next_u64()
}

pub fn draw() -> u64 {
    mint()
}

// The concurrency rules: a two-function lock-order cycle (each side
// takes one lock directly and the other through a private helper), a
// guard held across a direct sleep, a guard held across a helper that
// sleeps, a guard held across a fan-out, a poisoned-lock unwrap, and
// one atomic field accessed with mixed orderings.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Pair {
    fn grab_a(&self) -> u64 {
        *self.a.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn grab_b(&self) -> u64 {
        *self.b.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn forward(&self) -> u64 {
        let ga = self.a.lock().unwrap_or_else(|p| p.into_inner());
        *ga + self.grab_b()
    }

    pub fn backward(&self) -> u64 {
        let gb = self.b.lock().unwrap_or_else(|p| p.into_inner());
        *gb + self.grab_a()
    }
}

pub fn blocky(m: &Mutex<u64>) -> u64 {
    let g = m.lock().unwrap_or_else(|p| p.into_inner());
    std::thread::sleep(std::time::Duration::from_millis(1));
    *g
}

fn naps() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

pub fn blocky2(m: &Mutex<u64>) -> u64 {
    let g = m.lock().unwrap_or_else(|p| p.into_inner());
    naps();
    *g
}

pub fn fan_out(xs: &[u32]) -> Vec<u32> {
    xs.to_vec()
}

pub fn fanned(m: &Mutex<u64>, xs: &[u32]) -> u64 {
    let g = m.lock().unwrap_or_else(|p| p.into_inner());
    let parts = fan_out(xs);
    *g + parts.len() as u64
}

pub fn poison_prone(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap()
}

static TICKS: AtomicU64 = AtomicU64::new(0);

pub fn tick() {
    TICKS.fetch_add(1, Ordering::Relaxed);
}

pub fn ticks() -> u64 {
    TICKS.load(Ordering::SeqCst)
}
